"""Anatomy of a memory-dependence violation, step by step.

Shows the exact mechanism of sections 2.2 and 3.2.3: an eager consumer
load, the L bit it leaves behind, the producer store whose invalidation
window finds it, the squash-to-tail, and the corrected re-execution —
with the event log printed at each step.

Run:  python examples/dependence_violation.py
"""

from repro.common.config import SVCConfig
from repro.common.events import EventLog
from repro.svc.designs import final_design
from repro.svc.system import SVCSystem

A = 0x1000


def main() -> None:
    log = EventLog()
    svc = SVCSystem(final_design(SVCConfig.paper_32kb()), event_log=log)
    for cache_id in range(4):
        svc.begin_task(cache_id, cache_id)

    print("Program order:  task 1: store 42 -> A     task 2: load A\n")

    print("Step 1 - task 2's load executes FIRST (memory dependence "
          "speculation):")
    result = svc.load(2, A)
    line = svc.line_in(2, A)
    print(f"  loaded {result.value} (stale!), L bit recorded: "
          f"load_mask={line.load_mask:04b}\n")

    print("Step 2 - task 1's store arrives; the VCL walks the VOL "
          "forward and finds the exposed load:")
    result = svc.store(1, A, 42)
    print(f"  squashed tasks: {result.squashed_ranks}")
    for event in log.of_kind("squash"):
        print(f"  {event.describe()}")
    print()

    print("Step 3 - the sequencer restarts the squashed tasks; the "
          "reload forwards the new version cache-to-cache:")
    svc.begin_task(2, 2)
    svc.begin_task(3, 3)
    result = svc.load(2, A)
    print(f"  task 2 reloaded {result.value} "
          f"(cache_to_cache={result.cache_to_cache})\n")

    print("Step 4 - everything commits in order; memory gets the "
          "sequential result:")
    for cache_id in range(4):
        svc.commit_head(cache_id)
    svc.drain()
    print(f"  memory[A] = {svc.memory.read_int(A, 4)}")
    print(f"  violation squashes: {svc.stats.get('squashes_violation')}")


if __name__ == "__main__":
    main()
