"""Quickstart: drive a Speculative Versioning Cache by hand.

Builds the paper's 4-PU configuration, runs four speculative tasks that
communicate through memory, triggers (and recovers from) a memory
dependence violation, commits everything in order and drains the
architectural state.

Run:  python examples/quickstart.py
"""

from repro.common.config import SVCConfig
from repro.svc.designs import final_design
from repro.svc.system import SVCSystem

A = 0x1000


def main() -> None:
    # The paper's 32KB-total machine: 4 private 8KB 4-way caches,
    # 16-byte lines, 3-cycle snooping bus, final (section 3.8) design.
    svc = SVCSystem(final_design(SVCConfig.paper_32kb()))

    # The sequencer assigns tasks 0..3 (program order) to the four PUs.
    for cache_id, rank in enumerate(range(4)):
        svc.begin_task(cache_id, rank)
    print("tasks 0..3 running; head =", svc.head_rank())

    # Task 0 creates a speculative version of A.
    svc.store(0, A, 100)
    print(f"task 0 stored 100; line states: {svc.states_of(A)}")

    # Task 2 loads A: the VCL finds the closest previous version.
    result = svc.load(2, A)
    print(f"task 2 loaded {result.value} (cache-to-cache: "
          f"{result.cache_to_cache})")

    # Task 1 now stores A. Task 2 loaded too early - its L bit exposes
    # the use-before-definition and tasks 2, 3 are squashed.
    result = svc.store(1, A, 111)
    print(f"task 1 stored 111 -> squashed tasks {result.squashed_ranks}")

    # The sequencer restarts the squashed tasks; the reload is correct.
    svc.begin_task(2, 2)
    svc.begin_task(3, 3)
    print(f"task 2 reloaded {svc.load(2, A).value}")

    # Tasks commit strictly in program order (one cycle each: the EC
    # design's flash commit), then the committed image drains to memory.
    for cache_id in range(4):
        svc.commit_head(cache_id)
    svc.drain()
    print(f"memory[A] = {svc.memory.read_int(A, 4)}")
    print(f"stats: loads={svc.stats.get('loads')} "
          f"stores={svc.stats.get('stores')} "
          f"bus={svc.stats.get('bus_transactions')} "
          f"violation squashes={svc.stats.get('squashes_violation')}")


if __name__ == "__main__":
    main()
