"""Thread-level speculation: auto-parallelizing sequential loops.

The paper's closing argument (sections 2.3 and 5): with an SVC,
parallelizing software "can be less conservative on sequential programs"
— it may cut any loop into tasks and let the hardware detect the
iterations that truly conflict.

Three loops with very different dependence structure run speculatively:

* a histogram (data-dependent conflicts: unpredictable statically),
* a 3-point stencil (independent iterations: zero squashes),
* a pointer chase with node revisits (occasional true dependences).

Each result is checked against plain sequential Python.

Run:  python examples/speculative_parallel_loop.py
"""

import random

from repro.common.config import SVCConfig
from repro.hier.driver import SpeculativeExecutionDriver
from repro.svc.designs import final_design
from repro.svc.system import SVCSystem
from repro.workloads.kernels import (
    histogram_kernel,
    pointer_chase_kernel,
    reference_histogram,
    stencil_kernel,
)


def run(tasks, image=None, seed=0):
    system = SVCSystem(final_design(SVCConfig.paper_32kb()))
    if image:
        system.memory.load_image(image.items())
    report = SpeculativeExecutionDriver(system, tasks, seed=seed).run()
    return system, report


def histogram_demo() -> None:
    rng = random.Random(42)
    values = [rng.randrange(1000) for _ in range(200)]
    n_bins = 16
    tasks, image = histogram_kernel(values, n_bins)
    system, report = run(tasks, image)
    expected = reference_histogram(values, n_bins)
    measured = [system.memory.read_int(0x20_0000 + 4 * b, 4) for b in range(n_bins)]
    assert measured == expected, (measured, expected)
    print(f"histogram    : {len(tasks):3d} tasks, "
          f"{report.violation_squashes:3d} violation squashes, "
          f"result matches sequential Python")


def stencil_demo() -> None:
    n = 128
    tasks = stencil_kernel(n)
    system = SVCSystem(final_design(SVCConfig.paper_32kb()))
    for i in range(n):
        system.memory.write_int(0x10_0000 + 4 * i, 4, i * i % 251)
    report = SpeculativeExecutionDriver(system, tasks, seed=1).run()
    for i in range(1, n - 1):
        expected = (((i - 1) ** 2) + i * i + (i + 1) ** 2) % 251 \
            if False else sum(j * j % 251 for j in (i - 1, i, i + 1))
        assert system.memory.read_int(0x30_0000 + 4 * i, 4) == expected
    print(f"stencil      : {len(tasks):3d} tasks, "
          f"{report.violation_squashes:3d} violation squashes "
          f"(independent iterations -> speculation always wins)")


def pointer_chase_demo() -> None:
    rng = random.Random(7)
    chain = [rng.randrange(24) for _ in range(120)]
    tasks, image = pointer_chase_kernel(chain)
    system, report = run(tasks, image, seed=3)
    visits = {}
    for node in chain:
        visits[node] = visits.get(node, 0) + 1
    for node, count in visits.items():
        addr = 0x40_0000 + 8 * node
        initial = int.from_bytes(
            bytes(image.get(addr + b, 0) for b in range(4)), "little"
        )
        assert system.memory.read_int(addr, 4) == initial + count
    print(f"pointer chase: {len(tasks):3d} tasks, "
          f"{report.violation_squashes:3d} violation squashes, "
          f"all node counters correct")


def main() -> None:
    print("Speculatively parallelized loops on the SVC "
          "(results verified against sequential execution):\n")
    histogram_demo()
    stencil_demo()
    pointer_chase_demo()


if __name__ == "__main__":
    main()
