"""A miniature run of the paper's evaluation (section 4).

Reproduces one benchmark's worth of every table and figure: Table 2
miss ratios, Table 3 bus utilizations and the Figure 19 IPC series, with
the paper's published numbers beside the measurements. Use the full
benchmark harness (`pytest benchmarks/ --benchmark-only`) for all seven
programs; set REPRO_SCALE to trade time for statistical steadiness.

Run:  python examples/spec95_campaign.py [benchmark] [scale]
"""

import sys

from repro.harness.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    run_figure19,
    run_table2,
    run_table3,
)
from repro.harness.reporting import format_series, format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "compress"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    print(f"benchmark={benchmark}  scale={scale}  "
          f"(paper values shown for comparison)\n")

    result = run_table2(benchmarks=(benchmark,), scale=scale)
    print("Table 2 - miss ratios (memory-supplied accesses / accesses)")
    print(format_table(result, ["arb_32k", "svc_4x8k"],
                       lambda p: p.miss_ratio, "miss"))
    print()

    result = run_table3(benchmarks=(benchmark,), scale=scale)
    print("Table 3 - SVC snooping bus utilization")
    print(format_table(result, ["svc_4x8k", "svc_4x16k"],
                       lambda p: p.bus_utilization, "util"))
    print()

    result = run_figure19(benchmarks=(benchmark,), scale=scale)
    print("Figure 19 - IPC, ARB hit latency 1-4 cycles vs SVC (32KB total)")
    print(format_series(result,
                        ["svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c"],
                        lambda p: p.ipc, "IPC", highlight="svc_1c"))
    print()
    svc = result.point(benchmark, "svc_1c")
    arb2 = result.point(benchmark, "arb_2c")
    arb3 = result.point(benchmark, "arb_3c")
    print(f"SVC(1c) vs ARB(2c): {100 * (svc.ipc / arb2.ipc - 1):+.1f}%   "
          f"vs ARB(3c): {100 * (svc.ipc / arb3.ipc - 1):+.1f}%")
    print("(paper: the SVC beats a contention-free ARB once the ARB pays "
          "3+ cycles per hit; up to +8% vs the 2-cycle ARB on mgrid/64KB)")


if __name__ == "__main__":
    main()
