"""Replay the paper's worked protocol examples, printing each snapshot.

Walks Figures 8, 9, 12, 13, 14/15 and 17 of the paper on the live
protocol, printing the per-cache line states in the figures' style
(`S`=store, `L`=load, `C`=commit, `T`=stale, `A`=architectural,
`X`=exclusive; `ptr` is the VOL pointer; `v` the word value).

Run:  python examples/protocol_walkthrough.py [--no-checker]

By default every step runs under the runtime InvariantChecker
(repro.check), so the walkthrough doubles as a protocol audit;
``--no-checker`` exercises the zero-overhead path.
"""

import sys

from repro.check import InvariantChecker
from repro.common.config import CacheGeometry, SVCConfig
from repro.svc.designs import design_config
from repro.svc.system import SVCSystem

A = 0x100

USE_CHECKER = True


def fresh(design: str) -> SVCSystem:
    checker = InvariantChecker() if USE_CHECKER else None
    return SVCSystem(design_config(design, SVCConfig(
        geometry=CacheGeometry(size_bytes=512, associativity=2, line_size=16),
    )), checker=checker)


def show(system: SVCSystem, caption: str) -> None:
    print(f"  {caption}")
    print(f"    {system.describe_line(A)}")
    print(f"    VOL: {system.vol_of(A)}")


def figure8() -> None:
    print("\n== Figure 8: base-design load, VOL reverse search ==")
    svc = fresh("base")
    for cache_id in range(4):
        svc.begin_task(cache_id, cache_id)
    svc.store(0, A, 0)
    svc.store(1, A, 1)
    svc.store(3, A, 3)
    show(svc, "before task 2's load (versions 0, 1, 3)")
    value = svc.load(2, A).value
    show(svc, f"after the load: task 2 got {value} (closest previous = 1)")


def figure9() -> None:
    print("\n== Figure 9: base-design stores and a violation squash ==")
    svc = fresh("base")
    for cache_id in range(4):
        svc.begin_task(cache_id, cache_id)
    svc.store(0, A, 0)
    svc.load(2, A)
    svc.store(3, A, 3)
    show(svc, "task 2 loaded version 0 (L set); task 3 stored")
    squashed = svc.store(1, A, 1).squashed_ranks
    show(svc, f"task 1's late store squashed tasks {squashed}")


def figure12_13() -> None:
    print("\n== Figures 12/13: EC design, committed versions ==")
    svc = fresh("ec")
    svc.begin_task(0, 0)
    svc.begin_task(1, 1)
    svc.store(0, A, 0)
    svc.store(1, A, 1)
    svc.commit_head(0)
    svc.commit_head(1)
    svc.begin_task(0, 4)
    svc.begin_task(1, 5)
    svc.begin_task(2, 2)
    svc.begin_task(3, 3)
    svc.store(3, A, 3)
    show(svc, "committed versions 0,1; uncommitted version 3")
    value = svc.load(2, A).value
    show(svc, f"Fig 12: task 2 loaded {value}; committed 1 written back, "
              f"0 purged (memory={svc.memory.read_int(A, 4)})")
    svc.store(1, A, 5)
    show(svc, "Fig 13: task 5's store; VOL keeps the uncommitted versions")


def figure14_15() -> None:
    print("\n== Figures 14/15: the stale (T) bit ==")
    for store_by_3, label in ((False, "time line 1: no later store"),
                              (True, "time line 2: task 3 stores")):
        svc = fresh("ec")
        for cache_id in range(4):
            svc.begin_task(cache_id, cache_id)
        svc.store(0, A, 0)
        svc.store(1, A, 1)
        svc.load(2, A)
        if store_by_3:
            svc.store(3, A, 3)
        for cache_id in range(4):
            svc.commit_head(cache_id)
        for cache_id, rank in [(0, 4), (1, 5), (2, 6), (3, 7)]:
            svc.begin_task(cache_id, rank)
        before = svc.stats.get("bus_transactions")
        value = svc.load(2, A).value
        used_bus = svc.stats.get("bus_transactions") - before
        print(f"  {label}: task 6 loaded {value} "
              f"({'bus request' if used_bus else 'local reuse, no bus'})")


def figure17() -> None:
    print("\n== Figure 17: ECS design, VOL repair after a squash ==")
    svc = fresh("ecs")
    svc.begin_task(0, 0)
    svc.store(0, A, 0)
    svc.commit_head(0)
    svc.begin_task(1, 1)
    svc.begin_task(2, 2)
    svc.begin_task(3, 3)
    svc.begin_task(0, 4)
    svc.store(1, A, 1)
    svc.store(3, A, 3)
    show(svc, "before the squash (committed 0; versions 1, 3)")
    svc.squash_from_rank(3)
    show(svc, "tasks 3,4 squashed: version 3 invalidated, pointers dangle")
    svc.begin_task(3, 3)
    svc.begin_task(0, 4)
    value = svc.load(2, A).value
    show(svc, f"task 2's load repaired the VOL and got {value}")


def main(argv=None) -> None:
    global USE_CHECKER
    args = list(sys.argv[1:] if argv is None else argv)
    if "--no-checker" in args:
        USE_CHECKER = False
        args.remove("--no-checker")
    if args:
        raise SystemExit(f"unknown arguments: {args} (only --no-checker)")
    figure8()
    figure9()
    figure12_13()
    figure14_15()
    figure17()
    if USE_CHECKER:
        print("\n(all steps audited by the runtime invariant checker)")


if __name__ == "__main__":
    main()
