"""Litmus-test conformance corpus (``repro.litmus``).

Named memory-model litmus shapes — SB, MP, LB, IRIW, CoRR, CoWW plus
SVC-specific shapes — compiled into task programs and checked against
pinned per-tier allowed-outcome sets by exhaustive schedule exploration
(:mod:`repro.modelcheck`). ``python -m repro litmus`` is the CLI;
docs/LITMUS.md is the catalog.
"""

from repro.litmus.runner import (
    LitmusReport,
    ShapeCheck,
    build_parser,
    check_shape,
    litmus_main,
    run_litmus,
)
from repro.litmus.shapes import (
    LITMUS_SHAPES,
    LitmusShape,
    compile_shape,
    outcome_valuation,
    register_map,
    sequential_valuation,
)

__all__ = [
    "LITMUS_SHAPES",
    "LitmusReport",
    "LitmusShape",
    "ShapeCheck",
    "build_parser",
    "check_shape",
    "compile_shape",
    "litmus_main",
    "outcome_valuation",
    "register_map",
    "run_litmus",
    "sequential_valuation",
]
