"""The declarative litmus-shape catalog.

A litmus shape is the lingua franca of memory-system verification
(RealityCheck; "Taming Weak Memory Models"): a tiny named program, one
thread per task, plus a *pinned* set of allowed final outcomes and the
classic relaxed outcomes that must never appear. Here each thread is a
speculative task — SVC tasks carry a sequential program order, so the
allowed set of every shape is exactly the sequential execution's
outcome, and the corpus' claim is the paper's central one: speculative
versioning preserves sequential semantics at every design tier, under
*every* schedule, which :mod:`repro.modelcheck` proves exhaustively.

The DSL: a thread is a tuple of statements, ``("st", loc, value)`` or
``("ld", loc, reg)``. Locations ``x``/``y``/``z``/``w`` map to distinct
16-byte cache lines (so the classic shapes exercise cross-line
ordering, not false sharing); registers are per-shape-unique names
``r0``, ``r1``, ... bound to the committed value of their load. An
outcome *valuation* assigns every register its committed load value and
every location its final architected memory word.

``allowed`` / ``forbidden`` are tuples of (possibly partial) valuation
patterns: a valuation matches a pattern when every pattern key agrees.
``tier_allowed`` overrides the allowed set for individual tiers — today
every tier pins the same sequential set (that *is* the conformance
claim), but the axis is first-class so a deliberately weakened tier
could document its own set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Tuple

from repro.common.errors import ConfigError
from repro.hier.task import MemOp, TaskProgram
from repro.modelcheck.programs import LINE_SIZE, WORD_SIZE

#: Location names, each its own 16-byte line.
LOCATIONS = ("x", "y", "z", "w")

Statement = Tuple  # ("st", loc, value) | ("ld", loc, reg)
Valuation = Tuple[Tuple[str, int], ...]  # sorted (name, value) pairs


def location_address(loc: str) -> int:
    """Byte address of a named location (one full line per location)."""
    try:
        return LOCATIONS.index(loc) * LINE_SIZE
    except ValueError:
        raise ConfigError(
            f"unknown litmus location {loc!r}; choose from {LOCATIONS}"
        ) from None


@dataclass(frozen=True)
class LitmusShape:
    """One named litmus shape with its pinned outcome sets."""

    name: str
    title: str
    #: Where the shape comes from (catalog paper / SVC paper section).
    source: str
    threads: Tuple[Tuple[Statement, ...], ...]
    #: Pinned allowed outcomes — every one must be observed, and every
    #: observed outcome must match exactly one of them.
    allowed: Tuple[Mapping[str, int], ...]
    #: Relaxed outcomes that must be proven unreachable.
    forbidden: Tuple[Mapping[str, int], ...]
    #: PUs to build (tasks beyond this count exercise PU reuse).
    pus: int = 2
    description: str = ""
    #: Per-tier allowed-set overrides (tier name -> patterns).
    tier_allowed: Mapping[str, Tuple[Mapping[str, int], ...]] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def allowed_for(self, tier: str) -> Tuple[Mapping[str, int], ...]:
        return self.tier_allowed.get(tier, self.allowed)

    def locations(self) -> Tuple[str, ...]:
        used = []
        for thread in self.threads:
            for stmt in thread:
                if stmt[1] not in used:
                    used.append(stmt[1])
        return tuple(sorted(used, key=LOCATIONS.index))

    def registers(self) -> Tuple[str, ...]:
        return tuple(reg for reg, _ in sorted(register_map(self).items(),
                                              key=lambda kv: kv[1]))


def compile_shape(shape: LitmusShape) -> Tuple[TaskProgram, ...]:
    """Lower a shape's threads into task programs, thread order = rank
    order (the sequential order the tiers must preserve)."""
    tasks = []
    for rank, thread in enumerate(shape.threads):
        ops = []
        for stmt in thread:
            kind = stmt[0]
            if kind == "st":
                _, loc, value = stmt
                ops.append(MemOp.store(location_address(loc), value, WORD_SIZE))
            elif kind == "ld":
                _, loc, _reg = stmt
                ops.append(MemOp.load(location_address(loc), WORD_SIZE))
            else:
                raise ConfigError(f"unknown litmus statement kind {kind!r}")
        tasks.append(TaskProgram(ops=ops, name=f"{shape.name}/t{rank}"))
    return tuple(tasks)


def register_map(shape: LitmusShape) -> Dict[str, Tuple[int, int]]:
    """``register -> (rank, load ordinal)`` for outcome extraction.

    The ordinal indexes the task's committed load values
    (``DriverReport.load_values[rank]``), which follow program order.
    """
    mapping: Dict[str, Tuple[int, int]] = {}
    for rank, thread in enumerate(shape.threads):
        ordinal = 0
        for stmt in thread:
            if stmt[0] != "ld":
                continue
            reg = stmt[2]
            if reg in mapping:
                raise ConfigError(
                    f"shape {shape.name!r}: register {reg!r} bound twice"
                )
            mapping[reg] = (rank, ordinal)
            ordinal += 1
    return mapping


def outcome_valuation(shape: LitmusShape, outcome) -> Valuation:
    """Map one modelcheck :data:`~repro.modelcheck.explorer.Outcome`
    (committed load values + final memory image) onto the shape's
    registers and locations."""
    load_values, image_items = outcome
    image = dict(image_items)
    values: Dict[str, int] = {}
    for reg, (rank, ordinal) in register_map(shape).items():
        try:
            values[reg] = load_values[rank][ordinal]
        except IndexError:
            raise ConfigError(
                f"shape {shape.name!r}: outcome has no load {ordinal} "
                f"for task {rank} (register {reg!r})"
            ) from None
    for loc in shape.locations():
        base = location_address(loc)
        values[loc] = sum(
            image.get(base + i, 0) << (8 * i) for i in range(WORD_SIZE)
        )
    return tuple(sorted(values.items()))


def matches(valuation: Valuation, pattern: Mapping[str, int]) -> bool:
    """True when every key the pattern pins agrees with the valuation."""
    values = dict(valuation)
    return all(values.get(key) == want for key, want in pattern.items())


def sequential_valuation(shape: LitmusShape) -> Valuation:
    """The sequential execution's valuation (the oracle ground truth the
    pinned allowed sets are checked against by the corpus self-test)."""
    from repro.oracle.sequential import SequentialOracle

    tasks = list(compile_shape(shape))
    result = SequentialOracle().run(tasks)
    outcome = (
        tuple(tuple(values) for values in result.load_values),
        tuple(sorted(result.memory_image.items())),
    )
    return outcome_valuation(shape, outcome)


def _shape(**kwargs) -> LitmusShape:
    shape = LitmusShape(**kwargs)
    register_map(shape)  # validates register uniqueness eagerly
    return shape


#: The corpus. Classic shapes cite the weak-memory catalog; SVC shapes
#: cite the paper section whose machinery they exercise.
LITMUS_SHAPES: Dict[str, LitmusShape] = {
    shape.name: shape
    for shape in (
        _shape(
            name="sb",
            title="Store buffering (Dekker)",
            source="Taming Weak Memory Models; x86-TSO's signature relaxation",
            threads=(
                (("st", "x", 1), ("ld", "y", "r0")),
                (("st", "y", 1), ("ld", "x", "r1")),
            ),
            allowed=({"r0": 0, "r1": 1, "x": 1, "y": 1},),
            forbidden=({"r0": 0, "r1": 0}, {"r0": 1, "r1": 0}),
            description=(
                "Each task stores one flag then reads the other's. Task "
                "order makes r0=0,r1=1 the only sequential outcome; both "
                "readings of 'neither saw the other' are forbidden."
            ),
        ),
        _shape(
            name="mp",
            title="Message passing",
            source="Taming Weak Memory Models (MP); handoff idiom",
            threads=(
                (("st", "x", 1), ("st", "y", 1)),
                (("ld", "y", "r0"), ("ld", "x", "r1")),
            ),
            allowed=({"r0": 1, "r1": 1, "x": 1, "y": 1},),
            forbidden=({"r0": 1, "r1": 0}, {"r0": 0, "r1": 0}),
            description=(
                "Producer writes data (x) then flag (y); later task reads "
                "flag then data. Seeing the flag without the data — the "
                "classic weak-memory MP relaxation — must be unreachable, "
                "as must missing the committed flag entirely."
            ),
        ),
        _shape(
            name="lb",
            title="Load buffering",
            source="Taming Weak Memory Models (LB); out-of-thin-air guard",
            threads=(
                (("ld", "x", "r0"), ("st", "y", 1)),
                (("ld", "y", "r1"), ("st", "x", 1)),
            ),
            allowed=({"r0": 0, "r1": 1, "x": 1, "y": 1},),
            forbidden=({"r0": 1, "r1": 1}, {"r0": 1, "r1": 0}),
            description=(
                "Loads before cross stores. r0=1,r1=1 (each load sees the "
                "other task's later store) is the LB cycle; r0 can never "
                "see x=1 because that store is by the *younger* task."
            ),
        ),
        _shape(
            name="iriw",
            title="Independent reads of independent writes",
            source="Taming Weak Memory Models (IRIW); multi-copy atomicity",
            pus=4,
            threads=(
                (("st", "x", 1),),
                (("ld", "x", "r0"), ("ld", "y", "r1")),
                (("st", "y", 1),),
                (("ld", "y", "r2"), ("ld", "x", "r3")),
            ),
            allowed=(
                {"r0": 1, "r1": 0, "r2": 1, "r3": 1, "x": 1, "y": 1},
            ),
            forbidden=(
                {"r0": 1, "r1": 0, "r2": 1, "r3": 0},
                {"r1": 1},
            ),
            description=(
                "Two writers, two readers on four PUs. Readers disagreeing "
                "on the write order (r0=1,r1=0 but r2=1,r3=0) is the "
                "non-multi-copy-atomic outcome; r1=1 would read a store by "
                "a younger task."
            ),
        ),
        _shape(
            name="corr",
            title="Coherence: read-read same location",
            source="Taming Weak Memory Models (CoRR); per-location order",
            threads=(
                (("st", "x", 1),),
                (("ld", "x", "r0"), ("ld", "x", "r1")),
            ),
            allowed=({"r0": 1, "r1": 1, "x": 1},),
            forbidden=({"r0": 1, "r1": 0},),
            description=(
                "Two reads of one location may never observe values going "
                "backwards: once the committed store is visible, a later "
                "read in the same task cannot un-see it."
            ),
        ),
        _shape(
            name="coww",
            title="Coherence: write-write same location",
            source="Taming Weak Memory Models (CoWW); store order",
            threads=(
                (("st", "x", 1), ("st", "x", 2)),
                (("ld", "x", "r0"),),
            ),
            allowed=({"r0": 2, "x": 2},),
            forbidden=({"x": 1}, {"r0": 1}),
            description=(
                "Same-task stores to one location must retire in program "
                "order: the final architected value is the second store's, "
                "and the later task can only see it."
            ),
        ),
        _shape(
            name="svc_treuse",
            title="SVC: passive copy reuse across PU reassignment",
            source="SVC paper section 3.4 (T bit, stale-copy reuse)",
            pus=2,
            threads=(
                (("st", "x", 1),),
                (("ld", "y", "r0"),),
                (("ld", "x", "r1"),),
            ),
            allowed=({"r0": 0, "r1": 1, "x": 1},),
            forbidden=({"r1": 0},),
            description=(
                "Three tasks on two PUs: task 2 reuses task 0's PU, whose "
                "cache still holds the committed x line as a passive copy. "
                "EC+ tiers satisfy the load from that copy via the T bit; "
                "every tier must still deliver the committed value — a "
                "stale r1=0 is the bug the T-bit machinery must not admit."
            ),
        ),
        _shape(
            name="svc_xreact",
            title="SVC: local reactivation of a passive line",
            source="SVC paper sections 3.4-3.5 (X bit, reactivation)",
            pus=2,
            threads=(
                (("ld", "x", "r0"), ("st", "x", 1)),
                (("ld", "x", "r1"),),
                (("st", "x", 2), ("ld", "x", "r2")),
            ),
            allowed=({"r0": 0, "r1": 1, "r2": 2, "x": 2},),
            forbidden=({"r2": 1}, {"r1": 2}, {"x": 1}),
            description=(
                "Task 2 reuses task 0's PU and overwrites the line task 0 "
                "left behind, exercising local reactivation (X bit) of a "
                "passive copy. Its own load must see its new store (r2=2, "
                "never the stale 1), task 1 must not see the younger "
                "task's store, and the final memory is task 2's value."
            ),
        ),
    )
}
