"""Conformance checking and the ``python -m repro litmus`` CLI.

One *unit* is (shape, tier): compile the shape, exhaustively explore
every schedule on that design tier (:func:`repro.modelcheck.explorer.
explore_case`), map each terminal outcome onto the shape's registers
and locations, and hold the result against the shape's pinned sets:

* every observed valuation must match an **allowed** pattern,
* every allowed pattern must actually be observed (a vacuously passing
  shape is a corpus bug),
* no observed valuation may match a **forbidden** pattern, and the
  exploration must be exhaustive (not truncated) — that pair is what
  "proven unreachable" means,
* the exploration must produce no oracle/invariant counterexamples.

Units fan out over :func:`repro.harness.parallel.parallel_map` exactly
like model-check units. ``--explain`` prints, for each observed
valuation, the schedule that witnessed it (from the explorer's
first-reach witness map).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.harness.parallel import parallel_map, resolve_workers
from repro.litmus.shapes import (
    LITMUS_SHAPES,
    LitmusShape,
    compile_shape,
    matches,
    outcome_valuation,
)
from repro.modelcheck.explorer import explore_case
from repro.modelcheck.programs import bound_geometry, bounds_for_programs
from repro.replay import Case
from repro.svc.designs import DESIGNS

#: Conformance targets: the six SVC design tiers.
ALL_TIERS = tuple(DESIGNS)

#: Default per-unit node budget. Shapes are tiny (<= 4 tasks, <= 6 ops)
#: so real explorations sit orders of magnitude below this; hitting it
#: marks the unit truncated and therefore failing.
DEFAULT_MAX_NODES = 200_000

Valuation = Tuple[Tuple[str, int], ...]


def _format_valuation(valuation: Valuation) -> str:
    return "{" + ", ".join(f"{k}={v}" for k, v in valuation) + "}"


def _format_pattern(pattern) -> str:
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(pattern.items())) + "}"


def _format_schedule(script: Sequence[Tuple[str, int]]) -> str:
    return " ".join(f"{kind}(t{rank})" for kind, rank in script)


@dataclass
class ShapeCheck:
    """What exhaustive exploration established for one (shape, tier)."""

    shape: str
    tier: str
    schedules: int = 0
    nodes: int = 0
    truncated: bool = False
    #: Observed valuations, sorted, with one witnessing schedule each.
    observed: List[Valuation] = field(default_factory=list)
    witnesses: Dict[Valuation, Tuple[Tuple[str, int], ...]] = field(
        default_factory=dict
    )
    #: Forbidden patterns proven unreachable (all of them, when ok).
    unreachable: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def describe(self, explain: bool = False) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"{self.shape:>12}/{self.tier:<5} {status}: "
            f"{self.schedules} schedules, {self.nodes} nodes, "
            f"{len(self.observed)} outcome(s), "
            f"{len(self.unreachable)} forbidden unreachable"
        ]
        if explain:
            for valuation in self.observed:
                witness = self.witnesses.get(valuation)
                lines.append(f"    outcome {_format_valuation(valuation)}")
                if witness is not None:
                    lines.append(f"      witness: {_format_schedule(witness)}")
            for pattern in self.unreachable:
                lines.append(f"    unreachable: {pattern}")
        for problem in self.problems:
            lines.append(f"    problem: {problem}")
        return "\n".join(lines)


def check_shape(
    shape: LitmusShape,
    tier: str,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> ShapeCheck:
    """Exhaustively check one shape on one design tier."""
    if tier not in ALL_TIERS:
        raise ConfigError(f"unknown tier {tier!r}; choose from {ALL_TIERS}")
    tasks = compile_shape(shape)
    bounds = bounds_for_programs([tasks], pus=shape.pus)
    case = Case(
        design=tier,
        tasks=tasks,
        geometry=bound_geometry(bounds),
        schedule="script",
        checker=True,
        check_invariants=True,
        n_caches=bounds.pus,
    )
    result = explore_case(case, max_nodes=max_nodes, max_counterexamples=1)

    check = ShapeCheck(
        shape=shape.name,
        tier=tier,
        schedules=result.schedules,
        nodes=result.nodes,
        truncated=result.truncated,
    )
    for failing, failure in result.counterexamples:
        check.problems.append(
            f"counterexample ({failure.describe()}) at schedule "
            f"{_format_schedule(failing.script or ())}"
        )
    if result.truncated:
        check.problems.append(
            f"exploration truncated at {result.nodes} nodes — "
            "unreachability cannot be claimed"
        )

    valuations: Dict[Valuation, Tuple[Tuple[str, int], ...]] = {}
    for outcome in result.outcomes:
        valuation = outcome_valuation(shape, outcome)
        if valuation not in valuations:
            valuations[valuation] = result.witnesses.get(outcome, ())
    check.observed = sorted(valuations)
    check.witnesses = valuations

    allowed = shape.allowed_for(tier)
    for valuation in check.observed:
        if not any(matches(valuation, pattern) for pattern in allowed):
            check.problems.append(
                f"unexpected outcome {_format_valuation(valuation)} "
                f"(witness: {_format_schedule(valuations[valuation])})"
            )
    for pattern in allowed:
        if not any(matches(v, pattern) for v in check.observed):
            check.problems.append(
                f"allowed outcome {_format_pattern(pattern)} never observed"
            )
    for pattern in shape.forbidden:
        hits = [v for v in check.observed if matches(v, pattern)]
        if hits:
            check.problems.append(
                f"forbidden outcome {_format_pattern(pattern)} REACHED: "
                f"{_format_valuation(hits[0])} via "
                f"{_format_schedule(valuations[hits[0]])}"
            )
        elif not result.truncated and not result.counterexamples:
            check.unreachable.append(_format_pattern(pattern))
    return check


@dataclass
class LitmusReport:
    """Everything one corpus run established."""

    shapes: Tuple[str, ...]
    tiers: Tuple[str, ...]
    checks: List[ShapeCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def conformant(self) -> int:
        return sum(1 for check in self.checks if check.ok)

    @property
    def outcomes(self) -> int:
        return sum(len(check.observed) for check in self.checks)

    @property
    def unreachable(self) -> int:
        return sum(len(check.unreachable) for check in self.checks)

    def describe(self, explain: bool = False) -> str:
        lines = [check.describe(explain) for check in self.checks]
        lines.append(
            f"litmus: {len(self.shapes)} shapes x {len(self.tiers)} tiers, "
            f"{self.conformant}/{len(self.checks)} conformant, "
            f"{self.outcomes} allowed outcomes verified, "
            f"{self.unreachable} forbidden outcomes proven unreachable"
        )
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _check_unit(payload: Dict) -> Dict:
    """One (shape, tier) unit. Top-level so it pickles for the pool."""
    shape = LITMUS_SHAPES[payload["shape"]]
    check = check_shape(shape, payload["tier"], max_nodes=payload["max_nodes"])
    data = dataclasses.asdict(check)
    # dict keys must survive JSON-ish transport layers; keep tuples.
    data["witnesses"] = [
        [list(map(list, valuation)), list(map(list, witness))]
        for valuation, witness in check.witnesses.items()
    ]
    data["observed"] = [list(map(list, v)) for v in check.observed]
    return data


def _check_from_dict(data: Dict) -> ShapeCheck:
    observed = [tuple((k, v) for k, v in valuation) for valuation in data["observed"]]
    witnesses = {
        tuple((k, v) for k, v in valuation): tuple(
            (kind, rank) for kind, rank in witness
        )
        for valuation, witness in data["witnesses"]
    }
    return ShapeCheck(
        shape=data["shape"],
        tier=data["tier"],
        schedules=data["schedules"],
        nodes=data["nodes"],
        truncated=data["truncated"],
        observed=observed,
        witnesses=witnesses,
        unreachable=list(data["unreachable"]),
        problems=list(data["problems"]),
    )


def run_litmus(
    shapes: Optional[Sequence[str]] = None,
    tiers: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    max_nodes: int = DEFAULT_MAX_NODES,
    log=None,
) -> LitmusReport:
    """Check ``shapes`` (default: the full corpus) on ``tiers`` (default:
    all six design tiers), fanning (shape, tier) units over workers."""
    shapes = tuple(shapes) if shapes else tuple(LITMUS_SHAPES)
    for name in shapes:
        if name not in LITMUS_SHAPES:
            raise ConfigError(
                f"unknown litmus shape {name!r}; "
                f"choose from {sorted(LITMUS_SHAPES)}"
            )
    tiers = tuple(tiers) if tiers else ALL_TIERS
    for tier in tiers:
        if tier not in ALL_TIERS:
            raise ConfigError(f"unknown tier {tier!r}; choose from {ALL_TIERS}")

    payloads = [
        {"shape": name, "tier": tier, "max_nodes": max_nodes}
        for name in shapes
        for tier in tiers
    ]
    if log is not None:
        log(
            f"checking {len(shapes)} shapes x {len(tiers)} tiers "
            f"({len(payloads)} units, {resolve_workers(workers)} workers)"
        )
    results = parallel_map(_check_unit, payloads, workers)
    report = LitmusReport(shapes=shapes, tiers=tiers)
    report.checks = [_check_from_dict(data) for data in results]
    return report


def build_parser():
    """Argument parser for ``python -m repro litmus`` (exposed so
    tools/check_docs.py can validate commands quoted in the docs)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro litmus",
        description="Run the litmus-shape conformance corpus: exhaustive "
        "schedule exploration of every named shape against its pinned "
        "per-tier allowed-outcome set.",
    )
    parser.add_argument(
        "shapes", nargs="*",
        help=f"shape names to run (default: all; known: "
        f"{', '.join(sorted(LITMUS_SHAPES))})",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="run the full corpus (the default when no shapes are named)",
    )
    parser.add_argument(
        "--tier", default="all",
        help="comma-separated design tiers, or 'all' "
        f"(default: all = {','.join(ALL_TIERS)})",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print each observed outcome's witnessing schedule and the "
        "forbidden outcomes proven unreachable",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the shape catalog and exit",
    )
    parser.add_argument(
        "--workers", default=None,
        help="worker processes (default: REPRO_WORKERS or serial; 0 = all CPUs)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=DEFAULT_MAX_NODES,
        help="per-unit node budget before truncation (truncation fails)",
    )
    return parser


def litmus_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro litmus [shape ...] [--tier T] [--explain]``"""
    args = build_parser().parse_args(argv)

    if args.list:
        for name in sorted(LITMUS_SHAPES):
            shape = LITMUS_SHAPES[name]
            print(f"{name:>12}  {shape.title}  [{shape.source}]")
        return 0
    if args.all and args.shapes:
        print("--all and explicit shape names are mutually exclusive")
        return 2
    shapes = tuple(args.shapes) if args.shapes else None
    tiers = (
        None if args.tier == "all"
        else tuple(t for t in args.tier.split(",") if t)
    )
    try:
        report = run_litmus(
            shapes=shapes,
            tiers=tiers,
            workers=args.workers,
            max_nodes=args.max_nodes,
            log=print,
        )
    except ConfigError as error:
        print(f"config error: {error}")
        return 2
    print(report.describe(explain=args.explain))
    return 0 if report.ok else 1
