"""Task and memory-operation data model.

A :class:`TaskProgram` is one fragment of the dynamic instruction stream:
the sequence of loads and stores it performs (the functional model) plus
optional non-memory instruction padding (consumed only by the timing
model). Ranks — the position of a task in the program's task sequence —
are assigned by whoever builds the task list, not stored here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple


class OpKind:
    """Operation kinds a task can contain."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"  # non-memory instruction (timing model only)


@dataclass(frozen=True, slots=True)
class MemOp:
    """One operation of a task.

    For stores, the written data is ``value`` plus the sum of the values
    observed by the earlier *load* ops named in ``value_deps`` — enough
    dataflow to express real kernels (``hist[b] += 1`` is a load, then a
    store with ``value=1, value_deps=(load_index,)``). For loads,
    ``value`` is unused — the executed value is observed at run time.
    ``latency`` and ``depends_on`` matter only to the timing model:
    ``depends_on`` lists indices of earlier ops in the same task whose
    results this op consumes.
    """

    kind: str
    addr: int = 0
    size: int = 4
    value: int = 0
    latency: int = 1
    depends_on: Tuple[int, ...] = ()
    value_deps: Tuple[int, ...] = ()

    @staticmethod
    def load(addr: int, size: int = 4, **kwargs) -> "MemOp":
        return MemOp(kind=OpKind.LOAD, addr=addr, size=size, **kwargs)

    @staticmethod
    def store(addr: int, value: int, size: int = 4, **kwargs) -> "MemOp":
        return MemOp(kind=OpKind.STORE, addr=addr, size=size, value=value, **kwargs)

    def store_value(self, loaded_by_index) -> int:
        """The data a store writes, given the task's observed loads.

        ``loaded_by_index`` maps op index -> value for the loads of the
        current execution attempt.
        """
        total = self.value + sum(loaded_by_index[d] for d in self.value_deps)
        return total & ((1 << (8 * self.size)) - 1)

    @staticmethod
    def compute(latency: int = 1, depends_on: Tuple[int, ...] = ()) -> "MemOp":
        return MemOp(kind=OpKind.COMPUTE, latency=latency, depends_on=depends_on)


@dataclass
class TaskProgram:
    """One task: an ordered list of operations.

    ``mispredicted`` marks a task instance that the control-flow
    predictor would have gotten wrong: the timing sequencer dispatches
    it, later detects the misprediction, and squashes it and everything
    younger (section 2.1's task squash).
    """

    ops: List[MemOp] = field(default_factory=list)
    name: Optional[str] = None
    mispredicted: bool = False
    #: Lazily computed filter of ``ops``; the drivers index into it on
    #: every step, so it must not be rebuilt per access. Invalidated by
    #: :meth:`replace_ops` — mutate ``ops`` only through that.
    _memory_ops: Optional[List[MemOp]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def memory_ops(self) -> List[MemOp]:
        if self._memory_ops is None:
            self._memory_ops = [
                op for op in self.ops if op.kind != OpKind.COMPUTE
            ]
        return self._memory_ops

    def replace_ops(self, ops: List[MemOp]) -> None:
        """Swap the op list, dropping the cached memory-op filter."""
        self.ops = ops
        self._memory_ops = None

    def __len__(self) -> int:
        return len(self.ops)


def task_program_from_ops(
    ops: Iterable[Sequence], name: Optional[str] = None
) -> TaskProgram:
    """Build a task from compact tuples.

    Accepts ``("load", addr)``, ``("load", addr, size)``,
    ``("store", addr, value)`` and ``("store", addr, value, size)`` —
    the format the tests and examples use for paper walkthroughs.
    """
    built: List[MemOp] = []
    for op in ops:
        kind = op[0]
        if kind == OpKind.LOAD:
            addr = op[1]
            size = op[2] if len(op) > 2 else 4
            built.append(MemOp.load(addr, size))
        elif kind == OpKind.STORE:
            addr, value = op[1], op[2]
            size = op[3] if len(op) > 3 else 4
            built.append(MemOp.store(addr, value, size))
        else:
            raise ValueError(f"unknown op kind {kind!r}")
    return TaskProgram(ops=built, name=name)
