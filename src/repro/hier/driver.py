"""Functional speculative-execution driver.

Replays a list of task programs over a speculative memory system (SVC or
ARB) under an arbitrary — by default randomized — interleaving of PU
steps, faithfully exercising the hierarchical execution model:

* tasks are dispatched in sequence order to free PUs,
* each PU executes its task's operations in program order (the paper's
  per-PU load/store queue guarantee) while PUs interleave freely,
* a store that triggers a memory-dependence violation squashes the
  offending task and everything younger; the driver re-dispatches them,
* optional injected "misprediction" squashes exercise the recovery paths
  at random points,
* tasks commit strictly in sequence order (head first).

The driver records the load values observed by the *committed* execution
of every task; :mod:`repro.oracle` checks them — and the drained memory
image — against a sequential execution of the same program. This is the
machinery behind the hypothesis property tests.

The memory system must provide the duck-typed interface of
:class:`repro.svc.SVCSystem`: ``begin_task``, ``commit_head``,
``squash_from_rank``, ``load``, ``store``, ``drain`` and ``n_units``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ReplacementStall, SimulationError
from repro.faults import FaultInjector, FaultPlan
from repro.hier.task import OpKind, TaskProgram
from repro.telemetry import RUN, SQUASH


@dataclass
class _TaskState:
    program: TaskProgram
    pu: Optional[int] = None
    op_index: int = 0
    observed_loads: List[int] = field(default_factory=list)
    #: op index -> loaded value for this execution attempt (dataflow
    #: into stores with value_deps).
    loaded_by_index: Dict[int, int] = field(default_factory=dict)
    executions: int = 0
    committed: bool = False

    @property
    def finished(self) -> bool:
        return self.op_index >= len(self.program.memory_ops)

    def op_position(self) -> int:
        """Index of the current memory op within the *full* op list
        (value_deps are expressed in full-list positions)."""
        positions = [
            i for i, op in enumerate(self.program.ops) if op.kind != OpKind.COMPUTE
        ]
        return positions[self.op_index]


@dataclass
class DriverReport:
    """What a speculative run produced, for oracle comparison."""

    load_values: List[List[int]]
    steps: int
    violation_squashes: int
    injected_squashes: int
    replacement_stalls: int
    task_executions: List[int]


class SpeculativeExecutionDriver:
    """Randomized functional executor for the hierarchical model."""

    #: Scheduling policies: ``random`` interleaves arbitrarily;
    #: ``oldest_first`` approximates in-order progress (fewest
    #: violations); ``youngest_first`` is adversarial — consumers run
    #: ahead of producers, maximizing misspeculation and recovery.
    SCHEDULES = ("random", "oldest_first", "youngest_first")

    #: Scheduler rounds without a completed op or commit before the
    #: watchdog declares the run livelocked (a stalled-retry loop that
    #: will never resolve) instead of spinning to max_steps.
    WATCHDOG_ROUNDS = 250

    def __init__(
        self,
        system,
        tasks: List[TaskProgram],
        seed: int = 0,
        squash_probability: float = 0.0,
        max_steps: Optional[int] = None,
        schedule: str = "random",
        fault_plan: Optional[FaultPlan] = None,
        watchdog_rounds: Optional[int] = None,
    ) -> None:
        if schedule not in self.SCHEDULES:
            raise SimulationError(
                f"unknown schedule {schedule!r}; choose from {self.SCHEDULES}"
            )
        self.system = system
        self.tasks = [_TaskState(program=t) for t in tasks]
        self.rng = random.Random(seed)
        self.schedule = schedule
        self.squash_probability = squash_probability
        self.max_steps = (
            max_steps
            if max_steps is not None
            else 2000 + 400 * sum(len(t.memory_ops) + 1 for t in tasks)
        )
        self.fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        if self.fault_injector is not None:
            self.fault_injector.install(system)
        self.watchdog_rounds = (
            watchdog_rounds if watchdog_rounds is not None else self.WATCHDOG_ROUNDS
        )
        self._next_dispatch = 0
        #: First rank not yet committed; commits are strictly in rank
        #: order and never undone, so this only ever advances — an
        #: amortized-O(1) replacement for scanning the task list.
        self._head_ptr = 0
        self._free_pus = list(range(system.n_units))
        self._violations = 0
        self._injected = 0
        self._stalls = 0
        #: Monotone count of completed ops and commits — the watchdog's
        #: definition of forward progress.
        self._progress = 0
        #: Ranks whose last attempt hit a ReplacementStall; deprioritized
        #: by the deterministic schedules until something else progresses
        #: (prevents a youngest-first livelock on a stalled task).
        self._recently_stalled = set()
        #: Telemetry, resolved once at wiring time from the system (the
        #: system already applied :func:`repro.telemetry.wired`).
        self._telemetry = getattr(system, "telemetry", None)

    # -- helpers ---------------------------------------------------------------

    def _dispatch(self) -> None:
        while self._free_pus and self._next_dispatch < len(self.tasks):
            rank = self._next_dispatch
            pu = self._free_pus.pop(0)
            state = self.tasks[rank]
            state.pu = pu
            state.op_index = 0
            state.observed_loads = []
            state.loaded_by_index = {}
            state.executions += 1
            self.system.begin_task(pu, rank)
            self._next_dispatch += 1

    def _head_rank(self) -> Optional[int]:
        tasks = self.tasks
        head = self._head_ptr
        while head < len(tasks) and tasks[head].committed:
            head += 1
        self._head_ptr = head
        if head >= len(tasks):
            return None
        return head if tasks[head].pu is not None else None

    def _reset_squashed(self, squashed_ranks: List[int]) -> None:
        """Re-dispatch squashed tasks on their PUs (same rank, fresh run)."""
        for rank in sorted(squashed_ranks):
            state = self.tasks[rank]
            if state.pu is None:
                raise SimulationError(f"squashed rank {rank} had no PU")
            state.op_index = 0
            state.observed_loads = []
            state.loaded_by_index = {}
            state.executions += 1
            self.system.begin_task(state.pu, rank)

    def _inject_squash(self) -> None:
        """Misprediction-style squash of a random non-head active task."""
        head = self._head_rank()
        active = [
            rank
            for rank, state in enumerate(self.tasks)
            if state.pu is not None and not state.committed and rank != head
        ]
        if not active:
            return
        victim = self.rng.choice(active)
        if self._telemetry is not None:
            self._telemetry.instant(
                SQUASH, f"inject squash rank {victim}", rank=victim,
                reason="misprediction",
            )
        squashed = self.system.squash_from_rank(victim, reason="misprediction")
        self._injected += 1
        self._reset_squashed(squashed)

    def _step_pu(self, rank: int) -> None:
        state = self.tasks[rank]
        # The head task is non-speculative (paper section 2): its stores are
        # architectural and may already have reached memory, so no squash
        # mechanism exists for it. A forced squash aimed at the current head
        # is therefore protocol-illegal and must not fire.
        if (
            self.fault_injector is not None
            and rank != self._head_rank()
            and self.fault_injector.forced_squash(rank, state.op_index)
        ):
            squashed = self.system.squash_from_rank(rank, reason="fault")
            self._injected += 1
            self._reset_squashed(squashed)
            return
        op = state.program.memory_ops[state.op_index]
        try:
            if op.kind == OpKind.LOAD:
                result = self.system.load(state.pu, op.addr, op.size)
                state.observed_loads.append(result.value)
                state.loaded_by_index[state.op_position()] = result.value
                state.op_index += 1
            elif op.kind == OpKind.STORE:
                value = op.store_value(state.loaded_by_index)
                result = self.system.store(state.pu, op.addr, value, op.size)
                state.op_index += 1
                if result.squashed_ranks:
                    self._violations += 1
                    self._reset_squashed(result.squashed_ranks)
            else:
                raise SimulationError(f"functional driver got op kind {op.kind!r}")
            self._recently_stalled.discard(rank)
            self._progress += 1
        except ReplacementStall:
            self._stalls += 1  # retried on a later step
            self._recently_stalled.add(rank)

    def _commit_head(self, rank: int) -> None:
        state = self.tasks[rank]
        self.system.commit_head(state.pu)
        state.committed = True
        self._free_pus.append(state.pu)
        state.pu = None
        self._progress += 1
        # A commit frees capacity: stalled tasks may proceed now.
        self._recently_stalled.clear()

    def _stall_report(self, rounds: int) -> str:
        """Per-rank diagnostics for a watchdog-detected livelock: which
        tasks are stuck, where, and how often they were re-executed."""
        lines = [
            f"no forward progress for {rounds} scheduler rounds "
            f"({self._stalls} replacement stalls so far); per-rank state:"
        ]
        for rank, state in enumerate(self.tasks):
            if state.committed:
                continue
            status = (
                "stalled" if rank in self._recently_stalled else "runnable"
            )
            where = (
                "waiting to dispatch"
                if state.pu is None
                else f"pu={state.pu} op {state.op_index}/"
                f"{len(state.program.memory_ops)}"
            )
            lines.append(
                f"  rank {rank}: {where} executions={state.executions} {status}"
            )
        return "\n".join(lines)

    # -- main loop ---------------------------------------------------------------

    def run(self) -> DriverReport:
        telemetry = self._telemetry
        if telemetry is None:
            return self._run_impl()
        span = telemetry.begin(
            RUN,
            "functional run",
            tasks=len(self.tasks),
            schedule=self.schedule,
        )
        try:
            report = self._run_impl()
        finally:
            # Closes the span and any descendants a raise left open.
            telemetry.end(span)
        telemetry.end(
            span,
            steps=report.steps,
            violation_squashes=report.violation_squashes,
            injected_squashes=report.injected_squashes,
            replacement_stalls=report.replacement_stalls,
        )
        return report

    def _run_impl(self) -> DriverReport:
        steps = 0
        last_progress = self._progress
        stalled_rounds = 0
        self._dispatch()
        while not all(state.committed for state in self.tasks):
            steps += 1
            if steps > self.max_steps:
                raise SimulationError(
                    f"driver exceeded {self.max_steps} steps; "
                    "likely livelock in the protocol or the schedule"
                )
            if self._progress == last_progress:
                stalled_rounds += 1
                if stalled_rounds > self.watchdog_rounds:
                    raise SimulationError(self._stall_report(stalled_rounds))
            else:
                last_progress = self._progress
                stalled_rounds = 0
            if self.squash_probability and self.rng.random() < self.squash_probability:
                self._inject_squash()
            if (
                self.fault_injector is not None
                and self.fault_injector.wants_random_squash()
            ):
                self._inject_squash()

            head = self._head_rank()
            candidates = []
            for rank, state in enumerate(self.tasks):
                if state.pu is None or state.committed:
                    continue
                if state.finished:
                    if rank == head:
                        candidates.append(("commit", rank))
                else:
                    candidates.append(("op", rank))
            if not candidates:
                raise SimulationError("no runnable PU and tasks remain")
            preferred = [
                c for c in candidates if c[1] not in self._recently_stalled
            ] or candidates
            if self.schedule == "oldest_first":
                action, rank = min(preferred, key=lambda c: c[1])
            elif self.schedule == "youngest_first":
                # Commits still happen when only a commit is possible;
                # otherwise always push the youngest task forward.
                ops = [c for c in preferred if c[0] == "op"]
                action, rank = max(ops or preferred, key=lambda c: c[1])
            else:
                action, rank = self.rng.choice(candidates)
            if action == "commit":
                self._commit_head(rank)
                self._dispatch()
            else:
                self._step_pu(rank)

        self.system.drain()
        return DriverReport(
            load_values=[state.observed_loads for state in self.tasks],
            steps=steps,
            violation_squashes=self._violations,
            injected_squashes=self._injected,
            replacement_stalls=self._stalls,
            task_executions=[state.executions for state in self.tasks],
        )
