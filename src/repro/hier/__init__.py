"""Hierarchical execution model (paper section 2.1).

A sequential program is partitioned into *tasks*; a higher-level control
unit predicts the next task and assigns it to a free processing unit.
Tasks execute speculatively in parallel, commit one by one in sequence
order, and a misprediction or memory-dependence violation squashes a
task and everything after it.

This package holds the task/operation data model and the *functional*
speculative execution driver used to validate protocol semantics against
the sequential oracle. The cycle-level processor model built on the same
abstractions lives in :mod:`repro.timing`.
"""

from repro.hier.task import MemOp, OpKind, TaskProgram, task_program_from_ops
from repro.hier.driver import DriverReport, SpeculativeExecutionDriver

__all__ = [
    "DriverReport",
    "MemOp",
    "OpKind",
    "SpeculativeExecutionDriver",
    "TaskProgram",
    "task_program_from_ops",
]
