"""Process-parallel fan-out of experiment points.

Every experiment in :mod:`repro.harness.experiments` is a list of
independent (benchmark, machine) points: each point regenerates its own
seeded workload and runs a fresh machine, so points share no mutable
state and parallelize embarrassingly. This module fans a list of
:class:`PointSpec` descriptors over a ``ProcessPoolExecutor`` and
returns the per-point results *in spec order* — byte-identical to the
serial loop, because

* workloads are regenerated inside each worker from the per-benchmark
  seeds in :data:`repro.workloads.spec95.SPEC95_PROFILES` (deterministic
  regardless of which process runs the point, or in what order), and
* each point builds its own ``SVCSystem``/``ARBSystem``, ``StatsRegistry``
  and report; merging is just list assembly in submission order.

``workers`` resolution: an explicit argument wins; otherwise the
``REPRO_WORKERS`` environment variable; otherwise serial. ``0`` means
"one worker per CPU". Serial execution never touches multiprocessing,
so single-point callers and restricted environments pay nothing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Union

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class PointSpec:
    """One (benchmark, machine) experiment point, picklable for workers.

    ``kind`` selects the machine ("svc" or "arb"); ``config`` is the
    matching frozen config dataclass; ``scale`` is the workload scale
    override (``None`` = the ``REPRO_SCALE`` environment default).
    """

    benchmark: str
    machine: str
    kind: str
    config: object
    scale: Optional[float] = None
    #: Tri-state telemetry wiring: ``None`` = not wired at all (the
    #: baseline fast path), ``False`` = wired but disabled (measures the
    #: disabled-mode overhead), ``True`` = record spans and metrics.
    telemetry: Optional[bool] = None


def execute_point(spec: PointSpec):
    """Run one point and return its ``BenchmarkResult``.

    Top-level so it pickles; imports deferred so this module stays
    importable from :mod:`repro.harness.experiments` without a cycle.
    """
    from repro.harness.experiments import _run_arb, _run_svc

    if spec.kind == "svc":
        return _run_svc(
            spec.benchmark, spec.machine, spec.config, spec.scale, spec.telemetry
        )
    if spec.kind == "arb":
        return _run_arb(
            spec.benchmark, spec.machine, spec.config, spec.scale, spec.telemetry
        )
    raise ValueError(f"unknown machine kind {spec.kind!r}")


def resolve_workers(workers: Optional[Union[int, str]] = None) -> int:
    """Effective worker count: argument, else ``REPRO_WORKERS``, else 1."""
    if workers is None:
        workers = os.environ.get(WORKERS_ENV, "")
        if not workers:
            return 1
    count = int(workers)
    if count < 0:
        raise ValueError(f"worker count must be >= 0, got {count}")
    if count == 0:
        count = os.cpu_count() or 1
    return count


def parallel_map(
    func, items: List, workers: Optional[Union[int, str]] = None
) -> List:
    """``[func(item) for item in items]``, optionally across processes.

    The generic engine under :func:`run_points` and the model checker's
    per-program fan-out. ``func`` must be a top-level function and every
    item picklable; results come back in item order either way, so
    callers see exactly what the serial loop produced.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [func(item) for item in items]

    import concurrent.futures
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        # No fork on this platform; spawn would re-import the world per
        # worker, but the work is deterministic either way.
        context = multiprocessing.get_context("spawn")
    max_workers = min(count, len(items))
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context
    ) as pool:
        return list(pool.map(func, items))


def run_points(
    specs: List[PointSpec], workers: Optional[Union[int, str]] = None
) -> List:
    """Execute every experiment point, serially or across processes."""
    return parallel_map(execute_point, specs, workers)
