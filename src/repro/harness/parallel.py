"""Process-parallel fan-out of experiment points.

Every experiment in :mod:`repro.harness.experiments` is a list of
independent (benchmark, machine) points: each point regenerates its own
seeded workload and runs a fresh machine, so points share no mutable
state and parallelize embarrassingly. This module fans a list of
:class:`PointSpec` descriptors over a ``ProcessPoolExecutor`` and
returns the per-point results *in spec order* — byte-identical to the
serial loop, because

* workloads are regenerated inside each worker from the per-benchmark
  seeds in :data:`repro.workloads.spec95.SPEC95_PROFILES` (deterministic
  regardless of which process runs the point, or in what order), and
* each point builds its own ``SVCSystem``/``ARBSystem``, ``StatsRegistry``
  and report; merging is just list assembly in submission order.

``workers`` resolution: an explicit argument wins; otherwise the
``REPRO_WORKERS`` environment variable; otherwise serial. ``0`` means
"one worker per CPU". Serial execution never touches multiprocessing,
so single-point callers and restricted environments pay nothing.

Two engines share these specs: :func:`parallel_map` is the bare fan-out
(kept for the model checker and as the bench baseline), while
:func:`run_points` routes campaigns through the supervised engine in
:mod:`repro.harness.supervisor` — per-point timeouts, seeded-backoff
retries, quarantine, broken-pool recovery and content-addressed resume.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.common.errors import ConfigError

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class PointSpec:
    """One (benchmark, machine) experiment point, picklable for workers.

    ``kind`` selects the machine ("svc" or "arb"); ``config`` is the
    matching frozen config dataclass; ``scale`` is the workload scale
    override (``None`` = the ``REPRO_SCALE`` environment default).
    """

    benchmark: str
    machine: str
    kind: str
    config: object
    scale: Optional[float] = None
    #: Tri-state telemetry wiring: ``None`` = not wired at all (the
    #: baseline fast path), ``False`` = wired but disabled (measures the
    #: disabled-mode overhead), ``True`` = record spans and metrics.
    telemetry: Optional[bool] = None


def execute_point(spec: PointSpec):
    """Run one point and return its ``BenchmarkResult``.

    Top-level so it pickles; imports deferred so this module stays
    importable from :mod:`repro.harness.experiments` without a cycle.
    """
    from repro.harness.experiments import _run_arb, _run_svc

    if spec.kind == "svc":
        return _run_svc(
            spec.benchmark, spec.machine, spec.config, spec.scale, spec.telemetry
        )
    if spec.kind == "arb":
        return _run_arb(
            spec.benchmark, spec.machine, spec.config, spec.scale, spec.telemetry
        )
    raise ValueError(f"unknown machine kind {spec.kind!r}")


def resolve_workers(workers: Optional[Union[int, str]] = None) -> int:
    """Effective worker count: argument, else ``REPRO_WORKERS``, else 1.

    Raises :class:`ConfigError` naming the offending value for negative
    or non-integer input — a bad env knob must fail as a usage error,
    not flow into ``ProcessPoolExecutor`` as a crash.
    """
    if workers is None:
        workers = os.environ.get(WORKERS_ENV, "")
        if not workers:
            return 1
    try:
        count = int(str(workers))
    except (TypeError, ValueError):
        raise ConfigError(
            f"{WORKERS_ENV} must be a non-negative integer "
            f"(0 = one per CPU), got {workers!r}"
        ) from None
    if count < 0:
        raise ConfigError(
            f"{WORKERS_ENV} must be a non-negative integer "
            f"(0 = one per CPU), got {workers!r}"
        )
    if count == 0:
        count = os.cpu_count() or 1
    return count


def parallel_map(
    func, items: List, workers: Optional[Union[int, str]] = None
) -> List:
    """``[func(item) for item in items]``, optionally across processes.

    The generic engine under :func:`run_points` and the model checker's
    per-program fan-out. ``func`` must be a top-level function and every
    item picklable; results come back in item order either way, so
    callers see exactly what the serial loop produced.
    """
    items = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(items) <= 1:
        return [func(item) for item in items]

    import concurrent.futures
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        # No fork on this platform; spawn would re-import the world per
        # worker, but the work is deterministic either way.
        context = multiprocessing.get_context("spawn")
    max_workers = min(count, len(items))
    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context
    )
    try:
        results = list(pool.map(func, items))
    except KeyboardInterrupt:
        # An aborted campaign must not leave orphaned workers: cancel
        # everything queued, SIGKILL the running workers, and reap them
        # before re-raising to the interactive caller.
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.kill()
            except (OSError, AttributeError, ValueError):
                pass
        for process in processes:
            try:
                process.join(timeout=1.0)
            except (OSError, AssertionError, ValueError):
                pass
        raise
    else:
        pool.shutdown(wait=True)
        return results


def run_points(
    specs: List[PointSpec],
    workers: Optional[Union[int, str]] = None,
    resume: bool = False,
    supervisor=None,
    campaigns: Optional[List] = None,
) -> List:
    """Execute every experiment point under the supervised engine.

    The successor of the old ``parallel_map(execute_point, ...)`` path:
    points now get wall-clock timeouts, bounded seeded-backoff retries,
    quarantine, broken-pool recovery and (with ``resume=True``) warm
    results from the content-addressed store — see
    :mod:`repro.harness.supervisor`. Returns the successful results in
    spec order; quarantined points are *omitted* so a campaign degrades
    to a partial report rather than crashing. Pass a list as
    ``campaigns`` to receive the full :class:`CampaignReport` (the CLI
    uses it to map quarantine onto exit code 1).
    """
    from repro.harness.supervisor import run_campaign

    report = run_campaign(
        specs, supervisor, workers=workers, resume=resume or None
    )
    if campaigns is not None:
        campaigns.append(report)
    return [out.result for out in report.outcomes if out.result is not None]
