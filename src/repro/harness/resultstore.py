"""Content-addressed experiment result store (``repro.harness.resultstore``).

Every experiment point is a pure function of its spec: the workload is
regenerated from per-benchmark seeds, the machine is built fresh from a
frozen config, and execution is deterministic. That purity makes results
*content-addressable*: the store keys each :class:`BenchmarkResult` by a
digest of everything the result depends on —

* the point spec (benchmark, machine label, machine kind, the full
  frozen config ``repr``, the resolved workload scale, telemetry mode),
* and a fingerprint of the ``repro`` package source itself, so editing
  any simulator code silently invalidates every cached result (a stale
  cache would be worse than no cache).

An interrupted or re-run campaign therefore recomputes only the points
whose keys are missing — ``--resume`` on the CLI and ``resume=True`` on
every experiment runner. The store is a plain directory of pickle files
(``<root>/<key[:2]>/<key>.pkl``), written atomically via rename so a
killed writer never leaves a truncated entry, and safe to share between
concurrent campaigns (last-writer-wins on identical content).

Quarantine records live in a **separate namespace**
(``<root>/quarantine/<key[:2]>/<key>.json``): they describe *failures*
(attempt history plus the flight-recorder post-mortem from
:mod:`repro.telemetry.flight`) and must never be served as results by
``get`` — a resumed campaign retries a previously-quarantined point
from scratch. They are JSON, not pickle, because their audience is a
human running ``jq`` over a store after a bad night, not the engine.

The root resolves from the explicit argument, else the
``REPRO_RESULT_STORE`` environment variable, else ``.repro-results`` in
the working directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Dict, Optional

#: Environment variable overriding the default store location.
STORE_ENV = "REPRO_RESULT_STORE"

#: Default store directory (relative to the working directory).
DEFAULT_ROOT = ".repro-results"

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (path + contents).

    Computed once per process: the package cannot change under a running
    interpreter, and hashing ~70 files costs milliseconds.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def point_key(spec) -> str:
    """Content address of one :class:`~repro.harness.parallel.PointSpec`.

    The resolved scale is baked in (an explicit ``scale=None`` means
    "whatever ``REPRO_SCALE`` says right now", and two campaigns under
    different env scales must never share results). Frozen-dataclass
    ``repr`` covers every config field, including nested geometry.
    """
    from repro.workloads.spec95 import scale_factor
    from repro.workloads.traceprog import is_trace_workload, trace_digest, trace_path

    scale = spec.scale if spec.scale is not None else scale_factor()
    # SPEC95 points regenerate from seeds baked into the code (covered by
    # the code fingerprint); a trace point's workload lives in a file the
    # fingerprint cannot see, so its content digest joins the key.
    workload = (
        trace_digest(trace_path(spec.benchmark))
        if is_trace_workload(spec.benchmark)
        else ""
    )
    payload = "\x00".join(
        (
            spec.benchmark,
            spec.machine,
            spec.kind,
            repr(spec.config),
            repr(float(scale)),
            repr(spec.telemetry),
            workload,
            code_fingerprint(),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def resolve_store_root(root: Optional[str] = None) -> str:
    """Effective store root: argument, else ``REPRO_RESULT_STORE``,
    else ``.repro-results``."""
    if root:
        return root
    return os.environ.get(STORE_ENV) or DEFAULT_ROOT


class ResultStore:
    """Directory-backed content-addressed store of point results.

    ``hits``/``misses``/``stores`` count this instance's traffic — the
    supervisor surfaces them as the campaign's ``cache_hits`` and
    ``recomputed`` counters, which is how the resume acceptance test
    proves only missing points were recomputed.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = resolve_store_root(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def get(self, key: str):
        """The stored result for ``key``, or ``None`` (a miss).

        A corrupt or unreadable entry counts as a miss and is left for
        the subsequent ``put`` to overwrite — the store is a cache, never
        a source of truth.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key`` atomically (write temp, rename)."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle)
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        self.stores += 1

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    # -- quarantine namespace (post-mortems, never served as results) --------

    def _quarantine_path(self, key: str) -> str:
        return os.path.join(self.root, "quarantine", key[:2], f"{key}.json")

    def put_quarantine(self, key: str, record: Dict) -> str:
        """Persist one quarantine post-mortem (JSON, atomic rename);
        returns the path written."""
        import json

        path = self._quarantine_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True, indent=1)
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        return path

    def get_quarantine(self, key: str) -> Optional[Dict]:
        """The quarantine record for ``key``, or ``None``."""
        import json

        try:
            with open(self._quarantine_path(key)) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def discard(self, key: str) -> bool:
        """Drop one entry (used by tests to simulate a lost point)."""
        try:
            os.unlink(self._path(key))
            return True
        except OSError:
            return False

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


__all__ = [
    "DEFAULT_ROOT",
    "STORE_ENV",
    "ResultStore",
    "code_fingerprint",
    "point_key",
    "resolve_store_root",
]
