"""Runners for every evaluation artifact (paper section 4).

The paper's published numbers are embedded alongside each experiment so
reports always show paper-vs-measured; EXPERIMENTS.md records a full
run. Machine configurations are exactly section 4.2's: 4 PUs, SVC =
4-way 8KB/16KB per PU in 16-byte lines on a 3-cycle snooping bus with a
1-cycle hit; ARB = 256 rows x 5 stages over a 32KB/64KB direct-mapped
data cache, hit time swept 1-4 cycles, contention-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.arb.system import ARBSystem
from repro.common.config import ARBConfig, SVCConfig, UpdatePolicy
from repro.harness.parallel import PointSpec, run_points
from repro.svc.designs import design_config, final_design
from repro.svc.system import SVCSystem
from repro.telemetry import (
    PRODUCTION_SAMPLE_INTERVAL,
    PRODUCTION_TRACE_CAPACITY,
    Telemetry,
)
from repro.timing.simulator import TimingReport, TimingSimulator
from repro.workloads.spec95 import BENCHMARKS
from repro.workloads.traceprog import resolve_tasks

#: Paper-reported values, transcribed from the paper.
PAPER_TABLE2 = {
    "compress": {"arb_32k": 0.031, "svc_4x8k": 0.075},
    "gcc": {"arb_32k": 0.021, "svc_4x8k": 0.036},
    "vortex": {"arb_32k": 0.019, "svc_4x8k": 0.025},
    "perl": {"arb_32k": 0.026, "svc_4x8k": 0.024},
    "ijpeg": {"arb_32k": 0.015, "svc_4x8k": 0.027},
    "mgrid": {"arb_32k": 0.081, "svc_4x8k": 0.093},
    "apsi": {"arb_32k": 0.023, "svc_4x8k": 0.034},
}

PAPER_TABLE3 = {
    "compress": {"svc_4x8k": 0.348, "svc_4x16k": 0.341},
    "gcc": {"svc_4x8k": 0.219, "svc_4x16k": 0.203},
    "vortex": {"svc_4x8k": 0.360, "svc_4x16k": 0.354},
    "perl": {"svc_4x8k": 0.313, "svc_4x16k": 0.291},
    "ijpeg": {"svc_4x8k": 0.241, "svc_4x16k": 0.226},
    "mgrid": {"svc_4x8k": 0.747, "svc_4x16k": 0.632},
    "apsi": {"svc_4x8k": 0.276, "svc_4x16k": 0.255},
}

#: Figure 19/20 series labels, in the paper's legend order.
FIGURE_CONFIGS = ("svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c")


@dataclass
class BenchmarkResult:
    """Measured metrics for one (benchmark, machine) point."""

    benchmark: str
    machine: str
    ipc: float
    miss_ratio: float
    bus_utilization: float
    cycles: int
    instructions: int
    violation_squashes: int
    misprediction_squashes: int
    #: Telemetry payload (:meth:`repro.telemetry.Telemetry.snapshot`)
    #: when the point ran with telemetry enabled; picklable, so it
    #: crosses the worker-process boundary and the exporters can merge
    #: per-point payloads into one trace.
    telemetry: Optional[Dict] = None


@dataclass
class ExperimentResult:
    """All points of one experiment, plus paper targets for comparison.

    ``campaigns`` holds the supervised-execution reports
    (:class:`repro.harness.supervisor.CampaignReport`) behind ``points``:
    quarantined points are absent from ``points`` but accounted for
    there, which is how the CLI distinguishes a complete run (exit 0)
    from a partial one (exit 1).
    """

    experiment: str
    points: List[BenchmarkResult] = field(default_factory=list)
    paper: Dict[str, Dict[str, float]] = field(default_factory=dict)
    campaigns: List = field(default_factory=list)

    def point(self, benchmark: str, machine: str) -> Optional[BenchmarkResult]:
        for result in self.points:
            if result.benchmark == benchmark and result.machine == machine:
                return result
        return None

    @property
    def quarantined_count(self) -> int:
        return sum(
            report.counters.get("quarantined", 0) for report in self.campaigns
        )


def _collect(
    result: ExperimentResult,
    specs: List[PointSpec],
    workers: Optional[int],
    resume: bool = False,
) -> ExperimentResult:
    """Run ``specs`` under the supervisor and fold everything into
    ``result`` (successful points plus the campaign report)."""
    campaigns: List = []
    result.points.extend(
        run_points(specs, workers, resume=resume, campaigns=campaigns)
    )
    result.campaigns.extend(campaigns)
    return result


def _point_telemetry(
    benchmark: str, machine: str, telemetry: Optional[bool]
) -> Optional[Telemetry]:
    """Tri-state wiring (see :class:`PointSpec`): ``None`` stays fully
    unwired, ``False`` constructs a disabled facade (so the disabled-mode
    overhead is measurable), ``True`` records.

    Campaign points record under the production bounded/sampled
    configuration — a span ring plus 1-in-N memory-op subtrees — which
    is what keeps enabled-mode overhead inside the bench gate's budget.
    Code that needs every span (unit tests, the exporter round-trips)
    builds its own full-recording ``Telemetry()``.
    """
    if telemetry is None:
        return None
    return Telemetry(
        label=f"{benchmark}/{machine}",
        enabled=telemetry,
        capacity=PRODUCTION_TRACE_CAPACITY,
        sample_interval=PRODUCTION_SAMPLE_INTERVAL,
    )


def _run_svc(
    benchmark: str,
    machine: str,
    config: SVCConfig,
    scale: Optional[float],
    telemetry: Optional[bool] = None,
) -> BenchmarkResult:
    tasks = resolve_tasks(benchmark, scale)
    tel = _point_telemetry(benchmark, machine, telemetry)
    system = SVCSystem(config, telemetry=tel)
    report = TimingSimulator(system, tasks).run()
    return _to_result(benchmark, machine, report, tel)


def _run_arb(
    benchmark: str,
    machine: str,
    config: ARBConfig,
    scale: Optional[float],
    telemetry: Optional[bool] = None,
) -> BenchmarkResult:
    tasks = resolve_tasks(benchmark, scale)
    tel = _point_telemetry(benchmark, machine, telemetry)
    system = ARBSystem(config, telemetry=tel)
    report = TimingSimulator(system, tasks).run()
    return _to_result(benchmark, machine, report, tel)


def _to_result(
    benchmark: str,
    machine: str,
    report: TimingReport,
    tel: Optional[Telemetry] = None,
) -> BenchmarkResult:
    return BenchmarkResult(
        benchmark=benchmark,
        machine=machine,
        ipc=report.ipc,
        miss_ratio=report.miss_ratio(),
        bus_utilization=report.bus_utilization(),
        cycles=report.cycles,
        instructions=report.committed_instructions,
        violation_squashes=report.violation_squashes,
        misprediction_squashes=report.misprediction_squashes,
        telemetry=tel.snapshot() if tel is not None and tel.enabled else None,
    )


def run_table2(
    benchmarks=BENCHMARKS,
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Table 2: miss ratios, ARB/32KB vs SVC 4x8KB."""
    result = ExperimentResult(experiment="table2", paper=PAPER_TABLE2)
    specs = []
    for name in benchmarks:
        specs.append(
            PointSpec(
                name, "arb_32k", "arb", ARBConfig.paper_32kb(hit_cycles=1),
                scale, telemetry,
            )
        )
        specs.append(
            PointSpec(
                name, "svc_4x8k", "svc", final_design(SVCConfig.paper_32kb()),
                scale, telemetry,
            )
        )
    return _collect(result, specs, workers, resume)


def run_table3(
    benchmarks=BENCHMARKS,
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Table 3: SVC snooping-bus utilization at 4x8KB and 4x16KB."""
    result = ExperimentResult(experiment="table3", paper=PAPER_TABLE3)
    specs = []
    for name in benchmarks:
        specs.append(
            PointSpec(
                name, "svc_4x8k", "svc", final_design(SVCConfig.paper_32kb()),
                scale, telemetry,
            )
        )
        specs.append(
            PointSpec(
                name, "svc_4x16k", "svc", final_design(SVCConfig.paper_64kb()),
                scale, telemetry,
            )
        )
    return _collect(result, specs, workers, resume)


def figure_specs(
    svc_config: SVCConfig,
    arb_factory: Callable[[int], ARBConfig],
    benchmarks,
    scale: Optional[float] = None,
    telemetry: Optional[bool] = None,
) -> List[PointSpec]:
    """The point list of one figure sweep (shared with tools/bench_perf)."""
    specs = []
    for name in benchmarks:
        specs.append(
            PointSpec(
                name, "svc_1c", "svc", final_design(svc_config), scale, telemetry
            )
        )
        for hit in (1, 2, 3, 4):
            specs.append(
                PointSpec(
                    name, f"arb_{hit}c", "arb", arb_factory(hit), scale, telemetry
                )
            )
    return specs


def figure19_specs(
    benchmarks=BENCHMARKS,
    scale: Optional[float] = None,
    telemetry: Optional[bool] = None,
) -> List[PointSpec]:
    """Figure 19's points as bare specs (for benches and chaos smokes)."""
    return figure_specs(
        SVCConfig.paper_32kb(),
        lambda hit: ARBConfig.paper_32kb(hit_cycles=hit),
        benchmarks,
        scale,
        telemetry,
    )


def _run_figure(
    experiment: str,
    svc_config: SVCConfig,
    arb_factory: Callable[[int], ARBConfig],
    benchmarks,
    scale: Optional[float],
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    result = ExperimentResult(experiment=experiment)
    specs = figure_specs(svc_config, arb_factory, benchmarks, scale, telemetry)
    return _collect(result, specs, workers, resume)


def run_figure19(
    benchmarks=BENCHMARKS,
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Figure 19: IPC, ARB (1-4 cycle hit) vs SVC (1 cycle), 32KB total."""
    return _run_figure(
        "fig19",
        SVCConfig.paper_32kb(),
        lambda hit: ARBConfig.paper_32kb(hit_cycles=hit),
        benchmarks,
        scale,
        workers,
        telemetry,
        resume,
    )


def run_figure20(
    benchmarks=BENCHMARKS,
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Figure 20: IPC, ARB (1-4 cycle hit) vs SVC (1 cycle), 64KB total."""
    return _run_figure(
        "fig20",
        SVCConfig.paper_64kb(),
        lambda hit: ARBConfig.paper_64kb(hit_cycles=hit),
        benchmarks,
        scale,
        workers,
        telemetry,
        resume,
    )


def run_ablation_designs(
    benchmarks=("compress", "gcc", "mgrid"),
    designs=("base", "ec", "ecs", "hr", "final"),
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Design progression ablation: what each section-3 step buys.

    The base/EC/ECS designs use the paper's one-word-line geometry, so
    this ablation also shows the RL design's line-size effect.
    """
    result = ExperimentResult(experiment="ablation_designs")
    specs = [
        PointSpec(
            name, f"svc_{design}", "svc",
            design_config(design, SVCConfig.paper_32kb()), scale, telemetry,
        )
        for name in benchmarks
        for design in designs
    ]
    return _collect(result, specs, workers, resume)


def run_ablation_update_policy(
    benchmarks=("compress", "gcc", "mgrid"),
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Invalidate vs update vs hybrid coherence (section 3.8)."""
    result = ExperimentResult(experiment="ablation_update")
    specs = [
        PointSpec(
            name, f"svc_{policy}", "svc",
            final_design(SVCConfig.paper_32kb(), update_policy=policy),
            scale, telemetry,
        )
        for name in benchmarks
        for policy in UpdatePolicy.ALL
    ]
    return _collect(result, specs, workers, resume)


def run_ablation_linesize(
    benchmarks=("compress", "ijpeg"),
    block_sizes=(4, 8, 16),
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """RL design: versioning-block size vs false-sharing squashes."""
    from dataclasses import replace

    from repro.common.config import CacheGeometry

    result = ExperimentResult(experiment="ablation_linesize")
    specs = []
    for name in benchmarks:
        for vbs in block_sizes:
            geometry = CacheGeometry(
                size_bytes=8 * 1024,
                associativity=4,
                line_size=16,
                versioning_block_size=vbs,
            )
            config = replace(final_design(SVCConfig.paper_32kb()), geometry=geometry)
            specs.append(
                PointSpec(name, f"svc_vb{vbs}", "svc", config, scale, telemetry)
            )
    return _collect(result, specs, workers, resume)


def run_ablation_scaling(
    benchmarks=("compress", "mgrid"),
    pu_counts=(2, 4, 8),
    scale: Optional[float] = None,
    workers: Optional[int] = None,
    telemetry: Optional[bool] = None,
    resume: bool = False,
) -> ExperimentResult:
    """Extension experiment: PU-count scaling of both organizations.

    The paper argues the SVC organization scales like an SMP (private
    caches, one snooping bus) where the ARB's shared buffer needs
    ever-more ports/stages. This sweep holds per-PU SVC storage at 8KB
    and gives the ARB one stage per PU over the same total storage.
    """
    from dataclasses import replace

    result = ExperimentResult(experiment="ablation_scaling")
    specs = []
    for name in benchmarks:
        for n_pus in pu_counts:
            svc_config = replace(
                final_design(SVCConfig.paper_32kb()), n_caches=n_pus
            )
            specs.append(
                PointSpec(name, f"svc_{n_pus}pu", "svc", svc_config, scale, telemetry)
            )
            arb_config = replace(
                ARBConfig.paper_32kb(hit_cycles=2), n_stages=n_pus + 1
            )
            specs.append(
                PointSpec(
                    name, f"arb2c_{n_pus}pu", "arb", arb_config, scale, telemetry
                )
            )
    return _collect(result, specs, workers, resume)


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": run_table2,
    "table3": run_table3,
    "fig19": run_figure19,
    "fig20": run_figure20,
    "ablation_designs": run_ablation_designs,
    "ablation_update": run_ablation_update_policy,
    "ablation_linesize": run_ablation_linesize,
    "ablation_scaling": run_ablation_scaling,
}
