"""Harness-level chaos injection (``repro.harness.chaos``).

:mod:`repro.faults` attacks the *protocol* — squash storms, adversarial
victims, saturated MSHRs — while the experiment harness itself is assumed
perfect. This module mirrors that design one layer down: a
:class:`ChaosPlan` is a declarative, seeded description of infrastructure
failures to force on a campaign, and the supervised engine
(:mod:`repro.harness.supervisor`) must heal around every one of them:

* ``kill`` — the worker process executing the point receives SIGKILL
  mid-execution (an OOM kill, a crashed interpreter). In serial mode,
  where killing the process would kill the caller, the kill degrades to
  a raised :class:`WorkerKilled` so the retry path is still exercised.
* ``raise`` — :func:`repro.harness.parallel.execute_point` raises a
  :class:`ChaosError` (a buggy point, a transient import failure).
* ``stall`` — the point sleeps past the supervisor's wall-clock timeout
  before executing (a hung simulation, a livelocked worker).

Actions are keyed by ``(point_index, attempt)``: a plan that attacks
attempt 0 of a point and leaves attempt 1 alone proves that the retry
produced exactly the result the fault destroyed — which is the chaos
suite's core assertion (supervised results are byte-identical to a
fault-free serial run, because every point is deterministic given its
spec).

Plans are plain data — JSON-round-trippable via ``to_dict``/``from_dict``
so they cross the pickle boundary into workers — and seeded through
:func:`repro.common.rng.make_rng` so :func:`random_chaos_plan` draws the
same attacks for the same seed, forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import make_rng

#: Recognized attack kinds, in the order ``describe`` reports them.
KINDS = ("kill", "raise", "stall")


class ChaosError(SimulationError):
    """An exception injected into ``execute_point`` by a chaos plan."""


class WorkerKilled(SimulationError):
    """Serial-mode stand-in for a SIGKILLed worker process."""


@dataclass(frozen=True)
class ChaosPlan:
    """One reproducible set of infrastructure attacks on a campaign.

    ``kills``/``raises`` are ``(point_index, attempt)`` pairs;
    ``stalls`` maps the same pairs to a stall duration in seconds
    (choose one comfortably above the supervisor's point timeout).
    """

    seed: int = 0
    kills: Tuple[Tuple[int, int], ...] = ()
    raises: Tuple[Tuple[int, int], ...] = ()
    stalls: Tuple[Tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        for index, attempt in tuple(self.kills) + tuple(self.raises):
            if index < 0 or attempt < 0:
                raise ConfigError(
                    f"chaos targets must be non-negative, got ({index}, {attempt})"
                )
        for index, attempt, seconds in self.stalls:
            if index < 0 or attempt < 0 or seconds <= 0:
                raise ConfigError(
                    f"invalid stall ({index}, {attempt}, {seconds})"
                )

    @property
    def is_noop(self) -> bool:
        return not (self.kills or self.raises or self.stalls)

    def action(self, index: int, attempt: int):
        """The attack for this (point, attempt), or ``None``.

        Returns ``("kill", None)``, ``("raise", None)`` or
        ``("stall", seconds)``.
        """
        if (index, attempt) in self.kills:
            return ("kill", None)
        if (index, attempt) in self.raises:
            return ("raise", None)
        for sindex, sattempt, seconds in self.stalls:
            if (sindex, sattempt) == (index, attempt):
                return ("stall", seconds)
        return None

    def apply(self, index: int, attempt: int, allow_kill: bool = True) -> None:
        """Execute the attack for this (point, attempt) in-process.

        Called from the worker wrapper just before the real point runs.
        ``allow_kill`` is cleared in serial mode, where SIGKILLing the
        process would take the supervisor down with it.
        """
        found = self.action(index, attempt)
        if found is None:
            return
        kind, arg = found
        if kind == "stall":
            import time

            time.sleep(arg)
            return
        if kind == "raise":
            raise ChaosError(
                f"chaos: injected failure at point {index} attempt {attempt}"
            )
        # kind == "kill"
        if allow_kill:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerKilled(
            f"chaos: simulated worker kill at point {index} attempt {attempt}"
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "kills": [list(pair) for pair in self.kills],
            "raises": [list(pair) for pair in self.raises],
            "stalls": [list(entry) for entry in self.stalls],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ChaosPlan":
        return cls(
            seed=data.get("seed", 0),
            kills=tuple((int(i), int(a)) for i, a in data.get("kills", [])),
            raises=tuple((int(i), int(a)) for i, a in data.get("raises", [])),
            stalls=tuple(
                (int(i), int(a), float(s)) for i, a, s in data.get("stalls", [])
            ),
        )

    def describe(self) -> str:
        parts = []
        if self.kills:
            parts.append(f"kills={sorted(self.kills)}")
        if self.raises:
            parts.append(f"raises={sorted(self.raises)}")
        if self.stalls:
            parts.append(f"stalls={sorted(self.stalls)}")
        return f"ChaosPlan(seed={self.seed}: " + (", ".join(parts) or "no-op") + ")"


def random_chaos_plan(
    seed: int,
    n_points: int,
    attacks: int = 3,
    stall_seconds: Optional[float] = None,
) -> ChaosPlan:
    """A randomized but reproducible plan attacking attempt 0 only.

    Attempt-0-only keeps the plan *survivable* with a retry budget of
    one: every attacked point's first retry runs clean, so a healthy
    supervisor always completes the campaign. ``stall_seconds`` enables
    stall attacks (pick a value above the point timeout); without it the
    plan draws only kills and raises.
    """
    if n_points <= 0:
        return ChaosPlan(seed=seed)
    rng = make_rng(seed, "chaos:plan")
    kinds = ["kill", "raise"] + (["stall"] if stall_seconds else [])
    kills, raises, stalls = set(), set(), set()
    for _ in range(min(attacks, n_points)):
        index = rng.randrange(n_points)
        kind = rng.choice(kinds)
        if kind == "kill":
            kills.add((index, 0))
        elif kind == "raise":
            raises.add((index, 0))
        else:
            stalls.add((index, 0, float(stall_seconds)))
    # A point can only die one way per attempt: kills shadow raises/stalls.
    raises = {pair for pair in raises if pair not in kills}
    stalls = {s for s in stalls if (s[0], s[1]) not in kills and (s[0], s[1]) not in raises}
    return ChaosPlan(
        seed=seed,
        kills=tuple(sorted(kills)),
        raises=tuple(sorted(raises)),
        stalls=tuple(sorted(stalls)),
    )


__all__ = [
    "ChaosError",
    "ChaosPlan",
    "WorkerKilled",
    "random_chaos_plan",
]
