"""Render experiment results the way the paper prints them.

Tables get paper-vs-measured columns; figures get one series per
machine configuration with the same legend order as the paper's charts.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.harness.experiments import ExperimentResult


def format_table(
    result: ExperimentResult,
    machines: Sequence[str],
    metric: Callable,
    metric_name: str,
) -> str:
    """A paper-style table: one row per benchmark, one measured (and,
    when available, paper) column per machine."""
    benchmarks = []
    for point in result.points:
        if point.benchmark not in benchmarks:
            benchmarks.append(point.benchmark)

    headers = ["benchmark"]
    for machine in machines:
        headers.append(f"{machine} {metric_name}")
        if result.paper:
            headers.append(f"{machine} (paper)")
    rows: List[List[str]] = []
    for name in benchmarks:
        row = [name]
        for machine in machines:
            point = result.point(name, machine)
            row.append("-" if point is None else f"{metric(point):.3f}")
            if result.paper:
                paper_value = result.paper.get(name, {}).get(machine)
                row.append("-" if paper_value is None else f"{paper_value:.3f}")
        rows.append(row)
    return _render(headers, rows)


def format_series(
    result: ExperimentResult,
    machines: Sequence[str],
    metric: Callable,
    metric_name: str,
    highlight: Optional[str] = None,
) -> str:
    """A figure as text: per-benchmark series across configurations,
    optionally marking where ``highlight`` overtakes each other series
    (the paper's crossover claims)."""
    benchmarks = []
    for point in result.points:
        if point.benchmark not in benchmarks:
            benchmarks.append(point.benchmark)

    headers = ["benchmark"] + [f"{m} {metric_name}" for m in machines]
    rows = []
    for name in benchmarks:
        row = [name]
        for machine in machines:
            point = result.point(name, machine)
            row.append("-" if point is None else f"{metric(point):.2f}")
        if highlight is not None:
            target = result.point(name, highlight)
            beats = [
                machine
                for machine in machines
                if machine != highlight
                and target is not None
                and result.point(name, machine) is not None
                and metric(target) >= metric(result.point(name, machine))
            ]
            row.append(",".join(beats) if beats else "-")
        rows.append(row)
    if highlight is not None:
        headers.append(f"{highlight} beats")
    return _render(headers, rows)


def _render(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
