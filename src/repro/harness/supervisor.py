"""Supervised campaign execution (``repro.harness.supervisor``).

The SVC protocol survives misspeculation by squashing, repairing the
VOL and re-executing; this module gives the *experiment harness* the
same discipline. Where :func:`repro.harness.parallel.parallel_map` is a
thin ``ProcessPoolExecutor`` wrapper that loses the whole campaign to
one hung point, OOM-killed worker or Ctrl-C, the supervisor treats every
point as a speculative task:

* **timeout** — each point gets a wall-clock budget
  (``REPRO_POINT_TIMEOUT``); exceeding it kills the worker pool
  (SIGKILL), requeues the innocent in-flight points uncharged, and
  charges the culprit one attempt;
* **retry with deterministic backoff** — failed attempts are retried up
  to ``REPRO_RETRIES`` times, spaced by a :class:`BackoffPolicy`
  schedule that is seeded, monotone non-decreasing and capped;
* **quarantine** — a point that exhausts its budget is quarantined and
  the campaign degrades to a partial-result report instead of crashing;
* **pool recovery** — a ``BrokenProcessPool`` (worker SIGKILLed,
  interpreter crash) rebuilds the pool and resubmits the in-flight
  points;
* **resume** — with a :class:`~repro.harness.resultstore.ResultStore`,
  completed points are served from the content-addressed cache and only
  missing/changed points recompute;
* **observability** — the engine narrates the campaign as a
  schema-versioned NDJSON event stream
  (:class:`repro.telemetry.stream.CampaignStream`, CLI ``--stream`` /
  ``--progress``), and each attempt writes flight-recorder breadcrumbs
  (:mod:`repro.telemetry.flight`) so a quarantined point ships its own
  post-mortem, attached to the :class:`PointOutcome` and to the result
  store's quarantine namespace.

Because every point is a pure function of its spec, a retried point
reproduces exactly the bytes the fault destroyed — the chaos suite
(:mod:`tests.harness.test_chaos`) asserts campaign results under seeded
kills/exceptions/stalls are identical to a fault-free serial run.

Serial mode (one worker) keeps the retry/quarantine/resume semantics
in-process; wall-clock timeouts and real SIGKILL chaos require worker
processes (a serial chaos ``kill`` degrades to a raised
:class:`~repro.harness.chaos.WorkerKilled`).

Invariants
----------

1. **Determinism under faults.** A campaign's results are a pure
   function of (specs, seed): retries, pool rebuilds and cache hits
   never change a single result byte vs. a fault-free serial run.
2. **Conservation of points.** Every spec ends in exactly one terminal
   outcome (``ok`` / ``cached`` / ``quarantined``), and the report's
   counters account for every attempt — nothing is silently dropped.
3. **Bounded work.** Attempts per point never exceed 1 + retries, and
   backoff is monotone non-decreasing and capped, so a campaign always
   terminates.
4. **Near-zero overhead.** The no-fault supervised path must stay
   within 3% of the bare fan-out (gated by ``tools/bench_perf.py``).

docs/RESILIENCE.md documents the user-facing semantics: CLI flags and
environment knobs, exit codes, the result-store keying rule, and the
chaos plan format.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import make_rng
from repro.harness.chaos import ChaosPlan, random_chaos_plan
from repro.harness.parallel import execute_point, resolve_workers
from repro.harness.resultstore import ResultStore, point_key
from repro.telemetry import CAMPAIGN, POINT_ATTEMPT, SUPERVISOR_EVENT

#: Per-point wall-clock budget in seconds (unset = no timeout).
POINT_TIMEOUT_ENV = "REPRO_POINT_TIMEOUT"
#: Retry budget per point (default 1: one clean re-execution).
RETRIES_ENV = "REPRO_RETRIES"

#: Outcome states.
OK = "ok"
CACHED = "cached"
QUARANTINED = "quarantined"

#: Default retry budget when neither argument nor env supplies one.
DEFAULT_RETRIES = 1


def resolve_point_timeout(timeout=None) -> Optional[float]:
    """Effective per-point timeout: argument, else env, else none.

    Raises :class:`ConfigError` (exit code 2 territory) on garbage — a
    harness knob must never flow into the executor as a crash.
    """
    source = timeout
    if source is None:
        raw = os.environ.get(POINT_TIMEOUT_ENV, "")
        if not raw:
            return None
        source = raw
    try:
        value = float(source)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{POINT_TIMEOUT_ENV} must be a positive number of seconds, "
            f"got {source!r}"
        ) from None
    if value <= 0:
        raise ConfigError(
            f"{POINT_TIMEOUT_ENV} must be a positive number of seconds, "
            f"got {source!r}"
        )
    return value


def resolve_retries(retries=None) -> int:
    """Effective retry budget: argument, else env, else ``DEFAULT_RETRIES``."""
    source = retries
    if source is None:
        raw = os.environ.get(RETRIES_ENV, "")
        if not raw:
            return DEFAULT_RETRIES
        source = raw
    try:
        value = int(str(source))
    except (TypeError, ValueError):
        raise ConfigError(
            f"{RETRIES_ENV} must be a non-negative integer, got {source!r}"
        ) from None
    if value < 0:
        raise ConfigError(
            f"{RETRIES_ENV} must be a non-negative integer, got {source!r}"
        )
    return value


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic seeded retry spacing.

    The k-th retry of a point waits
    ``min(cap, base * factor**k * (1 + jitter * u))`` seconds, where
    ``u`` is one uniform draw per point key from the policy seed — so a
    schedule is reproducible given the seed, monotone non-decreasing
    (``factor >= 1`` and the cap only flattens it), and bounded by
    ``cap``. Jitter decorrelates points retrying after a shared pool
    crash without ever reordering a single point's own schedule.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigError(f"backoff base must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ConfigError(
                f"backoff factor must be >= 1 (monotone schedule), got {self.factor}"
            )
        if self.cap < 0:
            raise ConfigError(f"backoff cap must be >= 0, got {self.cap}")
        if self.jitter < 0:
            raise ConfigError(f"backoff jitter must be >= 0, got {self.jitter}")

    def delay(self, key: str, retry_index: int) -> float:
        """Seconds to wait before retry ``retry_index`` of point ``key``."""
        draw = make_rng(self.seed, f"backoff:{key}").random()
        raw = self.base * (self.factor ** retry_index) * (1.0 + self.jitter * draw)
        return min(self.cap, raw)

    def schedule(self, key: str, retries: int) -> List[float]:
        """The full delay schedule for ``retries`` retries of one point."""
        return [self.delay(key, index) for index in range(retries)]


@dataclass(frozen=True)
class SupervisorConfig:
    """Everything the engine needs to run one campaign.

    ``workers``/``point_timeout``/``retries`` of ``None`` defer to the
    ``REPRO_WORKERS``/``REPRO_POINT_TIMEOUT``/``REPRO_RETRIES``
    environment knobs (validated, never passed through raw). ``chaos``
    is an explicit plan; ``chaos_seed`` draws a survivable random plan
    sized to the campaign. ``telemetry`` hooks the retry/timeout/crash/
    quarantine counters and campaign/attempt spans into the PR-4 layer.

    Observability knobs: ``stream`` is a caller-owned
    :class:`repro.telemetry.stream.CampaignStream` (the report CLI uses
    this to watch its own campaign); ``stream_path``/``progress`` make
    the engine construct one itself (NDJSON file / live terminal line).
    ``flight`` controls per-attempt flight-recorder dumps: ``None``
    (default) auto-enables them whenever a post-mortem is plausible —
    chaos, timeouts, streaming, or an explicit ``flight_dir`` — so the
    plain no-fault fast path stays file-free; ``flight_dir=None`` uses
    a temp directory cleaned at campaign end (quarantine dumps are
    collected first).
    """

    workers: Optional[int] = None
    point_timeout: Optional[float] = None
    retries: Optional[int] = None
    backoff: BackoffPolicy = BackoffPolicy()
    chaos: Optional[ChaosPlan] = None
    chaos_seed: Optional[int] = None
    resume: bool = False
    store_root: Optional[str] = None
    telemetry: object = None
    stream: object = None
    stream_path: Optional[str] = None
    progress: bool = False
    flight: Optional[bool] = None
    flight_dir: Optional[str] = None


_DEFAULT_CONFIG = SupervisorConfig()


def set_default_supervisor(config: Optional[SupervisorConfig]) -> SupervisorConfig:
    """Install the process-wide default config; returns the previous one.

    The CLI sets this from its flags so experiment runners (whose
    signatures only thread ``workers`` and ``resume``) pick up timeout/
    retry/chaos/store settings without another eight keyword arguments.
    """
    global _DEFAULT_CONFIG
    previous = _DEFAULT_CONFIG
    _DEFAULT_CONFIG = config if config is not None else SupervisorConfig()
    return previous


def default_supervisor() -> SupervisorConfig:
    return _DEFAULT_CONFIG


@dataclass
class PointOutcome:
    """Terminal state of one point: a result, a cache hit, or quarantine.

    ``flight`` carries the flight-recorder post-mortem for quarantined
    points (a list of per-attempt dump dicts, see
    :mod:`repro.telemetry.flight`); ``None`` otherwise.
    """

    index: int
    spec: object
    status: str
    result: object = None
    attempts: int = 0
    failures: List[str] = field(default_factory=list)
    flight: Optional[List[Dict]] = None


@dataclass
class CampaignReport:
    """Partial-result report of one supervised campaign.

    ``counters`` is plain data (independent of telemetry wiring):
    ``points/ok/cache_hits/recomputed/quarantined/retries/timeouts/
    crashes/failures/pool_rebuilds``.
    """

    outcomes: List[PointOutcome] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def results(self) -> List:
        """Per-point results in spec order (``None`` for quarantined)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def quarantined(self) -> List[PointOutcome]:
        return [o for o in self.outcomes if o.status == QUARANTINED]

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def summary(self) -> str:
        c = self.counters
        delivered = c.get("ok", 0) + c.get("cache_hits", 0)
        parts = [
            f"{delivered}/{c.get('points', 0)} points ok",
            f"{c.get('cache_hits', 0)} cached",
            f"{c.get('recomputed', 0)} recomputed",
        ]
        for key in ("retries", "timeouts", "crashes", "quarantined"):
            if c.get(key):
                parts.append(f"{c[key]} {key}")
        return ", ".join(parts)


class _Work:
    """Mutable per-point bookkeeping while the campaign runs."""

    __slots__ = ("index", "spec", "key", "attempts", "failures", "not_before")

    def __init__(self, index: int, spec, key: Optional[str]) -> None:
        self.index = index
        self.spec = spec
        self.key = key
        self.attempts = 0  # attempts *started*
        self.failures: List[str] = []
        self.not_before = 0.0


def _run_attempt(index, attempt, spec, chaos, allow_kill, flight_root):
    """One point attempt with flight recording: returns ``(result, wall)``.

    Shared by the serial loop and the worker wrapper. The
    ``attempt_started`` breadcrumb is flushed *before* execution begins
    — it is the only record that survives a wall-clock SIGKILL, and its
    unmatched presence is the timeout post-mortem.
    """
    recorder = None
    if flight_root is not None:
        from repro.telemetry.flight import FlightRecorder

        recorder = FlightRecorder(flight_root, index, attempt)
        recorder.note(
            "attempt_started",
            benchmark=getattr(spec, "benchmark", "?"),
            machine=getattr(spec, "machine", "?"),
            spec_kind=getattr(spec, "kind", "?"),
        )
        recorder.flush()
    start = time.perf_counter()
    try:
        if chaos is not None:
            chaos.apply(index, attempt, allow_kill=allow_kill)
        result = execute_point(spec)
    except BaseException as exc:
        if recorder is not None:
            recorder.note("exception", error=repr(exc))
            recorder.flush()
        raise
    wall = time.perf_counter() - start
    if recorder is not None:
        recorder.note(
            "attempt_finished",
            wall_s=round(wall, 6),
            events=getattr(result, "instructions", None),
        )
        recorder.note_span_tail(getattr(result, "telemetry", None))
        recorder.flush()
    return result, wall


def _execute_supervised(payload):
    """Worker-side wrapper: apply the chaos plan, then run the point.

    Top-level so it pickles. Returns ``(index, result, wall_seconds)``
    so the supervisor can match completions to specs regardless of
    order and feed attempt walls into the campaign event stream.
    """
    index, attempt, spec, chaos_data, flight_root = payload
    chaos = ChaosPlan.from_dict(chaos_data) if chaos_data is not None else None
    result, wall = _run_attempt(
        index, attempt, spec, chaos, allow_kill=True, flight_root=flight_root
    )
    return index, result, wall


def _kill_pool(pool) -> None:
    """Tear a pool down hard: cancel queued work, SIGKILL the workers.

    Reaches into ``_processes`` (stable since 3.7) because the public
    API has no way to stop a worker mid-task — which is the entire
    scenario being handled.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except (OSError, AttributeError, ValueError):
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
        except (OSError, AssertionError, ValueError):
            pass


class _Engine:
    """One campaign's supervisor state machine."""

    def __init__(self, specs: List, config: SupervisorConfig) -> None:
        self.specs = list(specs)
        self.config = config
        self.workers = resolve_workers(config.workers)
        self.timeout = resolve_point_timeout(config.point_timeout)
        self.retries = resolve_retries(config.retries)
        self.backoff = config.backoff
        self.chaos = config.chaos
        if self.chaos is None and config.chaos_seed is not None:
            stall = 3.0 * self.timeout if self.timeout else None
            self.chaos = random_chaos_plan(
                config.chaos_seed, len(self.specs), stall_seconds=stall
            )
        if self.chaos is not None and self.chaos.is_noop:
            self.chaos = None
        self.store = ResultStore(config.store_root) if config.resume else None
        from repro.telemetry import wired

        self.telemetry = wired(config.telemetry)
        # Campaign event stream: use the caller's, or build one when the
        # CLI asked for a file and/or live progress.
        self.stream = config.stream
        self._owns_stream = False
        if self.stream is None and (config.stream_path or config.progress):
            from repro.telemetry.stream import CampaignStream

            self.stream = CampaignStream(
                path=config.stream_path, progress=config.progress
            )
            self._owns_stream = True
        # Flight recording: None = auto (on whenever a post-mortem is
        # plausible); the plain fast path stays file-free.
        flight = config.flight
        if flight is None:
            flight = bool(
                self.chaos is not None
                or self.timeout is not None
                or self.stream is not None
                or config.flight_dir
            )
        self.flight_root: Optional[str] = None
        self._owns_flight = False
        if flight:
            if config.flight_dir:
                self.flight_root = os.path.abspath(config.flight_dir)
                os.makedirs(self.flight_root, exist_ok=True)
            else:
                import tempfile

                self.flight_root = tempfile.mkdtemp(prefix="repro-flight-")
                self._owns_flight = True
        self.outcomes: Dict[int, PointOutcome] = {}
        self.counters: Dict[str, int] = {
            key: 0
            for key in (
                "points", "ok", "cache_hits", "recomputed", "quarantined",
                "retries", "timeouts", "crashes", "failures", "pool_rebuilds",
            )
        }
        self.counters["points"] = len(self.specs)

    # -- shared bookkeeping --------------------------------------------------

    def _count(self, name: str, point: Optional[int] = None) -> None:
        self.counters[name] += 1
        if self.telemetry is not None:
            self.telemetry.counter(f"supervisor.{name}").inc()
            if point is not None:
                self.telemetry.instant(SUPERVISOR_EVENT, name, point=point)

    def _succeed(
        self, work: _Work, result, fresh: bool = True, wall: float = 0.0
    ) -> None:
        self.outcomes[work.index] = PointOutcome(
            index=work.index,
            spec=work.spec,
            status=OK if fresh else CACHED,
            result=result,
            attempts=work.attempts,
            failures=work.failures,
        )
        self._count("ok" if fresh else "cache_hits")
        if fresh:
            self._count("recomputed")
            if self.store is not None and work.key is not None:
                self.store.put(work.key, result)
        if self.stream is not None:
            metrics = {}
            for name in ("ipc", "miss_ratio"):
                value = getattr(result, name, None)
                if isinstance(value, (int, float)):
                    metrics[name] = round(float(value), 6)
            self.stream.point_finished(
                point=work.index,
                attempt=max(0, work.attempts - 1),
                benchmark=getattr(work.spec, "benchmark", "?"),
                machine=getattr(work.spec, "machine", "?"),
                status=OK if fresh else CACHED,
                wall_s=wall if fresh else 0.0,
                events=getattr(result, "instructions", None),
                metrics=metrics or None,
            )

    def _quarantine_record(self, work: _Work, flight: List[Dict]) -> Dict:
        """JSON post-mortem for the result store's quarantine namespace."""
        return {
            "schema": 1,
            "point": work.index,
            "benchmark": getattr(work.spec, "benchmark", "?"),
            "machine": getattr(work.spec, "machine", "?"),
            "kind": getattr(work.spec, "kind", "?"),
            "attempts": work.attempts,
            "failures": list(work.failures),
            "flight": flight,
        }

    def _fail(self, work: _Work, kind: str, note: str) -> bool:
        """Charge one failed attempt; True when the point should retry."""
        work.failures.append(note)
        self._count(kind, point=work.index)
        if work.attempts > self.retries:
            flight: List[Dict] = []
            if self.flight_root is not None:
                from repro.telemetry.flight import load_point_records

                flight = load_point_records(self.flight_root, work.index)
            self.outcomes[work.index] = PointOutcome(
                index=work.index,
                spec=work.spec,
                status=QUARANTINED,
                result=None,
                attempts=work.attempts,
                failures=work.failures,
                flight=flight or None,
            )
            self._count("quarantined", point=work.index)
            if self.store is not None and work.key is not None:
                self.store.put_quarantine(
                    work.key, self._quarantine_record(work, flight)
                )
            if self.stream is not None:
                self.stream.point_quarantined(
                    point=work.index,
                    attempts=work.attempts,
                    note=work.failures[-1] if work.failures else "",
                    flight_records=len(flight),
                )
            return False
        self._count("retries", point=work.index)
        delay = self.backoff.delay(work.key or str(work.index), work.attempts - 1)
        work.not_before = time.monotonic() + delay
        if self.stream is not None:
            self.stream.point_retry(
                point=work.index,
                attempt=work.attempts - 1,
                kind=kind,
                delay_s=delay,
                note=note,
            )
        return True

    def _work_key(self, work: _Work) -> str:
        return work.key or f"{work.spec.benchmark}/{work.spec.machine}/{work.index}"

    def _build_work(self) -> List[_Work]:
        """Resolve cache hits; return the points that must execute."""
        todo: List[_Work] = []
        for index, spec in enumerate(self.specs):
            key = point_key(spec) if self.store is not None else None
            work = _Work(index, spec, key)
            if self.store is not None:
                cached = self.store.get(key)
                if cached is not None:
                    self._succeed(work, cached, fresh=False)
                    continue
            todo.append(work)
        return todo

    def _report(self) -> CampaignReport:
        outcomes = [self.outcomes[index] for index in sorted(self.outcomes)]
        return CampaignReport(outcomes=outcomes, counters=dict(self.counters))

    # -- serial engine -------------------------------------------------------

    def _run_serial(self, todo: List[_Work]) -> None:
        remaining = len(todo)
        for work in todo:
            while True:
                attempt = work.attempts
                work.attempts += 1
                span = None
                if self.telemetry is not None:
                    span = self.telemetry.begin(
                        POINT_ATTEMPT,
                        f"{work.spec.benchmark}/{work.spec.machine}",
                        point=work.index, attempt=attempt,
                    )
                if self.stream is not None:
                    self.stream.point_started(
                        point=work.index,
                        attempt=attempt,
                        benchmark=getattr(work.spec, "benchmark", "?"),
                        machine=getattr(work.spec, "machine", "?"),
                    )
                try:
                    result, wall = _run_attempt(
                        work.index, attempt, work.spec, self.chaos,
                        allow_kill=False, flight_root=self.flight_root,
                    )
                except KeyboardInterrupt:
                    if span is not None:
                        self.telemetry.end(span, level="error", outcome="interrupted")
                    raise
                except Exception as exc:
                    if span is not None:
                        self.telemetry.end(span, level="error", outcome="failed")
                    from repro.harness.chaos import WorkerKilled

                    kind = "crashes" if isinstance(exc, WorkerKilled) else "failures"
                    if not self._fail(work, kind, f"attempt {attempt}: {exc!r}"):
                        break
                    wait = work.not_before - time.monotonic()
                    if wait > 0:
                        time.sleep(wait)
                else:
                    if span is not None:
                        self.telemetry.end(span, outcome="ok")
                    self._succeed(work, result, wall=wall)
                    break
            remaining -= 1
            if self.stream is not None:
                self.stream.heartbeat(waiting=remaining)

    # -- parallel engine -----------------------------------------------------

    def _run_parallel(self, todo: List[_Work]) -> None:
        import concurrent.futures as cf
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context("spawn")

        chaos_data = self.chaos.to_dict() if self.chaos is not None else None
        rebuild_cap = max(8, (self.retries + 1) * len(todo))
        ready = deque(todo)
        waiting: List[_Work] = []
        inflight: Dict = {}
        deadlines: Dict = {}
        pool = None

        def new_pool():
            size = min(self.workers, max(1, len(ready) + len(waiting) + 1))
            return cf.ProcessPoolExecutor(max_workers=size, mp_context=context)

        def submit(work: _Work) -> None:
            attempt = work.attempts
            work.attempts += 1
            future = pool.submit(
                _execute_supervised,
                (work.index, attempt, work.spec, chaos_data, self.flight_root),
            )
            inflight[future] = work
            if self.timeout is not None:
                deadlines[future] = time.monotonic() + self.timeout
            if self.stream is not None:
                self.stream.point_started(
                    point=work.index,
                    attempt=attempt,
                    benchmark=getattr(work.spec, "benchmark", "?"),
                    machine=getattr(work.spec, "machine", "?"),
                )

        try:
            while ready or waiting or inflight:
                now = time.monotonic()
                still_waiting = []
                for work in waiting:
                    if work.not_before <= now:
                        ready.append(work)
                    else:
                        still_waiting.append(work)
                waiting = still_waiting

                while ready and len(inflight) < self.workers:
                    if pool is None:
                        pool = new_pool()
                    submit(ready.popleft())

                if not inflight:
                    if waiting:
                        pause = min(w.not_before for w in waiting) - now
                        time.sleep(max(0.0, min(pause, 0.5)))
                    continue

                # Wake early enough to notice the nearest deadline or the
                # nearest backoff expiry; poll at 0.5s otherwise so Ctrl-C
                # and stalled workers are noticed promptly.
                horizon = 0.5
                if deadlines:
                    horizon = min(horizon, max(0.0, min(deadlines.values()) - now))
                if waiting:
                    horizon = min(
                        horizon, max(0.0, min(w.not_before for w in waiting) - now)
                    )
                done, _ = cf.wait(
                    list(inflight), timeout=horizon,
                    return_when=cf.FIRST_COMPLETED,
                )

                broken = False
                for future in done:
                    work = inflight.pop(future)
                    deadlines.pop(future, None)
                    error = future.exception()
                    if error is None:
                        _, result, wall = future.result()
                        self._succeed(work, result, wall=wall)
                    elif isinstance(error, cf.BrokenExecutor):
                        broken = True
                        if self._fail(work, "crashes", f"attempt {work.attempts - 1}: worker died ({error!r})"):
                            waiting.append(work)
                    else:
                        if self._fail(work, "failures", f"attempt {work.attempts - 1}: {error!r}"):
                            waiting.append(work)

                now = time.monotonic()
                expired = [f for f, dl in deadlines.items() if now > dl]
                if expired:
                    victims = set(expired)
                    for future in list(inflight):
                        work = inflight.pop(future)
                        deadlines.pop(future, None)
                        if future in victims:
                            if self._fail(
                                work, "timeouts",
                                f"attempt {work.attempts - 1}: exceeded "
                                f"{self.timeout}s wall clock",
                            ):
                                waiting.append(work)
                        else:
                            # Innocent bystander: its work dies with the
                            # pool, but it keeps its attempt budget.
                            work.attempts -= 1
                            ready.appendleft(work)
                    _kill_pool(pool)
                    pool = None
                    self._count("pool_rebuilds")
                elif broken:
                    # The pool is unusable; every in-flight future is (or
                    # is about to be) broken. The true victim is unknown,
                    # so each in-flight point is charged one attempt.
                    for future in list(inflight):
                        work = inflight.pop(future)
                        deadlines.pop(future, None)
                        if self._fail(
                            work, "crashes",
                            f"attempt {work.attempts - 1}: pool broke "
                            "while in flight",
                        ):
                            waiting.append(work)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    self._count("pool_rebuilds")

                if self.stream is not None:
                    self.stream.heartbeat(waiting=len(ready) + len(waiting))

                if self.counters["pool_rebuilds"] > rebuild_cap:
                    raise SimulationError(
                        f"supervisor: gave up after "
                        f"{self.counters['pool_rebuilds']} pool rebuilds "
                        f"(cap {rebuild_cap}); see the campaign report"
                    )
        except KeyboardInterrupt:
            if pool is not None:
                _kill_pool(pool)
            raise
        else:
            if pool is not None:
                pool.shutdown(wait=True)

    # -- entry ---------------------------------------------------------------

    def run(self) -> CampaignReport:
        span = None
        if self.telemetry is not None:
            span = self.telemetry.begin(CAMPAIGN, points=len(self.specs))
        if self.stream is not None:
            self.stream.campaign_started(
                points=len(self.specs), workers=self.workers
            )
        try:
            todo = self._build_work()
            if todo:
                if self.workers <= 1:
                    self._run_serial(todo)
                else:
                    self._run_parallel(todo)
        finally:
            if span is not None:
                self.telemetry.end(span, **{
                    key: self.counters[key]
                    for key in ("ok", "cache_hits", "recomputed",
                                "retries", "timeouts", "crashes", "quarantined")
                })
            if self.stream is not None:
                # Even a sub-second campaign ships one heartbeat, so
                # stream consumers can rely on the event being present.
                self.stream.heartbeat(force=True)
                self.stream.campaign_finished(dict(self.counters))
                if self._owns_stream:
                    self.stream.close()
            if self._owns_flight and self.flight_root is not None:
                from repro.telemetry.flight import purge

                purge(self.flight_root)
        return self._report()


def run_campaign(
    specs: List,
    config: Optional[SupervisorConfig] = None,
    workers=None,
    resume: Optional[bool] = None,
) -> CampaignReport:
    """Execute a campaign under supervision; never raises for point
    failures — quarantined points surface in the report instead."""
    if config is None:
        config = default_supervisor()
    overrides = {}
    if workers is not None:
        overrides["workers"] = workers
    if resume is not None:
        overrides["resume"] = resume
    if overrides:
        config = replace(config, **overrides)
    return _Engine(specs, config).run()


__all__ = [
    "BackoffPolicy",
    "CACHED",
    "CAMPAIGN",
    "CampaignReport",
    "DEFAULT_RETRIES",
    "OK",
    "POINT_ATTEMPT",
    "POINT_TIMEOUT_ENV",
    "PointOutcome",
    "QUARANTINED",
    "RETRIES_ENV",
    "SUPERVISOR_EVENT",
    "SupervisorConfig",
    "default_supervisor",
    "resolve_point_timeout",
    "resolve_retries",
    "run_campaign",
    "set_default_supervisor",
]
