"""The conformance corpus: pinned per-tier protocol event streams.

A correct protocol change (a new pruning, a refactor of the VCL) must
not alter what the protocol *does* on a fixed workload under a fixed
deterministic schedule — and an accidental behavior change should fail
loudly, pointing at the first diverging bus transaction rather than at
a distant oracle mismatch. This module generates that evidence: a small
seeded workload, executed per design tier with the ``oldest_first``
schedule (fully deterministic — no RNG choices survive into the event
order), logging every protocol event.

``tests/conformance/`` pins the resulting streams as fixtures;
``tools/gen_conformance.py`` regenerates them after an *intentional*
protocol change, which makes the diff of the fixture file itself the
reviewable artifact of the change.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from repro.common.config import CacheGeometry, SVCConfig
from repro.common.events import EventLog
from repro.hier.driver import SpeculativeExecutionDriver
from repro.hier.task import TaskProgram
from repro.svc.designs import DESIGNS, design_config
from repro.svc.system import SVCSystem
from repro.workloads.generator import WorkloadSpec, generate_tasks

#: Bump when the corpus workload or geometry deliberately changes.
CORPUS_VERSION = 1

#: Small enough to keep fixtures reviewable, big enough to exercise
#: fills, version forwarding, violation squashes, commits and evictions.
CORPUS_SPEC = WorkloadSpec(
    name="conformance",
    n_tasks=24,
    ops_per_task_mean=20,
    memory_fraction=0.7,
    store_fraction=0.5,
    working_set_bytes=2 * 1024,
    #: One hot 16-word window shared by *every* task: under the
    #: youngest-first schedule this reliably produces use-before-
    #: definition violations, so the streams pin squash and
    #: re-execution behavior, not just fills and commits.
    shared_bytes=64,
    shared_window_words=16,
    read_only_bytes=512,
    p_shared=0.60,
    p_private=0.15,
    p_read_only=0.10,
    mispredict_rate=0.0,
    seed=7,
)

#: Tiny caches force replacements and retention decisions into the
#: stream (4 x 512B, 2-way); versioning blocks at the paper's 4 bytes.
CORPUS_GEOMETRY = CacheGeometry(
    size_bytes=512, associativity=2, line_size=16, versioning_block_size=4
)


def corpus_tasks() -> List[TaskProgram]:
    """The fixed conformance workload (deterministic by construction)."""
    return generate_tasks(CORPUS_SPEC)


def event_stream(design: str) -> List[str]:
    """Run the corpus on ``design`` and return the described events."""
    if design not in DESIGNS:
        raise ValueError(f"unknown SVC design {design!r}")
    event_log = EventLog()
    config = design_config(
        design, SVCConfig(geometry=CORPUS_GEOMETRY, n_caches=4)
    )
    system = SVCSystem(config, event_log=event_log)
    # youngest_first is deterministic like oldest_first, but runs later
    # tasks ahead of their producers — the stream gets violation
    # squashes and re-executions, not just fills and commits.
    driver = SpeculativeExecutionDriver(
        system, corpus_tasks(), seed=0, schedule="youngest_first"
    )
    driver.run()
    return [event.describe() for event in event_log]


def stream_digest(lines: List[str]) -> str:
    """Stable digest of one stream (what commit messages can quote)."""
    payload = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def corpus_digests() -> Dict[str, str]:
    """Digest of every tier's stream, keyed by design name."""
    return {design: stream_digest(event_stream(design)) for design in DESIGNS}


def first_divergence(expected: List[str], actual: List[str]) -> str:
    """Human-oriented pointer at the first differing event."""
    for index, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            return (
                f"first divergence at event {index}:\n"
                f"  expected: {want}\n"
                f"  actual:   {got}"
            )
    if len(expected) != len(actual):
        longer = "actual" if len(actual) > len(expected) else "expected"
        return (
            f"streams agree for {min(len(expected), len(actual))} events, "
            f"then {longer} continues "
            f"({len(expected)} expected vs {len(actual)} actual)"
        )
    return "streams are identical"
