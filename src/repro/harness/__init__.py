"""Experiment harness: regenerate every table and figure of the paper.

Each experiment in :mod:`repro.harness.experiments` is keyed by the
paper artifact it reproduces (``table2``, ``table3``, ``fig19``,
``fig20``) plus the ablations DESIGN.md defines. Runners return plain
result objects; :mod:`repro.harness.reporting` renders them in the shape
the paper prints (rows for tables, per-benchmark series for figures).
"""

from repro.harness.parallel import PointSpec, resolve_workers, run_points
from repro.harness.experiments import (
    EXPERIMENTS,
    run_ablation_designs,
    run_ablation_linesize,
    run_ablation_scaling,
    run_ablation_update_policy,
    run_figure19,
    run_figure20,
    run_table2,
    run_table3,
)
from repro.harness.reporting import format_series, format_table

__all__ = [
    "EXPERIMENTS",
    "PointSpec",
    "format_series",
    "format_table",
    "resolve_workers",
    "run_points",
    "run_ablation_designs",
    "run_ablation_linesize",
    "run_ablation_scaling",
    "run_ablation_update_policy",
    "run_figure19",
    "run_figure20",
    "run_table2",
    "run_table3",
]
