"""Differential oracle for the SVC performance fast paths.

Two pure-speed mechanisms sit on the hot VCL/snoop/commit path and must
never change *observable* behaviour:

* the line-granular :class:`repro.svc.directory.VersionDirectory`
  (``SVCConfig.use_directory``), which makes snoop resolution
  O(holders) instead of O(caches x ways), and
* the structure-of-arrays :class:`repro.svc.fastpath.FastpathKernel`
  (``SVCConfig.use_fastpath``), which supplies copy-free residency
  checks, stamp-compare snarf acceptance and fused VOL repair.

This module enforces that the hard way: run the same seeded workload
twice on the same design tier — fast path on (the default) and off
(the seed's per-line object walks) — and demand byte-identical

* protocol event streams (every bus transaction, squash, commit, VOL
  repair, in order, with identical payloads),
* statistics snapshots,
* committed load values per task, and
* final drained main-memory images.

Workloads, schedules and fault plans are all seeded, so both runs make
exactly the same decisions; the only degree of freedom left is the
mechanism under test. Any divergence is a fast-path bug by
construction.

Used by the hypothesis property test
(``tests/integration/test_property_differential.py``) across all six
design tiers with fault injection on, and runnable standalone::

    PYTHONPATH=src python -m repro.harness.differential --seeds 10 --faults
    PYTHONPATH=src python -m repro.harness.differential --dimension fastpath --faults
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.common.config import SVCConfig
from repro.common.events import EventLog
from repro.faults import FaultPlan
from repro.hier.driver import SpeculativeExecutionDriver
from repro.hier.task import TaskProgram
from repro.mem.main_memory import MainMemory
from repro.svc.designs import DESIGNS, design_config
from repro.svc.system import SVCSystem
from repro.workloads.generator import WorkloadSpec, generate_tasks

#: Every design tier of the paper's section-3 progression.
TIERS: Tuple[str, ...] = tuple(DESIGNS)


#: Config-flag dimensions the differential oracle can exercise.
DIMENSIONS: Tuple[str, ...] = ("directory", "fastpath")

_DIMENSION_FLAGS = {"directory": "use_directory", "fastpath": "use_fastpath"}


class DifferentialMismatch(AssertionError):
    """Fast-path-on and fast-path-off runs diverged."""


@dataclass
class RunObservation:
    """Everything observable about one functional run."""

    events: Tuple
    stats: Dict[str, int]
    image: Dict[int, int]
    load_values: List[List[int]]
    violation_squashes: int
    injected_squashes: int


def observe_run(
    config: SVCConfig,
    tasks: List[TaskProgram],
    seed: int = 0,
    schedule: str = "random",
    squash_probability: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    telemetry=None,
) -> RunObservation:
    """One driver run over a fresh system, with every observable captured.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry` or ``None``) is
    deliberately *not* part of the observation: recording spans must
    never perturb events, stats, load values or the memory image, and
    :func:`compare_telemetry_modes` proves it.
    """
    memory = MainMemory(config.miss_penalty_cycles)
    log = EventLog()
    system = SVCSystem(config, memory=memory, event_log=log, telemetry=telemetry)
    driver = SpeculativeExecutionDriver(
        system,
        tasks,
        seed=seed,
        schedule=schedule,
        squash_probability=squash_probability,
        fault_plan=fault_plan,
    )
    report = driver.run()
    return RunObservation(
        events=tuple(log),
        stats=system.stats.snapshot(),
        image=memory.image(),
        load_values=report.load_values,
        violation_squashes=report.violation_squashes,
        injected_squashes=report.injected_squashes,
    )


def _first_event_divergence(on: Tuple, off: Tuple, what: str = "mode") -> str:
    for i, (a, b) in enumerate(zip(on, off)):
        if a != b:
            return f"event {i}: {what}-on {a} != {what}-off {b}"
    return (
        f"event stream lengths differ: {what}-on {len(on)} "
        f"!= {what}-off {len(off)}"
    )


def diff_observations(
    on: RunObservation, off: RunObservation, what: str = "mode"
) -> List[str]:
    """Human-readable divergences between two observations (empty = ok)."""
    mismatches: List[str] = []
    if on.events != off.events:
        mismatches.append(_first_event_divergence(on.events, off.events, what))
    if on.stats != off.stats:
        diff = {
            key: (on.stats.get(key, 0), off.stats.get(key, 0))
            for key in set(on.stats) | set(off.stats)
            if on.stats.get(key, 0) != off.stats.get(key, 0)
        }
        mismatches.append(f"stats diverged (on, off): {diff}")
    if on.load_values != off.load_values:
        mismatches.append("committed load values diverged")
    if on.image != off.image:
        mismatches.append("final memory images diverged")
    if (on.violation_squashes, on.injected_squashes) != (
        off.violation_squashes,
        off.injected_squashes,
    ):
        mismatches.append(
            f"squash counts diverged: on ({on.violation_squashes}, "
            f"{on.injected_squashes}) != off ({off.violation_squashes}, "
            f"{off.injected_squashes})"
        )
    return mismatches


def _compare_flag_modes(
    dimension: str,
    tier: str,
    tasks: List[TaskProgram],
    seed: int = 0,
    schedule: str = "random",
    squash_probability: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    base_config: Optional[SVCConfig] = None,
) -> List[str]:
    flag = _DIMENSION_FLAGS[dimension]
    config = design_config(tier, base_config or SVCConfig.paper_32kb())
    kwargs = dict(
        seed=seed,
        schedule=schedule,
        squash_probability=squash_probability,
        fault_plan=fault_plan,
    )
    on = observe_run(replace(config, **{flag: True}), tasks, **kwargs)
    off = observe_run(replace(config, **{flag: False}), tasks, **kwargs)
    return diff_observations(on, off, what=dimension)


def compare_directory_modes(
    tier: str,
    tasks: List[TaskProgram],
    **kwargs,
) -> List[str]:
    """Run one tier with the version directory on and off; return
    human-readable mismatches (empty = ok)."""
    return _compare_flag_modes("directory", tier, tasks, **kwargs)


def compare_fastpath_modes(
    tier: str,
    tasks: List[TaskProgram],
    **kwargs,
) -> List[str]:
    """Run one tier with the structure-of-arrays fastpath kernel on and
    off; return human-readable mismatches (empty = ok).

    The off run exercises the seed's per-line object walks (byte
    composition, per-line VOL repair); the on run exercises
    :class:`repro.svc.fastpath.FastpathKernel`'s supply plans,
    stamp-compare snarf acceptance and fused repair. Identical
    observables across all tiers, faults and chaos schedules is the
    kernel's correctness proof.
    """
    return _compare_flag_modes("fastpath", tier, tasks, **kwargs)


def compare_telemetry_modes(
    tier: str,
    tasks: List[TaskProgram],
    seed: int = 0,
    schedule: str = "random",
    squash_probability: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    base_config: Optional[SVCConfig] = None,
) -> List[str]:
    """Prove telemetry is a pure observer on one tier.

    Runs the same seeded workload with telemetry recording and fully
    unwired; every observable (event stream, stats, load values, memory
    image, squash counts) must be byte-identical. Also sanity-checks
    that the traced run actually produced spans — a silently-dead
    recorder would make the comparison vacuous.
    """
    from repro.telemetry import Telemetry

    config = design_config(tier, base_config or SVCConfig.paper_32kb())
    kwargs = dict(
        seed=seed,
        schedule=schedule,
        squash_probability=squash_probability,
        fault_plan=fault_plan,
    )
    tel = Telemetry(label=f"differential/{tier}")
    on = observe_run(config, tasks, telemetry=tel, **kwargs)
    off = observe_run(config, tasks, telemetry=None, **kwargs)

    mismatches: List[str] = []
    if not tel.tracer.spans:
        mismatches.append("traced run recorded no spans (telemetry dead?)")
    mismatches.extend(diff_observations(on, off, what="telemetry"))
    return mismatches


def differential_workload(
    seed: int, n_tasks: int = 24, ops_per_task: int = 12
) -> List[TaskProgram]:
    """A small, sharing-heavy seeded workload sized to force evictions,
    snarfs and violations even on the 8KB configuration."""
    spec = WorkloadSpec(
        name=f"differential-{seed}",
        n_tasks=n_tasks,
        ops_per_task_mean=ops_per_task,
        memory_fraction=0.6,
        store_fraction=0.45,
        working_set_bytes=2 * 1024,
        shared_bytes=512,
        read_only_bytes=512,
        p_shared=0.3,
        p_private=0.3,
        p_read_only=0.1,
        spatial_run=4,
        seed=seed,
    )
    return generate_tasks(spec)


def check_tier(
    tier: str,
    seed: int,
    with_faults: bool = False,
    schedule: str = "random",
    dimension: str = "directory",
) -> None:
    """Raise :class:`DifferentialMismatch` if ``dimension`` (one of
    :data:`DIMENSIONS`) changes any observable behaviour on one tier."""
    if dimension not in _DIMENSION_FLAGS:
        raise ValueError(
            f"unknown dimension {dimension!r}; expected one of {DIMENSIONS}"
        )
    tasks = differential_workload(seed)
    # The EC design assumes no squashes (paper section 3.4).
    allow_squashes = tier != "ec"
    fault_plan = None
    if with_faults:
        from repro.faults import random_fault_plan

        fault_plan = random_fault_plan(
            seed, len(tasks), 12, allow_squashes=allow_squashes
        )
    mismatches = _compare_flag_modes(
        dimension,
        tier,
        tasks,
        seed=seed,
        squash_probability=0.02 if allow_squashes else 0.0,
        fault_plan=fault_plan,
        schedule=schedule,
    )
    if mismatches:
        raise DifferentialMismatch(
            f"tier {tier!r}, seed {seed}: {dimension} fast path changed "
            "observable behaviour:\n  " + "\n  ".join(mismatches)
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Differential check: SVC fast paths on vs off."
    )
    parser.add_argument("--seeds", type=int, default=5, help="seeds per tier")
    parser.add_argument(
        "--faults", action="store_true", help="attach random fault plans"
    )
    parser.add_argument(
        "--tiers", default=",".join(TIERS), help="comma-separated tier subset"
    )
    parser.add_argument(
        "--dimension",
        default="directory",
        choices=DIMENSIONS + ("all",),
        help="which fast-path flag to flip (default: directory)",
    )
    args = parser.parse_args(argv)
    tiers = tuple(t for t in args.tiers.split(",") if t)
    dimensions = DIMENSIONS if args.dimension == "all" else (args.dimension,)
    for dimension in dimensions:
        for tier in tiers:
            for seed in range(args.seeds):
                check_tier(
                    tier, seed, with_faults=args.faults, dimension=dimension
                )
            print(f"{dimension}/{tier}: {args.seeds} seeds identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
