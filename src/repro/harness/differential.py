"""Differential oracle for the version directory fast path.

The line-granular :class:`repro.svc.directory.VersionDirectory` exists
purely to make snoop resolution O(holders) instead of O(caches x ways);
it must never change *observable* behaviour. This module enforces that
the hard way: run the same seeded workload twice on the same design
tier — directory on (``SVCConfig.use_directory=True``, the default) and
off (the seed's brute-force scans) — and demand byte-identical

* protocol event streams (every bus transaction, squash, commit, VOL
  repair, in order, with identical payloads),
* statistics snapshots,
* committed load values per task, and
* final drained main-memory images.

Workloads, schedules and fault plans are all seeded, so both runs make
exactly the same decisions; the only degree of freedom left is the
directory itself. Any divergence is a directory bug by construction.

Used by the hypothesis property test
(``tests/integration/test_property_differential.py``) across all six
design tiers with fault injection on, and runnable standalone::

    PYTHONPATH=src python -m repro.harness.differential --seeds 10 --faults
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.common.config import SVCConfig
from repro.common.events import EventLog
from repro.faults import FaultPlan
from repro.hier.driver import SpeculativeExecutionDriver
from repro.hier.task import TaskProgram
from repro.mem.main_memory import MainMemory
from repro.svc.designs import DESIGNS, design_config
from repro.svc.system import SVCSystem
from repro.workloads.generator import WorkloadSpec, generate_tasks

#: Every design tier of the paper's section-3 progression.
TIERS: Tuple[str, ...] = tuple(DESIGNS)


class DifferentialMismatch(AssertionError):
    """Directory-on and directory-off runs diverged."""


@dataclass
class RunObservation:
    """Everything observable about one functional run."""

    events: Tuple
    stats: Dict[str, int]
    image: Dict[int, int]
    load_values: List[List[int]]
    violation_squashes: int
    injected_squashes: int


def observe_run(
    config: SVCConfig,
    tasks: List[TaskProgram],
    seed: int = 0,
    schedule: str = "random",
    squash_probability: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    telemetry=None,
) -> RunObservation:
    """One driver run over a fresh system, with every observable captured.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry` or ``None``) is
    deliberately *not* part of the observation: recording spans must
    never perturb events, stats, load values or the memory image, and
    :func:`compare_telemetry_modes` proves it.
    """
    memory = MainMemory(config.miss_penalty_cycles)
    log = EventLog()
    system = SVCSystem(config, memory=memory, event_log=log, telemetry=telemetry)
    driver = SpeculativeExecutionDriver(
        system,
        tasks,
        seed=seed,
        schedule=schedule,
        squash_probability=squash_probability,
        fault_plan=fault_plan,
    )
    report = driver.run()
    return RunObservation(
        events=tuple(log),
        stats=system.stats.snapshot(),
        image=memory.image(),
        load_values=report.load_values,
        violation_squashes=report.violation_squashes,
        injected_squashes=report.injected_squashes,
    )


def _first_event_divergence(on: Tuple, off: Tuple) -> str:
    for i, (a, b) in enumerate(zip(on, off)):
        if a != b:
            return f"event {i}: directory-on {a} != directory-off {b}"
    return (
        f"event stream lengths differ: directory-on {len(on)} "
        f"!= directory-off {len(off)}"
    )


def compare_directory_modes(
    tier: str,
    tasks: List[TaskProgram],
    seed: int = 0,
    schedule: str = "random",
    squash_probability: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    base_config: Optional[SVCConfig] = None,
) -> List[str]:
    """Run one tier both ways; return human-readable mismatches (empty = ok)."""
    config = design_config(tier, base_config or SVCConfig.paper_32kb())
    kwargs = dict(
        seed=seed,
        schedule=schedule,
        squash_probability=squash_probability,
        fault_plan=fault_plan,
    )
    on = observe_run(replace(config, use_directory=True), tasks, **kwargs)
    off = observe_run(replace(config, use_directory=False), tasks, **kwargs)

    mismatches: List[str] = []
    if on.events != off.events:
        mismatches.append(_first_event_divergence(on.events, off.events))
    if on.stats != off.stats:
        diff = {
            key: (on.stats.get(key, 0), off.stats.get(key, 0))
            for key in set(on.stats) | set(off.stats)
            if on.stats.get(key, 0) != off.stats.get(key, 0)
        }
        mismatches.append(f"stats diverged (on, off): {diff}")
    if on.load_values != off.load_values:
        mismatches.append("committed load values diverged")
    if on.image != off.image:
        mismatches.append("final memory images diverged")
    if (on.violation_squashes, on.injected_squashes) != (
        off.violation_squashes,
        off.injected_squashes,
    ):
        mismatches.append(
            f"squash counts diverged: on ({on.violation_squashes}, "
            f"{on.injected_squashes}) != off ({off.violation_squashes}, "
            f"{off.injected_squashes})"
        )
    return mismatches


def compare_telemetry_modes(
    tier: str,
    tasks: List[TaskProgram],
    seed: int = 0,
    schedule: str = "random",
    squash_probability: float = 0.0,
    fault_plan: Optional[FaultPlan] = None,
    base_config: Optional[SVCConfig] = None,
) -> List[str]:
    """Prove telemetry is a pure observer on one tier.

    Runs the same seeded workload with telemetry recording and fully
    unwired; every observable (event stream, stats, load values, memory
    image, squash counts) must be byte-identical. Also sanity-checks
    that the traced run actually produced spans — a silently-dead
    recorder would make the comparison vacuous.
    """
    from repro.telemetry import Telemetry

    config = design_config(tier, base_config or SVCConfig.paper_32kb())
    kwargs = dict(
        seed=seed,
        schedule=schedule,
        squash_probability=squash_probability,
        fault_plan=fault_plan,
    )
    tel = Telemetry(label=f"differential/{tier}")
    on = observe_run(config, tasks, telemetry=tel, **kwargs)
    off = observe_run(config, tasks, telemetry=None, **kwargs)

    mismatches: List[str] = []
    if not tel.tracer.spans:
        mismatches.append("traced run recorded no spans (telemetry dead?)")
    if on.events != off.events:
        mismatches.append(_first_event_divergence(on.events, off.events))
    if on.stats != off.stats:
        diff = {
            key: (on.stats.get(key, 0), off.stats.get(key, 0))
            for key in set(on.stats) | set(off.stats)
            if on.stats.get(key, 0) != off.stats.get(key, 0)
        }
        mismatches.append(f"stats diverged (traced, plain): {diff}")
    if on.load_values != off.load_values:
        mismatches.append("committed load values diverged")
    if on.image != off.image:
        mismatches.append("final memory images diverged")
    if (on.violation_squashes, on.injected_squashes) != (
        off.violation_squashes,
        off.injected_squashes,
    ):
        mismatches.append(
            f"squash counts diverged: traced ({on.violation_squashes}, "
            f"{on.injected_squashes}) != plain ({off.violation_squashes}, "
            f"{off.injected_squashes})"
        )
    return mismatches


def differential_workload(
    seed: int, n_tasks: int = 24, ops_per_task: int = 12
) -> List[TaskProgram]:
    """A small, sharing-heavy seeded workload sized to force evictions,
    snarfs and violations even on the 8KB configuration."""
    spec = WorkloadSpec(
        name=f"differential-{seed}",
        n_tasks=n_tasks,
        ops_per_task_mean=ops_per_task,
        memory_fraction=0.6,
        store_fraction=0.45,
        working_set_bytes=2 * 1024,
        shared_bytes=512,
        read_only_bytes=512,
        p_shared=0.3,
        p_private=0.3,
        p_read_only=0.1,
        spatial_run=4,
        seed=seed,
    )
    return generate_tasks(spec)


def check_tier(
    tier: str,
    seed: int,
    with_faults: bool = False,
    schedule: str = "random",
) -> None:
    """Raise :class:`DifferentialMismatch` if the directory is visible."""
    tasks = differential_workload(seed)
    # The EC design assumes no squashes (paper section 3.4).
    allow_squashes = tier != "ec"
    fault_plan = None
    if with_faults:
        from repro.faults import random_fault_plan

        fault_plan = random_fault_plan(
            seed, len(tasks), 12, allow_squashes=allow_squashes
        )
    mismatches = compare_directory_modes(
        tier,
        tasks,
        seed=seed,
        squash_probability=0.02 if allow_squashes else 0.0,
        fault_plan=fault_plan,
        schedule=schedule,
    )
    if mismatches:
        raise DifferentialMismatch(
            f"tier {tier!r}, seed {seed}: directory changed observable "
            "behaviour:\n  " + "\n  ".join(mismatches)
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Differential check: version directory on vs off."
    )
    parser.add_argument("--seeds", type=int, default=5, help="seeds per tier")
    parser.add_argument(
        "--faults", action="store_true", help="attach random fault plans"
    )
    parser.add_argument(
        "--tiers", default=",".join(TIERS), help="comma-separated tier subset"
    )
    args = parser.parse_args(argv)
    tiers = tuple(t for t in args.tiers.split(",") if t)
    for tier in tiers:
        for seed in range(args.seeds):
            check_tier(tier, seed, with_faults=args.faults)
        print(f"{tier}: {args.seeds} seeds identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
