"""ASCII bar charts: render the paper's figures in a terminal.

Figures 19 and 20 are grouped bar charts (five bars per benchmark).
`render_grouped_bars` draws the same shape in text, so `python -m repro
fig19` shows the crossover visually, not only as numbers.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.harness.experiments import ExperimentResult

_FULL = "#"


def render_grouped_bars(
    result: ExperimentResult,
    machines: Sequence[str],
    metric: Callable,
    metric_name: str,
    width: int = 40,
) -> str:
    """One row of bars per (benchmark, machine), scaled to the global
    maximum — the text analog of the paper's grouped bar charts."""
    benchmarks: List[str] = []
    for point in result.points:
        if point.benchmark not in benchmarks:
            benchmarks.append(point.benchmark)

    values = {}
    peak = 0.0
    for name in benchmarks:
        for machine in machines:
            point = result.point(name, machine)
            if point is None:
                continue
            value = metric(point)
            values[(name, machine)] = value
            peak = max(peak, value)
    if peak <= 0:
        return "(no data)"

    label_width = max(len(m) for m in machines)
    lines = [f"{metric_name} (bar = {peak / width:.3f} per char)"]
    for name in benchmarks:
        lines.append(f"{name}:")
        for machine in machines:
            value = values.get((name, machine))
            if value is None:
                continue
            bar = _FULL * max(1, round(width * value / peak))
            lines.append(f"  {machine.ljust(label_width)} |{bar} {value:.2f}")
    return "\n".join(lines)
