"""``python -m repro``: the experiment command line."""

import sys

from repro.cli import main

sys.exit(main())
