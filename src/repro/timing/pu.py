"""Per-PU pipeline timing: dual-issue scheduling and the LSQ.

Each PU schedules its task's operations with an analytic in-order
dual-issue model: an operation issues when its intra-task dependences
have completed and an issue slot is free (``issue_width`` per cycle);
compute operations complete ``latency`` cycles later, memory operations
complete when the memory system says so. Memory operations issue in
program order through the load/store queue — the paper's per-PU ordering
guarantee — at most one per cycle (each PU has one address calculation
unit).

The scheduler runs *between* memory operations; at each memory operation
it stops and reports the issue-ready time, so the global simulator can
interleave all PUs' memory traffic in true time order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.config import ProcessorConfig
from repro.hier.task import MemOp, OpKind, TaskProgram
from repro.mem.mshr import MSHRFile


@dataclass
class PUTaskTiming:
    """Scheduling state for one task execution attempt on one PU."""

    pu_id: int
    rank: int
    program: TaskProgram
    start_time: int
    config: ProcessorConfig
    mshrs: Optional[MSHRFile] = None

    op_index: int = 0
    completions: List[int] = field(default_factory=list)
    _last_issue: int = 0
    _slots_used: int = 0
    _last_mem_issue: int = -1
    #: Event-staleness guard: bumped when the attempt is squashed.
    epoch: int = 0

    def __post_init__(self) -> None:
        self.completions = [0] * len(self.program.ops)
        self._last_issue = self.start_time
        self._slots_used = 0
        self._last_mem_issue = self.start_time - 1

    # -- issue modeling ------------------------------------------------------

    def _ready_time(self, op: MemOp) -> int:
        ready = self.start_time
        for dep in op.depends_on:
            if 0 <= dep < self.op_index:
                ready = max(ready, self.completions[dep])
        return ready

    def _take_issue_slot(self, ready: int) -> int:
        """In-order ``issue_width``-per-cycle slot assignment."""
        cycle = max(ready, self._last_issue)
        if cycle == self._last_issue and self._slots_used >= self.config.issue_width:
            cycle += 1
        if cycle > self._last_issue:
            self._last_issue = cycle
            self._slots_used = 0
        self._slots_used += 1
        return cycle

    # -- scheduling ---------------------------------------------------------------

    def schedule_to_next_mem(self) -> Optional[Tuple[int, MemOp]]:
        """Schedule compute ops up to the next memory op.

        Returns ``(issue_ready_time, op)`` for the pending memory
        operation, or ``None`` when the task has no further memory ops
        (it then finishes at :meth:`done_time`).
        """
        ops = self.program.ops
        while self.op_index < len(ops):
            op = ops[self.op_index]
            ready = self._ready_time(op)
            if op.kind == OpKind.COMPUTE:
                issue = self._take_issue_slot(ready)
                self.completions[self.op_index] = issue + op.latency
                self.op_index += 1
                continue
            # Memory op: one per cycle, program order through the LSQ,
            # one cycle of address generation.
            issue = self._take_issue_slot(ready)
            issue = max(issue, self._last_mem_issue + 1)
            issue += self.config.timing.agen_cycles
            return issue, op
        return None

    def complete_mem(self, issue_time: int, end_time: int) -> None:
        """Record the pending memory op's completion and move past it."""
        self._last_mem_issue = issue_time
        self.completions[self.op_index] = end_time
        self.op_index += 1

    def defer_mem(self, until: int) -> None:
        """Push the pending memory op's issue time forward (stall)."""
        self._last_mem_issue = max(self._last_mem_issue, until - 1)

    def done_time(self) -> int:
        """Completion time of the whole task (call when no mem pending)."""
        if not self.program.ops:
            return self.start_time
        return max(max(self.completions), self.start_time)

    def reset(self, new_start: int) -> None:
        """Squash recovery: restart the attempt from scratch."""
        self.epoch += 1
        self.op_index = 0
        self.completions = [0] * len(self.program.ops)
        self.start_time = new_start
        self._last_issue = new_start
        self._slots_used = 0
        self._last_mem_issue = new_start - 1
        if self.mshrs is not None:
            self.mshrs.flush()
