"""Per-PU pipeline timing: dual-issue scheduling and the LSQ.

Each PU schedules its task's operations with an analytic in-order
dual-issue model: an operation issues when its intra-task dependences
have completed and an issue slot is free (``issue_width`` per cycle);
compute operations complete ``latency`` cycles later, memory operations
complete when the memory system says so. Memory operations issue in
program order through the load/store queue — the paper's per-PU ordering
guarantee — at most one per cycle (each PU has one address calculation
unit).

The scheduler runs *between* memory operations; at each memory operation
it stops and reports the issue-ready time, so the global simulator can
interleave all PUs' memory traffic in true time order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.config import ProcessorConfig
from repro.hier.task import MemOp, OpKind, TaskProgram
from repro.mem.mshr import MSHRFile


@dataclass(slots=True)
class PUTaskTiming:
    """Scheduling state for one task execution attempt on one PU."""

    pu_id: int
    rank: int
    program: TaskProgram
    start_time: int
    config: ProcessorConfig
    mshrs: Optional[MSHRFile] = None

    op_index: int = 0
    completions: List[int] = field(default_factory=list)
    _last_issue: int = 0
    _slots_used: int = 0
    _last_mem_issue: int = -1
    #: Event-staleness guard: bumped when the attempt is squashed.
    epoch: int = 0

    def __post_init__(self) -> None:
        self.completions = [0] * len(self.program.ops)
        self._last_issue = self.start_time
        self._slots_used = 0
        self._last_mem_issue = self.start_time - 1

    # -- scheduling ---------------------------------------------------------------

    def schedule_to_next_mem(self) -> Optional[Tuple[int, MemOp]]:
        """Schedule compute ops up to the next memory op.

        Returns ``(issue_ready_time, op)`` for the pending memory
        operation, or ``None`` when the task has no further memory ops
        (it then finishes at :meth:`done_time`).

        An op's *ready* time is the latest completion of its intra-task
        dependences (clamped to the task start); its *issue* cycle is
        the first cycle at or after ready with one of the
        ``issue_width`` in-order slots free. This is the inner loop of
        the whole timing simulator, so the slot state lives in locals
        for the duration of the run and is written back only when the
        loop pauses at a memory op or the task ends.
        """
        ops = self.program.ops
        op_index = self.op_index
        n_ops = len(ops)
        completions = self.completions
        start_time = self.start_time
        last_issue = self._last_issue
        slots_used = self._slots_used
        issue_width = self.config.issue_width
        compute = OpKind.COMPUTE
        while op_index < n_ops:
            op = ops[op_index]
            ready = start_time
            for dep in op.depends_on:
                if 0 <= dep < op_index and completions[dep] > ready:
                    ready = completions[dep]
            # In-order issue_width-per-cycle slot assignment.
            if ready > last_issue:
                last_issue = ready
                slots_used = 1
            elif slots_used >= issue_width:
                last_issue += 1
                slots_used = 1
            else:
                slots_used += 1
            if op.kind == compute:
                completions[op_index] = last_issue + op.latency
                op_index += 1
                continue
            # Memory op: one per cycle, program order through the LSQ,
            # one cycle of address generation.
            self.op_index = op_index
            self._last_issue = last_issue
            self._slots_used = slots_used
            issue = last_issue
            if issue <= self._last_mem_issue:
                issue = self._last_mem_issue + 1
            return issue + self.config.timing.agen_cycles, op
        self.op_index = op_index
        self._last_issue = last_issue
        self._slots_used = slots_used
        return None

    def complete_mem(self, issue_time: int, end_time: int) -> None:
        """Record the pending memory op's completion and move past it."""
        self._last_mem_issue = issue_time
        self.completions[self.op_index] = end_time
        self.op_index += 1

    def defer_mem(self, until: int) -> None:
        """Push the pending memory op's issue time forward (stall)."""
        self._last_mem_issue = max(self._last_mem_issue, until - 1)

    def done_time(self) -> int:
        """Completion time of the whole task (call when no mem pending)."""
        if not self.program.ops:
            return self.start_time
        return max(max(self.completions), self.start_time)

    def reset(self, new_start: int) -> None:
        """Squash recovery: restart the attempt from scratch."""
        self.epoch += 1
        self.op_index = 0
        self.completions = [0] * len(self.program.ops)
        self.start_time = new_start
        self._last_issue = new_start
        self._slots_used = 0
        self._last_mem_issue = new_start - 1
        if self.mshrs is not None:
            self.mshrs.flush()
