"""Cycle-level multiscalar processor model (paper section 4.2).

An event-driven simulator of the paper's evaluation machine: 4 PUs, each
2-wide with a load/store queue that issues memory operations in program
order, a task sequencer with prediction and in-order head commit, and a
pluggable speculative memory system (SVC or ARB). Memory operations from
all PUs are interleaved in global time order, so the protocol observes
the same access order the cycles imply.

The model's purpose is the paper's: measuring how hit latency, bus
occupancy and squash behaviour shape IPC — not ISA-level fidelity.
DESIGN.md section 3 lists the simplifications.
"""

from repro.timing.simulator import TimingReport, TimingSimulator

__all__ = ["TimingReport", "TimingSimulator"]
