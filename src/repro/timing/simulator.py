"""Event-driven whole-processor timing simulation.

The simulator owns a global event heap keyed by cycle time; the only
globally-ordered events are memory operations (and task completion /
commit bookkeeping), because only memory interacts across PUs. Between
memory operations each PU schedules its compute instructions analytically
(:mod:`repro.timing.pu`), so simulation cost is O(ops), not O(cycles).

Task-level behaviour follows the hierarchical execution model: dispatch
in sequence order to free PUs, commit strictly in order from the head,
squash-to-tail on memory-dependence violations and on task
mispredictions (detected when the mispredicted task's predecessor
commits — the point at which the sequencer knows the correct successor).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import ProcessorConfig
from repro.common.errors import ReplacementStall, SimulationError
from repro.faults import FaultInjector, FaultPlan
from repro.hier.task import OpKind, TaskProgram
from repro.mem.mshr import MSHRFile
from repro.telemetry import MEM_OP, OCCUPANCY_EDGES, RUN
from repro.timing.pu import PUTaskTiming

#: Cycles to wait before retrying a structurally stalled memory op.
_STALL_RETRY = 8

#: Consecutive ReplacementStall retries on one PU before the watchdog
#: declares the run livelocked (nothing else is advancing the head, so
#: the stalled PU will never find an evictable way).
_WATCHDOG_STALL_STREAK = 200


@dataclass
class TimingReport:
    """Results of one timing run."""

    cycles: int
    committed_instructions: int
    committed_memory_ops: int
    violation_squashes: int
    misprediction_squashes: int
    replacement_stall_retries: int
    #: Memory operations actually issued, including re-executions of
    #: squashed attempts; the excess over committed_memory_ops is the
    #: wasted speculative work.
    executed_memory_ops: int = 0
    #: Cycles spent inside task commits. One cycle per task for the EC+
    #: designs' flash commit; the base design's eager writebacks make
    #: this the serial bottleneck of paper section 3.2.6.
    commit_cycles: int = 0
    memory_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.committed_instructions / self.cycles if self.cycles else 0.0

    @property
    def wasted_memory_ops(self) -> int:
        """Memory operations whose work was thrown away by squashes."""
        return max(0, self.executed_memory_ops - self.committed_memory_ops)

    def summary(self) -> str:
        """One-paragraph human-readable account of the run."""
        return (
            f"{self.committed_instructions} instructions in {self.cycles} "
            f"cycles (IPC {self.ipc:.2f}); miss ratio "
            f"{self.miss_ratio():.3f}, bus utilization "
            f"{self.bus_utilization():.3f}; squashes: "
            f"{self.violation_squashes} violation + "
            f"{self.misprediction_squashes} misprediction "
            f"({self.wasted_memory_ops} memory ops wasted); "
            f"{self.replacement_stall_retries} replacement-stall retries"
        )

    def bus_utilization(self) -> float:
        busy = self.memory_stats.get("bus_busy_cycles", 0)
        return min(1.0, busy / self.cycles) if self.cycles else 0.0

    def miss_ratio(self) -> float:
        accesses = self.memory_stats.get("loads", 0) + self.memory_stats.get(
            "stores", 0
        )
        if accesses == 0:
            return 0.0
        return self.memory_stats.get("memory_supplies", 0) / accesses


class TimingSimulator:
    """Runs a task list through a memory system, cycle-accurately."""

    def __init__(
        self,
        system,
        tasks: List[TaskProgram],
        processor: Optional[ProcessorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.system = system
        self._fault_injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        if self._fault_injector is not None:
            self._fault_injector.install(system)
            tasks = self._fault_injector.mark_mispredicted(tasks)
            self._mshr_rng = self._fault_injector.plan.rng("mshr")
            self._bus_rng = self._fault_injector.plan.rng("bus")
        self.tasks = tasks
        self.processor = processor if processor is not None else ProcessorConfig(
            n_pus=system.n_units
        )
        if self.processor.n_pus != system.n_units:
            raise SimulationError(
                "processor PU count must match the memory system's units"
            )
        self._events: List = []
        self._seq = 0
        self._states: Dict[int, Optional[PUTaskTiming]] = {
            pu: None for pu in range(self.processor.n_pus)
        }
        self._rank_to_pu: Dict[int, int] = {}
        self._done_at: Dict[int, int] = {}
        self._committed: List[bool] = [False] * len(tasks)
        #: First rank not yet committed; commits are in-order and final,
        #: so the pointer only advances (amortized-O(1) head lookup).
        self._head_ptr = 0
        self._next_dispatch = 0
        self._mispredict_pending: Dict[int, bool] = {
            rank: t.mispredicted for rank, t in enumerate(tasks) if t.mispredicted
        }
        self._violations = 0
        self._mispredictions = 0
        self._stall_retries = 0
        self._executed_memory_ops = 0
        self._commit_cycles = 0
        self._last_commit_end = 0
        #: Bound once: line-address math runs once per miss, and amap may
        #: be a property on the system.
        self._line_address = system.amap.line_address
        per_unit = getattr(system, "mshrs_per_unit", 8)
        combining = getattr(system, "mshr_combining", 4)
        self._mshrs = {
            pu: MSHRFile(per_unit, combining) for pu in range(self.processor.n_pus)
        }
        #: Consecutive ReplacementStall retries per PU (watchdog input).
        self._stall_streak: Dict[int, int] = {
            pu: 0 for pu in range(self.processor.n_pus)
        }
        #: Stall fast-forward state (plain loop only). A stalled PU polls
        #: every ``_STALL_RETRY`` cycles, but its probe outcome can only
        #: change after something frees capacity: a commit or squash
        #: (counted by ``_progress_token``) or another PU's bus
        #: transaction (which advances ``SnoopingBus.free_at``). While
        #: both watermarks are unchanged since the last *real* failed
        #: probe, retries are skipped without re-entering the protocol —
        #: the retry accounting (retry count, streak, watchdog, and the
        #: stat the probe itself would bump) is replicated exactly, so
        #: reports, stats and event streams are byte-identical.
        self._bus = getattr(system, "bus", None)
        self._progress_token = 0
        self._stall_probe: Dict[int, Tuple[int, int]] = {}
        self._stall_exc: Dict[int, ReplacementStall] = {}
        #: Stat keys a deterministically-failing retry probe bumps
        #: before raising (``{"load": (...), "store": (...)}`` — the SVC
        #: counts the attempt as a load/store miss, the ARB as a
        #: load/store plus ``arb_full_stalls``); the skip path mirrors
        #: them so accounting stays exact. Systems that do not declare
        #: the contract never fast-forward — every retry re-probes.
        self._stall_probe_stats = getattr(system, "STALL_PROBE_COUNTERS", None)
        #: Telemetry, resolved once at wiring time from the system (the
        #: system already applied :func:`repro.telemetry.wired`), so the
        #: memory-event hot path pays a single ``is not None`` check.
        self._telemetry = getattr(system, "telemetry", None)
        self._tel_mshr = None
        self._tel_tracer = None
        self._mshr_occ = None
        #: Suppressed-root countdown (see ``Tracer.skip_roots``): when
        #: the tracer samples MEM_OP roots 1-in-N, the memory-event hot
        #: path pays one integer decrement per sampled-out op and
        #: batch-syncs the tracer's slot counter at the next kept root,
        #: keeping the cadence identical to per-op ``take_root`` calls.
        self._sample_window = 0
        self._root_countdown = 0
        self._suppressed_pending = 0
        if self._telemetry is not None:
            tracer = self._telemetry.tracer
            self._tel_tracer = tracer
            if tracer.sample_interval > 1 and MEM_OP in tracer.sample_kinds:
                self._sample_window = tracer.sample_interval - 1
            self._tel_mshr = self._telemetry.histogram(
                "mshr.occupancy", OCCUPANCY_EDGES, unit="entries"
            )
            #: Batched occupancy counts (index = in-flight MSHRs): the
            #: hot path pays one list increment per memory op instead of
            #: a histogram call; the flush hook drains the batch before
            #: any snapshot, so the metric stays exact.
            self._mshr_occ = [0] * (per_unit + 1)
            self._telemetry.on_snapshot(self._flush_mshr_occupancy)

    def _flush_mshr_occupancy(self) -> None:
        """Drain the batched MSHR occupancy counts into the histogram
        (idempotent: counts are zeroed as they flush)."""
        occ = self._mshr_occ
        if occ is None:
            return
        hist = self._tel_mshr
        for value, count in enumerate(occ):
            if count:
                hist.observe_many(value, count)
                occ[value] = 0

    # -- event plumbing ---------------------------------------------------------

    def _push(self, time: int, kind: str, pu: int, epoch: int) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time, self._seq, kind, pu, epoch))

    def _schedule_fast(self, pu: int, time: int, state) -> None:
        """``_schedule`` with the state already in hand (hot path)."""
        pending = state.schedule_to_next_mem()
        if pending is None:
            done = state.done_time()
            if done < time:
                done = time
            self._seq += 1
            heapq.heappush(self._events, (done, self._seq, "done", pu, state.epoch))
        else:
            issue, _op = pending
            if issue < time:
                issue = time
            self._seq += 1
            heapq.heappush(self._events, (issue, self._seq, "mem", pu, state.epoch))

    def _dispatch(self, pu: int, time: int) -> None:
        if self._next_dispatch >= len(self.tasks):
            return
        rank = self._next_dispatch
        self._next_dispatch += 1
        start = time + self.processor.timing.task_dispatch_cycles
        self._begin_task_recorded(pu, rank)
        state = PUTaskTiming(
            pu_id=pu,
            rank=rank,
            program=self.tasks[rank],
            start_time=start,
            config=self.processor,
            mshrs=self._mshrs[pu],
        )
        self._states[pu] = state
        self._rank_to_pu[rank] = pu
        self._schedule(pu, start)

    def _begin_task_recorded(self, pu: int, rank: int) -> None:
        """``system.begin_task`` with telemetry re-attached: task-begin
        instants are always recorded, never sampled, so the detached
        run-wide wiring is restored around this one call."""
        telemetry = self._telemetry
        if telemetry is None:
            self.system.begin_task(pu, rank)
            return
        prev = self.system.telemetry
        self.system.telemetry = telemetry
        try:
            self.system.begin_task(pu, rank)
        finally:
            self.system.telemetry = prev

    def _schedule(self, pu: int, time: int) -> None:
        self._schedule_fast(pu, time, self._states[pu])

    # -- squash handling -----------------------------------------------------------

    def _restart_squashed(self, squashed_ranks: List[int], now: int) -> None:
        """Re-dispatch squashed (but still assigned) tasks on their PUs."""
        restart = now + self.processor.timing.squash_restart_cycles
        self._progress_token += 1  # squashes free capacity: re-probe stalls
        for rank in sorted(squashed_ranks):
            pu = self._rank_to_pu[rank]
            state = self._states[pu]
            state.reset(restart)
            self._done_at.pop(rank, None)
            self._stall_streak[pu] = 0
            self._begin_task_recorded(pu, rank)
            self._schedule(pu, restart)

    def _stall_report(self, stuck_pu: int, stall: ReplacementStall, now: int) -> str:
        """Per-PU stall diagnostics for a watchdog-detected livelock."""
        lines = [
            f"PU {stuck_pu} retried a replacement stall "
            f"{self._stall_streak[stuck_pu]} times (cache "
            f"{stall.cache_id}, line {stall.line_addr:#x}) with no "
            f"intervening progress at cycle {now}; per-PU state:"
        ]
        for pu in range(self.processor.n_pus):
            state = self._states[pu]
            if state is None:
                lines.append(f"  pu {pu}: idle")
                continue
            lines.append(
                f"  pu {pu}: rank {state.rank} op {state.op_index}/"
                f"{len(state.program.ops)} stall_streak="
                f"{self._stall_streak[pu]}"
            )
        return "\n".join(lines)

    # -- memory events ----------------------------------------------------------------

    def _handle_mem(self, pu: int, now: int) -> None:
        state = self._states[pu]
        op = state.program.ops[state.op_index]
        mshrs = self._mshrs[pu]
        if mshrs._entries:
            mshrs.pop_ready(now)
            if len(mshrs._entries) >= mshrs.n_entries:
                retry = max(mshrs.earliest_ready() or now, now + 1)
                state.defer_mem(retry)
                self._schedule_fast(pu, retry, state)
                return
        if self._fault_injector is not None:
            plan = self._fault_injector.plan
            if plan.mshr_saturation and self._mshr_rng.random() < plan.mshr_saturation:
                # Injected structural hazard: the MSHR file behaves as
                # full for this attempt; retry like a real saturation.
                retry = now + _STALL_RETRY
                state.defer_mem(retry)
                self._schedule(pu, retry)
                return
            if (
                plan.bus_saturation
                and hasattr(self.system, "bus")
                and self._bus_rng.random() < plan.bus_saturation
            ):
                # Injected contention: a competing agent occupies the bus
                # first, so this PU's transaction queues behind it.
                self.system.bus.reserve(
                    now, "fault", None, self.system.amap.line_address(op.addr)
                )
        telemetry = self._telemetry
        span = None
        rewired = False
        prev = None
        if telemetry is not None:
            # len() of the MSHR dict directly: this per-op increment is
            # the cost of keeping the occupancy metric exact, so it
            # skips the ``in_flight()`` call wrapper.
            self._mshr_occ[len(mshrs._entries)] += 1
            # Cooperative root sampling: ``run()`` detached the
            # system's telemetry reference for the whole run, so a
            # sampled-out op pays only this countdown decrement. A kept
            # root syncs the batched slot count into the tracer,
            # re-attaches the telemetry for the op's duration, and
            # every protocol layer below records its subtree as usual.
            countdown = self._root_countdown
            if countdown:
                self._root_countdown = countdown - 1
                self._suppressed_pending += 1
            else:
                pending = self._suppressed_pending
                if pending:
                    self._suppressed_pending = 0
                    self._tel_tracer.skip_roots(MEM_OP, pending)
                self._root_countdown = self._sample_window
                rewired = True
                prev = self.system.telemetry
                self.system.telemetry = telemetry
                span = telemetry.begin(
                    MEM_OP,
                    f"{'load' if op.kind == OpKind.LOAD else 'store'} "
                    f"{op.addr:#x}",
                    pu=pu,
                    rank=state.rank,
                    addr=op.addr,
                    cycle=now,
                )
        try:
            try:
                if op.kind == OpKind.LOAD:
                    result = self.system.load(pu, op.addr, op.size, now=now)
                    end = result.end_cycle
                else:
                    result = self.system.store(
                        pu, op.addr, op.value, op.size, now=now
                    )
                    # Stores retire into the store buffer; dependents
                    # (none, by construction) would see them a cycle
                    # later.
                    end = now + 1
            except ReplacementStall as stall:
                if span is not None:
                    telemetry.end(span, stalled=True)
                self._stall_retries += 1
                self._stall_streak[pu] += 1
                if self._stall_streak[pu] > _WATCHDOG_STALL_STREAK:
                    raise SimulationError(self._stall_report(pu, stall, now))
                state.defer_mem(now + _STALL_RETRY)
                self._schedule_fast(pu, now + _STALL_RETRY, state)
                return
            if span is not None:
                telemetry.end(span, hit=result.hit, end_cycle=end)
            if self._stall_streak[pu]:
                self._stall_streak[pu] = 0
            self._executed_memory_ops += 1
            if not result.hit:
                line_addr = self.system.amap.line_address(op.addr)
                mshrs.allocate(line_addr, state.op_index, result.end_cycle)
            state.complete_mem(now, end)
            squashed = result.squashed_ranks
            if squashed:
                self._violations += 1
                self._restart_squashed(squashed, now)
            self._schedule_fast(pu, now, state)
        finally:
            if rewired:
                self.system.telemetry = prev

    # -- commit machinery -----------------------------------------------------------------

    def _head_rank(self) -> Optional[int]:
        committed = self._committed
        head = self._head_ptr
        while head < len(committed) and committed[head]:
            head += 1
        self._head_ptr = head
        return head if head < len(committed) else None

    def _try_commits(self, now: int) -> None:
        """Commit-wave spans (COMMIT, WB_DRAIN, misprediction SQUASH)
        are always recorded, so the detached run-wide telemetry wiring
        is restored for the whole wave."""
        telemetry = self._telemetry
        if telemetry is None:
            self._try_commits_impl(now)
            return
        prev = self.system.telemetry
        self.system.telemetry = telemetry
        try:
            self._try_commits_impl(now)
        finally:
            self.system.telemetry = prev

    def _try_commits_impl(self, now: int) -> None:
        while True:
            head = self._head_rank()
            if head is None or head not in self._done_at:
                return
            pu = self._rank_to_pu[head]
            commit_start = max(now, self._done_at[head])
            end = self.system.commit_head(pu, now=commit_start)
            self._commit_cycles += max(0, end - commit_start)
            self._committed[head] = True
            self._progress_token += 1  # commits free capacity: re-probe stalls
            self._last_commit_end = max(self._last_commit_end, end)
            self._states[pu] = None
            del self._rank_to_pu[head]
            self._mshrs[pu].flush()
            # A commit frees replacement capacity everywhere.
            for unit in self._stall_streak:
                self._stall_streak[unit] = 0

            # Misprediction detection: committing task ``head`` reveals
            # whether its successor was the right task to dispatch.
            successor = head + 1
            if self._mispredict_pending.pop(successor, False):
                if successor in self._rank_to_pu:
                    self._mispredictions += 1
                    squashed = self.system.squash_from_rank(
                        successor, reason="misprediction"
                    )
                    self._restart_squashed(squashed, end)
            self._dispatch(pu, end)
            now = end

    def _run_loop_plain(self, limit: int) -> None:
        """The event loop fused with :meth:`_handle_mem_plain` for the
        common configuration (no telemetry, no fault injector): event
        dispatch, the memory handler, and rescheduling run as one code
        path with the hot state in locals. Behaviour is identical to
        the generic loop in :meth:`_run_impl`; the shared event
        sequence counter stays on ``self`` so pushes from the cold
        paths (dispatch, squash restart, commit waves) interleave in
        exactly the same FIFO order."""
        events = self._events
        states = self._states
        mshr_files = self._mshrs
        stall_streak = self._stall_streak
        stall_probe = self._stall_probe
        done_at = self._done_at
        bus = self._bus
        stats_add = self.system.stats.add
        heappop = heapq.heappop
        heappush = heapq.heappush
        sys_load = self.system.load
        sys_store = self.system.store
        line_address = self._line_address
        LOAD = OpKind.LOAD
        executed = 0
        guard = 0
        try:
            while events:
                guard += 1
                if guard > limit:
                    raise SimulationError(
                        "timing simulation exceeded event budget"
                    )
                now, _seq, kind, pu, epoch = heappop(events)
                state = states[pu]
                if state is None or state.epoch != epoch:
                    continue  # stale event from a squashed attempt
                if kind == "mem":
                    op = state.program.ops[state.op_index]
                    mshrs = mshr_files[pu]
                    if mshrs._entries:
                        mshrs.pop_ready(now)
                        if len(mshrs._entries) >= mshrs.n_entries:
                            retry = max(mshrs.earliest_ready() or now, now + 1)
                            state.defer_mem(retry)
                            self._schedule_fast(pu, retry, state)
                            continue
                    if stall_streak[pu]:
                        # Stall fast-forward: while no commit, squash, or
                        # bus transaction has happened since the last real
                        # failed probe, the probe would deterministically
                        # raise again — skip it and replicate its exact
                        # accounting instead.
                        probe = stall_probe.get(pu)
                        if probe is not None and probe == (
                            self._progress_token,
                            bus.free_at if bus is not None else 0,
                        ):
                            self._stall_retries += 1
                            streak = stall_streak[pu] + 1
                            stall_streak[pu] = streak
                            if streak > _WATCHDOG_STALL_STREAK:
                                raise SimulationError(
                                    self._stall_report(
                                        pu, self._stall_exc[pu], now
                                    )
                                )
                            for key in self._stall_probe_stats[
                                "load" if op.kind == LOAD else "store"
                            ]:
                                stats_add(key)
                            state.defer_mem(now + _STALL_RETRY)
                            self._schedule_fast(
                                pu, now + _STALL_RETRY, state
                            )
                            continue
                    try:
                        if op.kind == LOAD:
                            result = sys_load(pu, op.addr, op.size, now=now)
                            end = result.end_cycle
                        else:
                            result = sys_store(
                                pu, op.addr, op.value, op.size, now=now
                            )
                            end = now + 1
                    except ReplacementStall as stall:
                        self._stall_retries += 1
                        stall_streak[pu] += 1
                        if stall_streak[pu] > _WATCHDOG_STALL_STREAK:
                            raise SimulationError(
                                self._stall_report(pu, stall, now)
                            )
                        # Record the capacity watermark this probe failed
                        # under; retries under the same watermark are
                        # fast-forwarded without re-probing (only when the
                        # system declares its probe accounting contract).
                        if self._stall_probe_stats is not None:
                            stall_probe[pu] = (
                                self._progress_token,
                                bus.free_at if bus is not None else 0,
                            )
                            self._stall_exc[pu] = stall
                        state.defer_mem(now + _STALL_RETRY)
                        self._schedule_fast(pu, now + _STALL_RETRY, state)
                        continue
                    if stall_streak[pu]:
                        stall_streak[pu] = 0
                    executed += 1
                    if not result.hit:
                        mshrs.allocate(
                            line_address(op.addr), state.op_index,
                            result.end_cycle,
                        )
                    # state.complete_mem(now, end), inlined:
                    state._last_mem_issue = now
                    state.completions[state.op_index] = end
                    state.op_index += 1
                    squashed = result.squashed_ranks
                    if squashed:
                        self._violations += 1
                        self._restart_squashed(squashed, now)
                    # self._schedule_fast(pu, now, state), inlined:
                    pending = state.schedule_to_next_mem()
                    if pending is None:
                        done = state.done_time()
                        if done < now:
                            done = now
                        self._seq += 1
                        heappush(
                            events, (done, self._seq, "done", pu, state.epoch)
                        )
                    else:
                        issue = pending[0]
                        if issue < now:
                            issue = now
                        self._seq += 1
                        heappush(
                            events, (issue, self._seq, "mem", pu, state.epoch)
                        )
                elif kind == "done":
                    done_at[state.rank] = now
                    self._try_commits_impl(now)
        finally:
            self._executed_memory_ops += executed

    # -- main loop ----------------------------------------------------------------------------

    def run(self) -> TimingReport:
        telemetry = self._telemetry
        if telemetry is None:
            return self._run_impl()
        span = telemetry.begin(
            RUN,
            "timing run",
            tasks=len(self.tasks),
            pus=self.processor.n_pus,
        )
        # Inverted wiring: the system's telemetry reference stays
        # detached for the whole run and is re-attached only around the
        # always-recorded sections (commits, task dispatch, squash
        # restarts) and around kept mem-op roots — so a sampled-out
        # memory op pays nothing beyond the sampling counter itself.
        # Metric handles captured at wiring time (bus wait/occupancy,
        # VCL snoop shape, MSHR occupancy) keep observing throughout,
        # so metrics stay exact; only spans and instants routed through
        # the detached reference are sampled.
        self.system.telemetry = None
        try:
            report = self._run_impl()
        finally:
            self.system.telemetry = telemetry
            # Closes the span and any descendants a raise left open.
            telemetry.end(span)
            # Sync outstanding suppressed-root slots so the tracer's
            # sampling counter is exact if this tracer is reused.
            pending = self._suppressed_pending
            if pending:
                self._suppressed_pending = 0
                self._tel_tracer.skip_roots(MEM_OP, pending)
            # Drain every batched-metric accumulator (this simulator's
            # MSHR occupancy, the VCL's snoop shape) so callers reading
            # metrics without snapshotting still see exact counts.
            telemetry.flush()
        telemetry.end(
            span,
            cycles=report.cycles,
            committed_instructions=report.committed_instructions,
            violation_squashes=report.violation_squashes,
            misprediction_squashes=report.misprediction_squashes,
        )
        return report

    def _run_impl(self) -> TimingReport:
        for pu in range(self.processor.n_pus):
            self._dispatch(pu, pu)  # sequencer dispatches one task per cycle
        limit = 200 * (sum(len(t.ops) + 4 for t in self.tasks) + 100)
        if self._telemetry is None and self._fault_injector is None:
            self._run_loop_plain(limit)
        else:
            guard = 0
            events = self._events
            states = self._states
            heappop = heapq.heappop
            handle_mem = self._handle_mem
            while events:
                guard += 1
                if guard > limit:
                    raise SimulationError(
                        "timing simulation exceeded event budget"
                    )
                time, _seq, kind, pu, epoch = heappop(events)
                state = states[pu]
                if state is None or state.epoch != epoch:
                    continue  # stale event from a squashed attempt
                if kind == "mem":
                    handle_mem(pu, time)
                elif kind == "done":
                    self._done_at[state.rank] = time
                    self._try_commits(time)
        if not all(self._committed):
            raise SimulationError("timing run ended with uncommitted tasks")
        self.system.drain()

        committed_instructions = sum(len(t.ops) for t in self.tasks)
        committed_memory = sum(len(t.memory_ops) for t in self.tasks)
        return TimingReport(
            cycles=max(self._last_commit_end, 1),
            committed_instructions=committed_instructions,
            committed_memory_ops=committed_memory,
            violation_squashes=self._violations,
            misprediction_squashes=self._mispredictions,
            replacement_stall_retries=self._stall_retries,
            executed_memory_ops=self._executed_memory_ops,
            commit_cycles=self._commit_cycles,
            memory_stats=self.system.stats.snapshot(),
        )
