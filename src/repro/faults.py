"""Fault-injection subsystem (``repro.faults``).

A :class:`FaultPlan` is a *declarative, seeded* description of adverse
scenarios to force on a run: mispredict squashes at chosen ranks and
op indices, random squash storms, adversarial replacement-victim
selection (conflict pressure without changing the configuration),
delayed writebacks, and MSHR/bus-occupancy saturation in the timing
model. The functional driver (:mod:`repro.hier.driver`) and the timing
simulator (:mod:`repro.timing.simulator`) consult the plan at their
decision points; the protocol code itself never sees it.

Plans are plain data: JSON-serializable (``to_dict``/``from_dict``) so a
:class:`repro.replay.FailureCapture` can replay a faulted run
byte-for-byte, and seeded through :func:`repro.common.rng.make_rng` so
two consumers (driver squashes, victim bias) never share a random
stream.

Design intent, per the robustness north star: the paper's protocol is
only exercised on the paths a benign workload happens to take; a fault
plan *steers* runs into squash recovery, VOL repair, replacement stalls
and resource exhaustion on purpose, with the invariant checker
(:mod:`repro.check`) watching every step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


@dataclass(frozen=True)
class FaultPlan:
    """One reproducible set of injected faults.

    Fields consumed by the functional driver:

    * ``squash_rate`` — per-scheduler-step probability of squashing a
      random non-head active task (misprediction storm).
    * ``squash_at`` — forced squashes: ``(rank, op_index)`` pairs; the
      task is squashed the first time it is about to execute its
      ``op_index``-th memory operation. Targets the exact VOL states a
      random storm only sometimes reaches.
    * ``adversarial_victims`` — bias replacement-victim selection toward
      the most-recently-used evictable way instead of LRU, maximizing
      conflict churn and replacement stalls at a fixed associativity.

    Fields consumed by the timing simulator (in addition to the above
    victim bias):

    * ``mispredict_ranks`` — tasks dispatched as mispredicted; the
      sequencer squashes them when their predecessor commits.
    * ``mshr_saturation`` — probability that a memory event finds its
      PU's MSHR file artificially saturated and must retry.
    * ``bus_saturation`` — probability that a memory operation first
      pays for a dummy bus occupant (a contending agent's transaction).

    Consumed by the bus itself:

    * ``delayed_writebacks`` — extra cycles added to every WBACK
      transaction (a slow next-level memory path), stretching the window
      in which committed state lingers in the caches.
    """

    seed: int = 0
    squash_rate: float = 0.0
    squash_at: Tuple[Tuple[int, int], ...] = ()
    adversarial_victims: bool = False
    mispredict_ranks: Tuple[int, ...] = ()
    mshr_saturation: float = 0.0
    bus_saturation: float = 0.0
    delayed_writebacks: int = 0

    def __post_init__(self) -> None:
        for name in ("squash_rate", "mshr_saturation", "bus_saturation"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value}")
        if self.delayed_writebacks < 0:
            raise ConfigError("delayed_writebacks must be non-negative")

    @property
    def is_noop(self) -> bool:
        return self == FaultPlan(seed=self.seed)

    def rng(self, stream: str) -> random.Random:
        """A named child stream of the plan's seed (stable per consumer)."""
        return make_rng(self.seed, f"faults:{stream}")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "squash_rate": self.squash_rate,
            "squash_at": [list(pair) for pair in self.squash_at],
            "adversarial_victims": self.adversarial_victims,
            "mispredict_ranks": list(self.mispredict_ranks),
            "mshr_saturation": self.mshr_saturation,
            "bus_saturation": self.bus_saturation,
            "delayed_writebacks": self.delayed_writebacks,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            seed=data.get("seed", 0),
            squash_rate=data.get("squash_rate", 0.0),
            squash_at=tuple(
                (int(rank), int(op)) for rank, op in data.get("squash_at", [])
            ),
            adversarial_victims=data.get("adversarial_victims", False),
            mispredict_ranks=tuple(data.get("mispredict_ranks", [])),
            mshr_saturation=data.get("mshr_saturation", 0.0),
            bus_saturation=data.get("bus_saturation", 0.0),
            delayed_writebacks=data.get("delayed_writebacks", 0),
        )

    def describe(self) -> str:
        parts = []
        if self.squash_rate:
            parts.append(f"squash_rate={self.squash_rate}")
        if self.squash_at:
            parts.append(f"squash_at={list(self.squash_at)}")
        if self.adversarial_victims:
            parts.append("adversarial_victims")
        if self.mispredict_ranks:
            parts.append(f"mispredict_ranks={list(self.mispredict_ranks)}")
        if self.mshr_saturation:
            parts.append(f"mshr_saturation={self.mshr_saturation}")
        if self.bus_saturation:
            parts.append(f"bus_saturation={self.bus_saturation}")
        if self.delayed_writebacks:
            parts.append(f"delayed_writebacks={self.delayed_writebacks}")
        return f"FaultPlan(seed={self.seed}: " + (", ".join(parts) or "no-op") + ")"

    # -- shrinking support (repro.replay) -----------------------------------

    def weakenings(self) -> List["FaultPlan"]:
        """Strictly weaker variants of this plan, for greedy shrinking:
        each drops one fault dimension (or one forced squash) entirely."""
        weaker: List[FaultPlan] = []
        if self.squash_rate:
            weaker.append(replace(self, squash_rate=0.0))
        for index in range(len(self.squash_at)):
            trimmed = self.squash_at[:index] + self.squash_at[index + 1 :]
            weaker.append(replace(self, squash_at=trimmed))
        if self.adversarial_victims:
            weaker.append(replace(self, adversarial_victims=False))
        if self.mispredict_ranks:
            weaker.append(replace(self, mispredict_ranks=()))
        if self.mshr_saturation:
            weaker.append(replace(self, mshr_saturation=0.0))
        if self.bus_saturation:
            weaker.append(replace(self, bus_saturation=0.0))
        if self.delayed_writebacks:
            weaker.append(replace(self, delayed_writebacks=0))
        return weaker

    def drop_rank(self, rank: int) -> "FaultPlan":
        """The plan after task ``rank`` is removed from the program:
        entries for the rank vanish, later ranks shift down by one."""
        return replace(
            self,
            squash_at=tuple(
                (r - 1 if r > rank else r, op)
                for r, op in self.squash_at
                if r != rank
            ),
            mispredict_ranks=tuple(
                r - 1 if r > rank else r
                for r in self.mispredict_ranks
                if r != rank
            ),
        )


def random_fault_plan(
    seed: int,
    n_tasks: int,
    max_ops: int,
    allow_squashes: bool = True,
) -> FaultPlan:
    """A randomized but reproducible plan for stress sweeps.

    ``allow_squashes`` is cleared for the EC design, which assumes no
    squashes (paper section 3.4).
    """
    rng = make_rng(seed, "faults:plan")
    squash_at: List[Tuple[int, int]] = []
    if allow_squashes and n_tasks > 1:
        for _ in range(rng.randint(0, 2)):
            squash_at.append(
                (rng.randint(1, n_tasks - 1), rng.randint(0, max(0, max_ops - 1)))
            )
    return FaultPlan(
        seed=seed,
        squash_rate=rng.choice([0.0, 0.05, 0.15]) if allow_squashes else 0.0,
        squash_at=tuple(sorted(set(squash_at))),
        adversarial_victims=rng.random() < 0.5,
        delayed_writebacks=rng.choice([0, 0, 2]),
    )


class FaultInjector:
    """Runtime companion of a :class:`FaultPlan` for one run.

    Owns the plan's random streams and the one-shot bookkeeping for
    forced squashes, so a driver consults simple methods at its decision
    points. Constructing an injector is the only stateful step; the plan
    itself stays immutable and serializable.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._squash_rng = plan.rng("squash")
        self._pending_squash_at = set(plan.squash_at)

    def wants_random_squash(self) -> bool:
        return (
            self.plan.squash_rate > 0
            and self._squash_rng.random() < self.plan.squash_rate
        )

    def forced_squash(self, rank: int, op_index: int) -> bool:
        """True exactly once when task ``rank`` reaches ``op_index``."""
        key = (rank, op_index)
        if key in self._pending_squash_at:
            self._pending_squash_at.remove(key)
            return True
        return False

    def install(self, system) -> None:
        """Apply the system-side fault hooks: victim bias on every SVC
        cache and writeback delay on the bus. No-ops for systems without
        the corresponding structures (e.g. the ARB has no snooping bus)."""
        if self.plan.adversarial_victims and hasattr(system, "caches"):
            for cache in system.caches:
                if hasattr(cache, "victim_bias_rng"):
                    cache.victim_bias_rng = self.plan.rng(
                        f"victims:{cache.cache_id}"
                    )
        if self.plan.delayed_writebacks and hasattr(system, "bus"):
            system.bus.fault_extra_cycles = {
                "wback": self.plan.delayed_writebacks
            }

    def mark_mispredicted(self, tasks: List) -> List:
        """Copies of ``tasks`` with the plan's mispredict ranks flagged
        (the timing sequencer's squash trigger). The caller's list is
        left untouched."""
        if not self.plan.mispredict_ranks:
            return tasks
        marked = []
        targets = set(self.plan.mispredict_ranks)
        for rank, task in enumerate(tasks):
            if rank in targets and not task.mispredicted:
                task = replace_task_mispredicted(task)
            marked.append(task)
        return marked


def replace_task_mispredicted(task):
    """A shallow mispredicted copy of a TaskProgram."""
    from repro.hier.task import TaskProgram

    return TaskProgram(ops=list(task.ops), name=task.name, mispredicted=True)


__all__ = [
    "FaultPlan",
    "FaultInjector",
    "random_fault_plan",
    "replace_task_mispredicted",
]
