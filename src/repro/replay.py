"""Deterministic failure capture, replay and shrinking (``repro.replay``).

When a run fails — the invariant checker raises, the driver deadlocks,
or the sequential oracle disagrees with the committed execution — the
interesting artifact is not the stack trace but the *inputs*: design
tier, geometry, seed, task programs and fault plan. Everything else in
this repository is deterministic given those, so a
:class:`FailureCapture` holding exactly that data replays the failure
byte-for-byte, on any machine, with ``python -m repro replay``.

The second half is greedy shrinking: drop whole tasks, drop single
operations, weaken the fault plan — accepting each mutation only if the
shrunken case still fails *with the same signature* (same invariant
name, same error class, or still-mismatching oracle). Minimal
reproducers are what turn a 16-task fuzzing hit into a three-line bug
report.

The unit of work is a :class:`Case`: one self-contained functional run.
``tools/stress.py`` builds Cases for its sweeps and saves a capture on
the first failure; the property tests use :func:`run_case` directly.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.config import ARBConfig, CacheGeometry, SVCConfig
from repro.common.errors import (
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.faults import FaultPlan
from repro.hier.driver import DriverReport, SpeculativeExecutionDriver
from repro.hier.task import MemOp, TaskProgram
from repro.oracle.sequential import SequentialOracle, verify_run
from repro.svc.designs import DESIGNS, design_config

CAPTURE_FORMAT = 1

#: Designs a Case can name: the paper's six SVC tiers plus the ARB.
CASE_DESIGNS = tuple(DESIGNS) + ("arb",)


# -- task (de)serialization --------------------------------------------------


def op_to_dict(op: MemOp) -> Dict:
    data = {"kind": op.kind, "addr": op.addr, "size": op.size, "value": op.value}
    if op.latency != 1:
        data["latency"] = op.latency
    if op.depends_on:
        data["depends_on"] = list(op.depends_on)
    if op.value_deps:
        data["value_deps"] = list(op.value_deps)
    return data


def op_from_dict(data: Dict) -> MemOp:
    return MemOp(
        kind=data["kind"],
        addr=data.get("addr", 0),
        size=data.get("size", 4),
        value=data.get("value", 0),
        latency=data.get("latency", 1),
        depends_on=tuple(data.get("depends_on", [])),
        value_deps=tuple(data.get("value_deps", [])),
    )


def task_to_dict(task: TaskProgram) -> Dict:
    data: Dict = {"ops": [op_to_dict(op) for op in task.ops]}
    if task.name:
        data["name"] = task.name
    if task.mispredicted:
        data["mispredicted"] = True
    return data


def task_from_dict(data: Dict) -> TaskProgram:
    return TaskProgram(
        ops=[op_from_dict(op) for op in data["ops"]],
        name=data.get("name"),
        mispredicted=data.get("mispredicted", False),
    )


# -- the case ----------------------------------------------------------------


@dataclass(frozen=True)
class Case:
    """One self-contained functional run: everything needed to rebuild
    the system and drive it deterministically."""

    design: str = "final"
    seed: int = 0
    tasks: Tuple[TaskProgram, ...] = ()
    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    schedule: str = "random"
    squash_probability: float = 0.0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    checker: bool = True
    arb_rows: int = 32
    #: Caches/PUs to build (ARB: stages - 1). The hier driver dispatches
    #: over however many units the system reports, so this also bounds
    #: concurrency.
    n_caches: int = 4
    #: Per-access invariant auditing inside SVCSystem (expensive; the
    #: model checker turns it on, fuzzing leaves it to the event checker).
    check_invariants: bool = False
    #: An explicit schedule from repro.modelcheck: a tuple of
    #: ("op"|"commit", rank) actions replayed through ScheduleExecutor
    #: instead of the RNG-driven hier driver. None = use the driver.
    script: Optional[Tuple[Tuple[str, int], ...]] = None
    #: Name of a repro.modelcheck.mutations entry applied to the system
    #: after construction — how kill-switch counterexamples stay
    #: replayable from their capture file alone.
    mutation: Optional[str] = None
    #: Record telemetry (spans + metrics) during the replay. Serialized
    #: only when True, so existing capture files stay byte-identical.
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.design not in CASE_DESIGNS:
            raise ReproError(
                f"unknown design {self.design!r}; choose from {CASE_DESIGNS}"
            )

    def to_dict(self) -> Dict:
        data = {
            "design": self.design,
            "seed": self.seed,
            "tasks": [task_to_dict(t) for t in self.tasks],
            "geometry": {
                "size_bytes": self.geometry.size_bytes,
                "associativity": self.geometry.associativity,
                "line_size": self.geometry.line_size,
                "versioning_block_size": self.geometry.versioning_block_size,
            },
            "schedule": self.schedule,
            "squash_probability": self.squash_probability,
            "fault_plan": self.fault_plan.to_dict(),
            "checker": self.checker,
            "arb_rows": self.arb_rows,
            "n_caches": self.n_caches,
            "check_invariants": self.check_invariants,
        }
        if self.script is not None:
            data["script"] = [[kind, rank] for kind, rank in self.script]
        if self.mutation is not None:
            data["mutation"] = self.mutation
        if self.telemetry:
            data["telemetry"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Case":
        return cls(
            design=data["design"],
            seed=data.get("seed", 0),
            tasks=tuple(task_from_dict(t) for t in data.get("tasks", [])),
            geometry=CacheGeometry(**data.get("geometry", {})),
            schedule=data.get("schedule", "random"),
            squash_probability=data.get("squash_probability", 0.0),
            fault_plan=FaultPlan.from_dict(data.get("fault_plan", {})),
            checker=data.get("checker", True),
            arb_rows=data.get("arb_rows", 32),
            n_caches=data.get("n_caches", 4),
            check_invariants=data.get("check_invariants", False),
            script=(
                tuple((kind, rank) for kind, rank in data["script"])
                if data.get("script") is not None
                else None
            ),
            mutation=data.get("mutation"),
            telemetry=data.get("telemetry", False),
        )

    def describe(self) -> str:
        ops = sum(len(t.memory_ops) for t in self.tasks)
        schedule = (
            f"script[{len(self.script)}]" if self.script is not None
            else self.schedule
        )
        mutated = f", mutation={self.mutation}" if self.mutation else ""
        return (
            f"Case(design={self.design}, seed={self.seed}, "
            f"{len(self.tasks)} tasks / {ops} memory ops, "
            f"schedule={schedule}{mutated}, {self.fault_plan.describe()})"
        )


def build_system(case: Case):
    """Construct the memory system a Case describes, with the invariant
    checker bound when the case asks for it."""
    checker = None
    if case.checker:
        from repro.check import InvariantChecker

        checker = InvariantChecker()
    telemetry = None
    if case.telemetry:
        from repro.telemetry import Telemetry

        telemetry = Telemetry(label=f"replay:{case.design}")
    if case.design == "arb":
        from repro.arb.system import ARBSystem

        config = ARBConfig(
            n_rows=case.arb_rows,
            n_stages=case.n_caches + 1,
            cache_geometry=CacheGeometry(
                size_bytes=256, associativity=1, line_size=16
            ),
        )
        system = ARBSystem(config, checker=checker, telemetry=telemetry)
    else:
        from repro.svc.system import SVCSystem

        config = design_config(
            case.design,
            SVCConfig(
                geometry=case.geometry,
                n_caches=case.n_caches,
                check_invariants=case.check_invariants,
            ),
        )
        system = SVCSystem(config, checker=checker, telemetry=telemetry)
    if case.mutation is not None:
        from repro.modelcheck.mutations import MUTATIONS

        MUTATIONS[case.mutation].apply(system)
    return system


@dataclass
class CaseResult:
    """What one Case execution produced.

    A failure has a *signature* — ``("invariant", name)``,
    ``("protocol", type)``, ``("simulation", type)`` or
    ``("oracle", "mismatch")`` — which shrinking uses to ensure a
    reduced case still fails the same way, not merely *some* way.
    """

    ok: bool
    problems: List[str] = field(default_factory=list)
    error_kind: Optional[str] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    invariant: Optional[Dict] = None
    report: Optional[DriverReport] = None
    #: Telemetry payload when the Case asked for it — populated on every
    #: outcome, so a failing replay still yields a trace of the run up
    #: to (and including) the violation instant.
    telemetry: Optional[Dict] = None

    @property
    def signature(self) -> Optional[Tuple[str, str]]:
        if self.ok:
            return None
        if self.error_kind == "invariant":
            return ("invariant", self.invariant["invariant"])
        if self.error_kind is not None:
            return (self.error_kind, self.error_type)
        return ("oracle", "mismatch")

    def describe(self) -> str:
        if self.ok:
            return "ok"
        if self.error_kind is not None:
            return f"{self.error_kind} failure: {self.error_message}"
        return "oracle mismatch: " + "; ".join(self.problems)


def run_case(case: Case) -> CaseResult:
    """Execute a Case start to finish and classify the outcome.

    Structured failures (invariant violations, protocol errors,
    simulation deadlocks) are caught and wrapped; a passing run is still
    compared against the sequential oracle — the end-to-end correctness
    obligation the checker complements, not replaces.
    """
    system = build_system(case)
    tasks = list(case.tasks)

    def payload() -> Optional[Dict]:
        tel = getattr(system, "telemetry", None)
        return tel.snapshot() if tel is not None else None

    try:
        if case.script is not None:
            from repro.modelcheck.executor import run_script

            report = run_script(system, tasks, case.script)
        else:
            driver = SpeculativeExecutionDriver(
                system,
                tasks,
                seed=case.seed,
                squash_probability=case.squash_probability,
                schedule=case.schedule,
                fault_plan=None if case.fault_plan.is_noop else case.fault_plan,
            )
            report = driver.run()
    except InvariantViolation as exc:
        return CaseResult(
            ok=False,
            error_kind="invariant",
            error_type=type(exc).__name__,
            error_message=str(exc),
            invariant=exc.to_dict(),
            telemetry=payload(),
        )
    except SimulationError as exc:
        return CaseResult(
            ok=False,
            error_kind="simulation",
            error_type=type(exc).__name__,
            error_message=str(exc),
            telemetry=payload(),
        )
    except ProtocolError as exc:
        return CaseResult(
            ok=False,
            error_kind="protocol",
            error_type=type(exc).__name__,
            error_message=str(exc),
            telemetry=payload(),
        )
    oracle = SequentialOracle().run(tasks)
    problems = verify_run(report, oracle, system.memory)
    return CaseResult(
        ok=not problems, problems=problems, report=report, telemetry=payload()
    )


# -- capture -----------------------------------------------------------------


@dataclass
class FailureCapture:
    """A failing Case plus what went wrong — the self-contained JSON
    artifact ``python -m repro replay`` consumes."""

    case: Case
    failure: Dict

    @classmethod
    def from_result(cls, case: Case, result: CaseResult) -> "FailureCapture":
        if result.ok:
            raise ReproError("cannot capture a passing case")
        failure: Dict = {"signature": list(result.signature)}
        if result.error_kind is not None:
            failure.update(
                {
                    "kind": result.error_kind,
                    "type": result.error_type,
                    "message": result.error_message,
                }
            )
            if result.invariant is not None:
                failure["invariant"] = result.invariant
        else:
            failure.update({"kind": "oracle", "problems": result.problems})
        return cls(case=case, failure=failure)

    def to_dict(self) -> Dict:
        return {
            "format": CAPTURE_FORMAT,
            "case": self.case.to_dict(),
            "failure": self.failure,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FailureCapture":
        if data.get("format") != CAPTURE_FORMAT:
            raise ReproError(
                f"unsupported capture format {data.get('format')!r} "
                f"(this build reads format {CAPTURE_FORMAT})"
            )
        return cls(case=Case.from_dict(data["case"]), failure=data["failure"])

    def save(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "FailureCapture":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @property
    def signature(self) -> Tuple[str, str]:
        kind, name = self.failure["signature"]
        return (kind, name)


# -- shrinking ---------------------------------------------------------------


def _drop_op(task: TaskProgram, index: int) -> TaskProgram:
    """Remove the op at full-list ``index``, reindexing later ops'
    dependency references (which are full-list positions)."""

    def fix(deps: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(d - 1 if d > index else d for d in deps if d != index)

    ops = [
        dataclasses.replace(
            op, depends_on=fix(op.depends_on), value_deps=fix(op.value_deps)
        )
        for i, op in enumerate(task.ops)
        if i != index
    ]
    return TaskProgram(ops=ops, name=task.name, mispredicted=task.mispredicted)


def _memory_op_index(task: TaskProgram, full_index: int) -> Optional[int]:
    """Position of the op at ``full_index`` among the task's memory ops
    (the index space ``FaultPlan.squash_at`` uses), or None for compute."""
    position = 0
    for i, op in enumerate(task.ops):
        if op.kind == "compute":
            continue
        if i == full_index:
            return position
        position += 1
    return None


def _script_drop_rank(
    script: Optional[Tuple[Tuple[str, int], ...]], rank: int
) -> Optional[Tuple[Tuple[str, int], ...]]:
    """A schedule script with ``rank``'s actions removed and later ranks
    renumbered to match a task list that dropped ``rank``."""
    if script is None:
        return None
    return tuple(
        (kind, r - 1 if r > rank else r) for kind, r in script if r != rank
    )


def _shrink_candidates(case: Case) -> Iterator[Tuple[str, Case]]:
    """Strictly smaller variants of ``case``, most aggressive first."""
    # 1. Drop whole tasks, youngest first (later tasks are most often
    #    passengers; ranks stay contiguous, plan references shift).
    for rank in range(len(case.tasks) - 1, -1, -1):
        tasks = case.tasks[:rank] + case.tasks[rank + 1 :]
        yield (
            f"drop task {rank}",
            dataclasses.replace(
                case,
                tasks=tasks,
                fault_plan=case.fault_plan.drop_rank(rank),
                script=_script_drop_rank(case.script, rank),
            ),
        )
    # 2. Drop single ops, longest tasks first.
    order = sorted(
        range(len(case.tasks)), key=lambda r: -len(case.tasks[r].ops)
    )
    for rank in order:
        task = case.tasks[rank]
        for index in range(len(task.ops) - 1, -1, -1):
            plan = case.fault_plan
            mem_index = _memory_op_index(task, index)
            if mem_index is not None and plan.squash_at:
                plan = dataclasses.replace(
                    plan,
                    squash_at=tuple(
                        (r, op - 1 if r == rank and op > mem_index else op)
                        for r, op in plan.squash_at
                        if not (r == rank and op == mem_index)
                    ),
                )
            tasks = (
                case.tasks[:rank]
                + (_drop_op(task, index),)
                + case.tasks[rank + 1 :]
            )
            yield (
                f"drop task {rank} op {index}",
                dataclasses.replace(case, tasks=tasks, fault_plan=plan),
            )
    # 3. Drop single schedule actions (scripted cases replay leniently,
    #    so a script that no longer matches the ops still runs; the
    #    deterministic oldest-first completion picks up the slack).
    if case.script is not None:
        for index in range(len(case.script) - 1, -1, -1):
            script = case.script[:index] + case.script[index + 1 :]
            yield (
                f"drop script action {index}",
                dataclasses.replace(case, script=script),
            )
    # 4. Weaken the fault plan one dimension at a time.
    for plan in case.fault_plan.weakenings():
        yield ("weaken faults", dataclasses.replace(case, fault_plan=plan))


def shrink_case(
    case: Case,
    signature: Optional[Tuple[str, str]] = None,
    max_attempts: int = 2000,
    log=None,
) -> Tuple[Case, CaseResult]:
    """Greedily minimize a failing case.

    Each round tries every candidate mutation and restarts from the
    first one that still fails with ``signature`` (defaults to the
    case's own failure signature); stops when no mutation survives.
    Returns the minimal case and its result.
    """
    result = run_case(case)
    if result.ok:
        raise ReproError("shrink_case: the case does not fail")
    if signature is None:
        signature = result.signature
    elif result.signature != tuple(signature):
        raise ReproError(
            f"shrink_case: case fails with {result.signature}, "
            f"not the requested {tuple(signature)}"
        )
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for label, candidate in _shrink_candidates(case):
            attempts += 1
            if attempts >= max_attempts:
                break
            candidate_result = run_case(candidate)
            if not candidate_result.ok and candidate_result.signature == signature:
                if log is not None:
                    log(f"shrink: {label} -> {candidate.describe()}")
                case, result = candidate, candidate_result
                improved = True
                break
    return case, result


# -- CLI ---------------------------------------------------------------------


def build_parser():
    """Argument parser for ``python -m repro replay`` (exposed so
    tools/check_docs.py can validate commands quoted in the docs)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="Re-run a captured failure deterministically and "
        "optionally shrink it to a minimal reproducer.",
    )
    parser.add_argument("capture", help="path to a FailureCapture JSON file")
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="greedily minimize the case (drop tasks, ops, faults) while "
        "it keeps failing with the same signature",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the shrunken capture "
        "(default: <capture>.min.json)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="re-run with telemetry recording and write Chrome-trace + "
        "metrics JSON artifacts into DIR",
    )
    return parser


def replay_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro replay <capture.json> [--shrink] [--output F]``"""
    args = build_parser().parse_args(argv)

    try:
        capture = FailureCapture.load(args.capture)
    except OSError as exc:
        print(f"cannot read capture: {exc}")
        return 2
    except (json.JSONDecodeError, KeyError, ReproError) as exc:
        print(f"not a valid capture file: {exc}")
        return 2
    print(f"replaying {capture.case.describe()}")
    print(f"expected failure: {capture.failure['signature']}")
    case = capture.case
    if args.trace is not None:
        case = dataclasses.replace(case, telemetry=True)
    result = run_case(case)
    if args.trace is not None and result.telemetry is not None:
        from repro.telemetry.exporters import write_chrome_trace, write_metrics_json

        os.makedirs(args.trace, exist_ok=True)
        base = os.path.splitext(os.path.basename(args.capture))[0]
        meta = {"capture": args.capture, "design": case.design}
        trace_path = write_chrome_trace(
            os.path.join(args.trace, f"{base}.trace.json"),
            [result.telemetry],
            meta,
        )
        metrics_path = write_metrics_json(
            os.path.join(args.trace, f"{base}.metrics.json"),
            [result.telemetry],
            meta,
        )
        print(f"trace:   {trace_path}")
        print(f"metrics: {metrics_path}")
    if result.ok:
        print("NOT REPRODUCED: the case passes in this build")
        return 1
    print(f"reproduced: {result.describe()}")
    if result.signature != capture.signature:
        print(
            f"note: signature changed ({list(result.signature)} vs captured "
            f"{list(capture.signature)})"
        )

    if not args.shrink:
        return 0

    shrunk, shrunk_result = shrink_case(
        capture.case, signature=result.signature, log=print
    )
    print(f"minimal reproducer: {shrunk.describe()}")
    print(f"still fails: {shrunk_result.describe()}")
    output = args.output
    if output is None:
        base = args.capture[:-5] if args.capture.endswith(".json") else args.capture
        output = f"{base}.min.json"
    FailureCapture.from_result(shrunk, shrunk_result).save(output)
    print(f"wrote {output}")
    return 0


__all__ = [
    "CASE_DESIGNS",
    "Case",
    "CaseResult",
    "FailureCapture",
    "build_system",
    "replay_main",
    "run_case",
    "shrink_case",
]
