"""Runtime protocol invariant checker (``repro.check``).

Continuous, modular verification of the speculative memory systems, in
the spirit of RealityCheck's per-component checking: instead of waiting
for a wrong committed load value to surface at the end-to-end oracle, a
:class:`InvariantChecker` audits the distributed protocol state *after
every bus transaction, commit and squash* and raises
:class:`repro.common.errors.InvariantViolation` — a structured
diagnostic naming the rule, the line and the offending bits — the
moment an invariant breaks.

The checker plugs into the existing :class:`repro.common.events.EventLog`
stream as an observer, so the protocol code never mentions checkers and
the ``checker=None`` / ``event_log=None`` fast path is exactly as cheap
as before. Systems accept ``checker=`` at construction::

    checker = InvariantChecker()
    system = SVCSystem(config, checker=checker)   # event log auto-created

Checks are deliberately *non-mutating* and *repair-aware*: the SVC fixes
VOL pointers and T bits lazily, on each line's next bus request
(docs/PROTOCOL.md), so between requests a line may legitimately carry a
dangling pointer or a conservatively stale T bit. The checker therefore
verifies only the properties that must hold in every quiescent state —
the safe direction of each invariant. ``SVCSystem.verify()`` remains the
strict post-repair audit. The full catalogue, with paper citations,
lives in docs/INVARIANTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import InvariantViolation, ProtocolError
from repro.common.events import ProtocolEvent
from repro.telemetry import INVARIANT_VIOLATION

#: Event kinds that trigger a check, per system family.
_SVC_LINE_KINDS = frozenset({"bus"})
_SVC_SCAN_KINDS = frozenset({"commit", "squash", "begin_task"})
_ARB_SCAN_KINDS = frozenset({"commit", "squash"})
_SMP_LINE_KINDS = frozenset({"bus"})


class InvariantChecker:
    """Pluggable runtime verifier for SVC, ARB and SMP systems.

    One checker instance audits one system. ``checks`` counts audits
    performed; ``last_violation`` retains the first structured failure
    for capture machinery (:mod:`repro.replay`).
    """

    def __init__(self) -> None:
        self.system = None
        self._family: Optional[str] = None
        self.checks = 0
        self.last_violation: Optional[InvariantViolation] = None
        #: Full scan owed once the current bus transaction settles.
        self._deferred_scan = False

    # -- binding ------------------------------------------------------------

    def bind(self, system) -> None:
        """Attach to ``system``'s event log (the system must have one)."""
        if system.event_log is None:
            raise ProtocolError(
                "InvariantChecker needs an EventLog to observe; construct "
                "the system with checker= (which creates one) or pass "
                "event_log= explicitly"
            )
        self.system = system
        if hasattr(system, "vcl"):
            self._family = "svc"
        elif hasattr(system, "buffer"):
            self._family = "arb"
        else:
            self._family = "smp"
        system.event_log.attach(self.on_event)

    def unbind(self) -> None:
        if self.system is not None and self.system.event_log is not None:
            self.system.event_log.detach(self.on_event)
        self.system = None

    # -- event dispatch -----------------------------------------------------

    def on_event(self, event: ProtocolEvent) -> None:
        try:
            if self._family == "svc":
                in_transaction = getattr(self.system, "_in_transaction", False)
                if self._deferred_scan and not in_transaction:
                    self._deferred_scan = False
                    self.check_svc()
                if event.kind in _SVC_LINE_KINDS:
                    self.check_svc(line_addr=event.detail.get("line_addr"))
                elif event.kind in _SVC_SCAN_KINDS:
                    if in_transaction:
                        # A squash fired from inside a bus transaction (e.g.
                        # a violation detected mid-window-walk) is observable
                        # here before the requestor's own line has been
                        # patched.  Don't scan that torn snapshot — defer the
                        # full scan to the first event after the transaction
                        # settles.
                        self._deferred_scan = True
                    else:
                        self.check_svc()
            elif self._family == "arb":
                if event.kind in _ARB_SCAN_KINDS:
                    self.check_arb()
            else:
                if event.kind in _SMP_LINE_KINDS:
                    self.check_smp(line_addr=event.detail.get("line_addr"))
        except InvariantViolation as violation:
            if self.last_violation is None:
                self.last_violation = violation
            telemetry = getattr(self.system, "telemetry", None)
            if telemetry is not None:
                # Error-level instant + counter: the trace shows *where*
                # in the span tree the invariant broke (filter on the
                # "error" category in Perfetto).
                telemetry.instant(
                    INVARIANT_VIOLATION,
                    f"invariant:{violation.invariant}",
                    level="error",
                    invariant=violation.invariant,
                    subject=repr(violation.subject),
                    event_kind=event.kind,
                )
                telemetry.counter("check.violations").inc()
            raise

    # -- helpers ------------------------------------------------------------

    def _fail(self, invariant: str, message: str, subject=None, **detail):
        raise InvariantViolation(invariant, message, subject=subject, **detail)

    # -- SVC ---------------------------------------------------------------

    def check_svc(self, line_addr: Optional[int] = None) -> None:
        """Audit the SVC: one line when ``line_addr`` is given (post-bus),
        every resident line otherwise (post-commit/squash)."""
        self.checks += 1
        system = self.system
        self._svc_task_assignment(system)
        self._svc_cache_occupancy(system)
        if line_addr is not None:
            self._svc_line(system, line_addr)
            return
        directory = getattr(system, "directory", None)
        if directory is not None:
            # RealityCheck-style differential audit: the fast path (the
            # incremental directory) is re-derived from the slow path
            # (a full array scan) before any check relies on it.
            try:
                directory.audit(system.caches)
            except ProtocolError as exc:
                self._fail("directory-agreement", str(exc))
            addresses = directory.addresses()
        else:
            addresses = sorted(
                {addr for cache in system.caches for addr, _line in cache.lines()}
            )
        for addr in addresses:
            self._svc_line(system, addr)

    def _svc_task_assignment(self, system) -> None:
        """One task per cache, one cache per rank, ranks after the
        committed prefix (paper section 2.1's task sequence)."""
        try:
            system._audit_task_maps()
        except ProtocolError as exc:
            self._fail("task-map-agreement", str(exc))
        ranks = system.current_ranks()
        seen: Dict[int, int] = {}
        for cache_id, rank in ranks.items():
            if rank in seen:
                self._fail(
                    "task-rank-unique",
                    f"rank {rank} assigned to caches {seen[rank]} and {cache_id}",
                    subject=rank,
                )
            seen[rank] = cache_id
            if rank <= system._committed_through:
                self._fail(
                    "task-after-committed-prefix",
                    f"cache {cache_id} runs rank {rank} but ranks through "
                    f"{system._committed_through} have committed",
                    subject=rank,
                )

    def _svc_cache_occupancy(self, system) -> None:
        """Controller/array agreement: ``active_lines`` is exactly the set
        of resident uncommitted lines, each stamped with the running task.
        Flash commit and flash squash (sections 3.4, 3.5) depend on it."""
        for cache in system.caches:
            actual = {
                addr for addr, line in cache.lines() if not line.committed
            }
            if actual != cache.active_lines:
                self._fail(
                    "active-set-agreement",
                    f"cache {cache.cache_id} active_lines="
                    f"{sorted(map(hex, cache.active_lines))} but uncommitted "
                    f"resident lines are {sorted(map(hex, actual))}",
                    subject=cache.cache_id,
                )
            if cache.current_task is None and actual:
                self._fail(
                    "active-implies-task",
                    f"cache {cache.cache_id} has no task but holds active "
                    f"lines {sorted(map(hex, actual))}",
                    subject=cache.cache_id,
                )
            for addr in actual:
                line = cache.line_for(addr, touch=False)
                if line.task_id != cache.current_task:
                    self._fail(
                        "active-task-stamp",
                        f"cache {cache.cache_id} line {addr:#x} is active for "
                        f"task {line.task_id} but the cache runs "
                        f"{cache.current_task}",
                        subject=addr,
                    )

    def _svc_line(self, system, line_addr: int) -> None:
        from repro.svc.vol import build_vol, is_fresh, tail_stamps

        entries = system.vcl._entries(line_addr)
        if not entries:
            return
        ranks = system.vcl._ranks()
        features = system.features

        for cache_id, line in entries.items():
            self._svc_bits(features, line_addr, cache_id, line, system)

        # VOL reconstruction itself enforces "active line implies a
        # running task"; surface its complaint as a structured violation.
        try:
            vol = build_vol(entries, ranks)
        except ProtocolError as exc:
            self._fail("vol-buildable", str(exc), subject=line_addr)

        self._svc_pointer_chain(line_addr, entries)
        self._svc_version_order(line_addr, entries, vol)
        self._svc_exclusivity(line_addr, entries, vol)

        if features.stale_bit:
            tail = tail_stamps(entries, vol, system.vcl.memory_stamps_for(line_addr))
            for cache_id in vol:
                line = entries[cache_id]
                if not line.stale and not is_fresh(line, tail):
                    # T may be conservatively *set* between repairs, but a
                    # *clear* T on genuinely stale data authorizes a wrong
                    # local reuse (section 3.4.3): always a bug.
                    self._fail(
                        "t-clear-implies-fresh",
                        f"line {line_addr:#x} in cache {cache_id} has T clear "
                        f"but its valid blocks do not match the tail-of-VOL "
                        f"composition (stamps {line.block_content} vs tail "
                        f"{tail})",
                        subject=line_addr,
                        cache=cache_id,
                    )

    def _svc_bits(self, features, line_addr, cache_id, line, system) -> None:
        """Per-line bit-state legality for the configured design tier
        (the Figure 6/11/16 state bits exist only from the design level
        that introduces them)."""
        state = {
            "cache": cache_id,
            "state": line.describe(),
        }
        if line.committed and not features.lazy_commit:
            self._fail(
                "c-requires-ec",
                f"line {line_addr:#x} has C set but the design has no C bit "
                "(base design commits write back eagerly, section 3.2.6)",
                subject=line_addr,
                **state,
            )
        if line.stale and not features.stale_bit:
            self._fail(
                "t-requires-ec",
                f"line {line_addr:#x} has T set but the design has no T bit",
                subject=line_addr,
                **state,
            )
        if line.architectural and not features.architectural_bit:
            self._fail(
                "a-requires-ecs",
                f"line {line_addr:#x} has A set but the design has no A bit",
                subject=line_addr,
                **state,
            )
        full = system.amap.full_mask
        for name, mask in (
            ("valid", line.valid_mask),
            ("store", line.store_mask),
            ("load", line.load_mask),
        ):
            if mask & ~full:
                self._fail(
                    "mask-in-range",
                    f"line {line_addr:#x} {name}_mask {mask:#x} exceeds the "
                    f"line's block mask {full:#x}",
                    subject=line_addr,
                    **state,
                )
        if line.store_mask & ~line.valid_mask:
            self._fail(
                "stores-are-valid",
                f"line {line_addr:#x} in cache {cache_id} owns blocks "
                f"{line.store_mask:#x} without valid data "
                f"(valid {line.valid_mask:#x})",
                subject=line_addr,
                **state,
            )
        if line.written_back and not line.committed:
            self._fail(
                "writeback-implies-committed",
                f"line {line_addr:#x} in cache {cache_id} is marked "
                "written-back while still active",
                subject=line_addr,
                **state,
            )

    def _svc_pointer_chain(self, line_addr, entries) -> None:
        """VOL pointers may dangle between repairs (Figure 17) but must
        never cycle and must point at other caches, not at themselves."""
        for start in entries:
            visited = {start}
            current = start
            while True:
                nxt = entries[current].pointer
                if nxt is None or nxt not in entries:
                    break  # end of chain, or dangling (legal pre-repair)
                if nxt in visited:
                    self._fail(
                        "vol-acyclic",
                        f"line {line_addr:#x}: VOL pointer chain from cache "
                        f"{start} revisits cache {nxt} "
                        f"(chain {sorted(visited)})",
                        subject=line_addr,
                    )
                visited.add(nxt)
                current = nxt

    def _svc_version_order(self, line_addr, entries, vol) -> None:
        """Committed versions stay totally ordered by version stamp even
        after silent evictions punch holes in the pointer chain."""
        seen: Dict[int, int] = {}
        for cache_id in vol:
            line = entries[cache_id]
            if line.committed and line.dirty:
                if line.version_seq in seen:
                    self._fail(
                        "version-order-total",
                        f"line {line_addr:#x}: committed versions in caches "
                        f"{seen[line.version_seq]} and {cache_id} share stamp "
                        f"{line.version_seq}; their writeback order is "
                        "undefined",
                        subject=line_addr,
                    )
                seen[line.version_seq] = cache_id

    def _svc_exclusivity(self, line_addr, entries, vol) -> None:
        """The X bit (section 3.8.1) authorizes bus-free stores, so it
        must mean *sole holder of the line's data*: a silent store
        changes the tail-of-VOL with no bus event to snoop, so any
        other cache holding valid blocks would be left with a T bit
        that is clear on genuinely stale data — the exact state the
        T machinery exists to prevent. Entries with no valid block
        (husks kept resident for their L bits) are harmless: they
        cover nothing and can never be reused. At most one entry can
        hold X."""
        holders = [cid for cid in vol if entries[cid].exclusive]
        if len(holders) > 1:
            self._fail(
                "x-unique",
                f"line {line_addr:#x}: caches {holders} all claim "
                "exclusivity",
                subject=line_addr,
            )
        if not holders:
            return
        for cache_id in vol:
            line = entries[cache_id]
            if cache_id != holders[0] and line.valid_mask:
                self._fail(
                    "x-implies-sole-holder",
                    f"line {line_addr:#x}: cache {holders[0]} holds X but "
                    f"cache {cache_id} holds valid blocks "
                    f"{line.valid_mask:#x} (VOL {vol}); a silent store "
                    "would leave that copy's T bit clear on stale data",
                    subject=line_addr,
                )

    # -- ARB ---------------------------------------------------------------

    def check_arb(self) -> None:
        """Audit the ARB after commits and squashes: no zombie stages,
        byte masks within the row's word, no leaked empty rows."""
        from repro.arb.buffer import WORD_SIZE

        self.checks += 1
        system = self.system
        active = set(system.current_ranks().values())
        word_mask = (1 << WORD_SIZE) - 1
        for row in system.buffer.rows():
            if not row.entries:
                self._fail(
                    "arb-rows-released",
                    f"ARB row {row.word_addr:#x} is allocated but empty",
                    subject=row.word_addr,
                )
            for rank, entry in row.entries.items():
                if rank not in active:
                    self._fail(
                        "arb-window",
                        f"ARB row {row.word_addr:#x} holds rank {rank} which "
                        f"is not an active task (active: {sorted(active)}); "
                        "committed and squashed stages must be reclaimed",
                        subject=row.word_addr,
                        rank=rank,
                    )
                if (entry.load_mask | entry.store_mask) & ~word_mask:
                    self._fail(
                        "arb-byte-masks",
                        f"ARB row {row.word_addr:#x} rank {rank} has masks "
                        f"outside the word (L={entry.load_mask:#x} "
                        f"S={entry.store_mask:#x})",
                        subject=row.word_addr,
                        rank=rank,
                    )

    # -- SMP coherence -------------------------------------------------------

    def check_smp(self, line_addr: Optional[int] = None) -> None:
        """Audit the MRSW substrate: a dirty line is the sole copy
        (Figure 3's single-writer obligation) and clean copies agree with
        memory's image of the line."""
        self.checks += 1
        system = self.system
        if line_addr is not None:
            addresses = [line_addr]
        else:
            addresses = sorted(
                {addr for cache in system.caches for addr, _ in cache.array.lines()}
            )
        from repro.coherence.protocol import CoherenceState

        for addr in addresses:
            holders = []
            for cache in system.caches:
                line = cache.array.lookup(addr, touch=False)
                if line is not None:
                    holders.append((cache.cache_id, line))
            dirty = [cid for cid, line in holders if line.state == CoherenceState.DIRTY]
            if dirty and len(holders) > 1:
                self._fail(
                    "mrsw-single-writer",
                    f"line {addr:#x}: cache {dirty[0]} is Dirty while caches "
                    f"{[cid for cid, _ in holders]} hold copies",
                    subject=addr,
                )
            if not dirty:
                image = bytes(
                    system.memory.read_line(addr, system.geometry.line_size)
                )
                for cid, line in holders:
                    if bytes(line.data) != image:
                        self._fail(
                            "clean-matches-memory",
                            f"line {addr:#x}: clean copy in cache {cid} "
                            "disagrees with memory",
                            subject=addr,
                            cache=cid,
                        )


def attach_checker(system) -> InvariantChecker:
    """Create a checker and bind it to ``system`` (which must already
    have an event log). Convenience for tests and tools."""
    checker = InvariantChecker()
    checker.bind(system)
    return checker


__all__ = ["InvariantChecker", "attach_checker"]
