"""Deterministic, action-at-a-time schedule execution.

The hier driver picks the next PU step from an RNG; the model checker
needs the opposite — an executor whose *caller* chooses each step, so a
schedule is an explicit list of actions that can be enumerated,
fingerprinted and replayed. :class:`ScheduleExecutor` re-implements the
driver's stepping rules (dispatch in rank order to free PUs, per-task
program order, violation squash resets, head-only commit) over the same
duck-typed system interface, one action at a time:

* ``("op", rank)`` — execute task ``rank``'s next memory op,
* ``("commit", rank)`` — commit task ``rank`` (must be the head).

An action sequence drives SVC and ARB systems identically, which is how
the explorer cross-checks the tiers against the baseline, and how
:mod:`repro.replay` replays a model-checker counterexample: a
:class:`repro.replay.Case` with a ``script`` runs through this executor
(leniently — dropped-op shrink candidates may leave script entries that
are no longer enabled) and finishes any remaining work oldest-first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ProtocolError, ReplacementStall, SimulationError
from repro.hier.driver import DriverReport
from repro.hier.task import OpKind, TaskProgram

#: One scheduler choice: ("op", rank) or ("commit", rank).
Action = Tuple[str, int]


@dataclass
class _Progress:
    """Mutable per-task execution state (mirrors the driver's)."""

    pu: Optional[int] = None
    op_index: int = 0
    observed_loads: List[int] = field(default_factory=list)
    loaded_by_index: Dict[int, int] = field(default_factory=dict)
    executions: int = 0
    committed: bool = False


class ScheduleExecutor:
    """Drives a speculative memory system through explicit actions."""

    def __init__(self, system, tasks: Sequence[TaskProgram]) -> None:
        self.system = system
        self.tasks = list(tasks)
        self.progress = [_Progress() for _ in self.tasks]
        self._memory_ops = [t.memory_ops for t in self.tasks]
        self._next_dispatch = 0
        self._free_pus = list(range(system.n_units))
        self._violations = 0
        self._stalls = 0
        self._steps = 0
        self._dispatch()

    # -- scheduling state ---------------------------------------------------

    def _dispatch(self) -> None:
        while self._free_pus and self._next_dispatch < len(self.tasks):
            rank = self._next_dispatch
            pu = self._free_pus.pop(0)
            state = self.progress[rank]
            state.pu = pu
            state.op_index = 0
            state.observed_loads = []
            state.loaded_by_index = {}
            state.executions += 1
            self.system.begin_task(pu, rank)
            self._next_dispatch += 1

    def _head_rank(self) -> Optional[int]:
        for rank, state in enumerate(self.progress):
            if not state.committed:
                return rank if state.pu is not None else None
        return None

    def _finished(self, rank: int) -> bool:
        return self.progress[rank].op_index >= len(self._memory_ops[rank])

    @property
    def terminal(self) -> bool:
        return all(state.committed for state in self.progress)

    def enabled(self) -> List[Action]:
        """Every action the schedule may take next, in rank order."""
        head = self._head_rank()
        actions: List[Action] = []
        for rank, state in enumerate(self.progress):
            if state.pu is None or state.committed:
                continue
            if self._finished(rank):
                if rank == head:
                    actions.append(("commit", rank))
            else:
                actions.append(("op", rank))
        return actions

    def current_op(self, rank: int) -> Optional[object]:
        """The memory op an ("op", rank) action would execute now."""
        if self.progress[rank].committed or self._finished(rank):
            return None
        return self._memory_ops[rank][self.progress[rank].op_index]

    # -- action application -------------------------------------------------

    def apply(self, action: Action, lenient: bool = False) -> bool:
        """Apply one action; returns True if it executed.

        ``lenient`` skips actions that are not currently enabled (and
        swallows a ReplacementStall into a retry-later no-op) instead of
        raising — the semantics scripted replays need after shrinking
        removed ops the script still names.
        """
        if action not in self.enabled():
            if lenient:
                return False
            raise SimulationError(f"action {action!r} is not enabled")
        kind, rank = action
        self._steps += 1
        if kind == "commit":
            self._commit(rank)
            return True
        try:
            self._step(rank)
        except ReplacementStall:
            if not lenient:
                raise
            self._stalls += 1
            return False
        return True

    def _op_position(self, rank: int) -> int:
        """Full-op-list index of the current memory op (value_deps use
        full-list positions, exactly as in the driver)."""
        program = self.tasks[rank]
        positions = [
            i for i, op in enumerate(program.ops) if op.kind != OpKind.COMPUTE
        ]
        return positions[self.progress[rank].op_index]

    def _step(self, rank: int) -> None:
        state = self.progress[rank]
        op = self._memory_ops[rank][state.op_index]
        if op.kind == OpKind.LOAD:
            result = self.system.load(state.pu, op.addr, op.size)
            state.observed_loads.append(result.value)
            state.loaded_by_index[self._op_position(rank)] = result.value
            state.op_index += 1
        elif op.kind == OpKind.STORE:
            value = op.store_value(state.loaded_by_index)
            result = self.system.store(state.pu, op.addr, value, op.size)
            state.op_index += 1
            if result.squashed_ranks:
                self._violations += 1
                self._reset_squashed(result.squashed_ranks)
        else:
            raise SimulationError(f"schedule executor got op kind {op.kind!r}")

    def _reset_squashed(self, squashed_ranks: List[int]) -> None:
        for rank in sorted(squashed_ranks):
            state = self.progress[rank]
            if state.pu is None:
                raise SimulationError(f"squashed rank {rank} had no PU")
            state.op_index = 0
            state.observed_loads = []
            state.loaded_by_index = {}
            state.executions += 1
            self.system.begin_task(state.pu, rank)

    def _commit(self, rank: int) -> None:
        state = self.progress[rank]
        self.system.commit_head(state.pu)
        state.committed = True
        self._free_pus.append(state.pu)
        state.pu = None
        self._dispatch()

    # -- end of run ---------------------------------------------------------

    def finish(self) -> DriverReport:
        """Audit (when the system can) and drain a terminal execution."""
        if not self.terminal:
            raise SimulationError("finish() before the schedule is terminal")
        verify = getattr(self.system, "verify", None)
        if verify is not None:
            verify()
        self.system.drain()
        return DriverReport(
            load_values=[s.observed_loads for s in self.progress],
            steps=self._steps,
            violation_squashes=self._violations,
            injected_squashes=0,
            replacement_stalls=self._stalls,
            task_executions=[s.executions for s in self.progress],
        )


def run_script(
    system,
    tasks: Sequence[TaskProgram],
    script: Sequence[Action],
    max_completion_steps: int = 10_000,
) -> DriverReport:
    """Replay a schedule script, then finish the run oldest-first.

    Script actions are applied leniently (skipped when not enabled), so
    shrunken scripts stay replayable; the deterministic oldest-first
    completion mirrors the driver's ``oldest_first`` schedule, under
    which the head always progresses, so the loop terminates unless the
    protocol itself livelocks — which the step guard then reports.
    """
    executor = ScheduleExecutor(system, tasks)
    for action in script:
        executor.apply(tuple(action), lenient=True)
    steps = 0
    while not executor.terminal:
        steps += 1
        if steps > max_completion_steps:
            raise SimulationError(
                f"script completion exceeded {max_completion_steps} steps; "
                "likely protocol livelock"
            )
        actions = executor.enabled()
        if not actions:
            raise ProtocolError("no enabled action but tasks remain")
        executor.apply(min(actions, key=lambda a: (a[1], a[0])))
    return executor.finish()
