"""The bounded exhaustive DFS over scheduler choices.

One exploration = one (design, program) pair. The tree's nodes are
schedule prefixes; an edge is one enabled action. The systems expose no
snapshot/undo, so each node is reached by replaying its prefix from a
fresh system — O(depth) work per node, which the two prunings repay
many times over:

* **sleep sets** (Godefroid's partial-order reduction): after exploring
  action ``a`` at a node, sibling subtrees need not re-explore ``b`` in
  schedules where only independent actions intervened. Independence here
  is deliberately narrow — two *loads* by different tasks to different
  (effective) cache lines — because stores squash, invalidate and snarf
  across tasks, and commits move the head: all observably order-sensitive.
* **fingerprint pruning**: canonical state hashing
  (:mod:`repro.modelcheck.fingerprint`) cuts converging prefixes. With
  sleep sets in play a state may only be skipped when a previous visit
  explored a *superset* of this visit's actions, i.e. when some recorded
  sleep set is a subset of the current one.

Every terminal schedule's (load values, final memory) outcome is checked
against the sequential oracle; any structured failure or mismatch is
returned as a failing :class:`repro.replay.Case` (with the schedule as
its ``script``) plus its classified result — ready to capture, shrink
and replay.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.common.errors import InvariantViolation, ProtocolError, SimulationError
from repro.hier.task import OpKind
from repro.modelcheck.executor import Action, ScheduleExecutor
from repro.modelcheck.fingerprint import fingerprint
from repro.oracle.sequential import SequentialOracle, verify_run
from repro.replay import Case, CaseResult, build_system, run_case

#: A terminal outcome: per-task load values and the non-zero memory image.
Outcome = Tuple[Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, int], ...]]


@dataclass
class ExplorationResult:
    """What exploring one (design, program) pair found."""

    design: str
    nodes: int = 0
    schedules: int = 0
    sleep_pruned: int = 0
    fp_pruned: int = 0
    depth_capped: int = 0
    truncated: bool = False
    outcomes: Set[Outcome] = field(default_factory=set)
    #: First schedule observed to reach each outcome — the witness the
    #: litmus layer prints under ``--explain``. Keys are a subset of
    #: ``outcomes``; values are full action scripts.
    witnesses: Dict[Outcome, Tuple[Action, ...]] = field(default_factory=dict)
    #: Failing cases, each paired with its classified result.
    counterexamples: List[Tuple[Case, CaseResult]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.counterexamples and not self.truncated


class _StopExploration(Exception):
    """Private unwind signal: budget exhausted or enough counterexamples."""


class _Explorer:
    def __init__(
        self,
        case: Case,
        max_nodes: int,
        max_depth: int,
        max_counterexamples: int,
    ) -> None:
        self.case = case
        self.max_nodes = max_nodes
        self.max_depth = max_depth
        self.max_counterexamples = max_counterexamples
        self.result = ExplorationResult(design=case.design)
        self.oracle = SequentialOracle().run(list(case.tasks))
        #: fingerprint -> sleep sets it was explored under.
        self.seen: Dict[Tuple, List[FrozenSet[Action]]] = {}

    # -- plumbing -----------------------------------------------------------

    def _replay(self, script: List[Action]):
        system = build_system(self.case)
        executor = ScheduleExecutor(system, self.case.tasks)
        for action in script:
            executor.apply(action)
        return system, executor

    def _record_counterexample(self, script: List[Action]) -> None:
        failing = dataclasses.replace(self.case, script=tuple(script))
        result = run_case(failing)
        if result.ok:
            # The scripted lenient replay (plus oldest-first completion)
            # masked the failure; keep the strict story as a protocol
            # failure so the capture still points at the schedule.
            result = CaseResult(
                ok=False,
                error_kind="protocol",
                error_type="NonReplayable",
                error_message="failure did not survive lenient re-execution",
            )
        self.result.counterexamples.append((failing, result))
        if len(self.result.counterexamples) >= self.max_counterexamples:
            raise _StopExploration()

    def _independent(self, executor, system, a: Action, b: Action) -> bool:
        """True only for two loads by different tasks to different
        effective lines — everything else is order-sensitive."""
        if a[0] != "op" or b[0] != "op" or a[1] == b[1]:
            return False
        op_a = executor.current_op(a[1])
        op_b = executor.current_op(b[1])
        if op_a is None or op_b is None:
            return False
        if op_a.kind != OpKind.LOAD or op_b.kind != OpKind.LOAD:
            return False
        amap = system.amap
        return amap.line_address(op_a.addr) != amap.line_address(op_b.addr)

    # -- the DFS ------------------------------------------------------------

    def _visit(self, script: List[Action], sleep: FrozenSet[Action]) -> None:
        self.result.nodes += 1
        if self.result.nodes > self.max_nodes:
            self.result.truncated = True
            raise _StopExploration()
        try:
            system, executor = self._replay(script)
        except (InvariantViolation, SimulationError, ProtocolError):
            self._record_counterexample(script)
            return

        if executor.terminal:
            self.result.schedules += 1
            try:
                report = executor.finish()
            except (InvariantViolation, SimulationError, ProtocolError):
                self._record_counterexample(script)
                return
            problems = verify_run(report, self.oracle, system.memory)
            if problems:
                self._record_counterexample(script)
                return
            outcome = (
                tuple(tuple(values) for values in report.load_values),
                tuple(sorted(system.memory.image().items())),
            )
            if outcome not in self.result.outcomes:
                self.result.outcomes.add(outcome)
                self.result.witnesses[outcome] = tuple(script)
            return

        if len(script) >= self.max_depth:
            self.result.depth_capped += 1
            self.result.truncated = True
            return

        fp = fingerprint(system, executor)
        explored_under = self.seen.get(fp)
        if explored_under is not None and any(
            prev <= sleep for prev in explored_under
        ):
            self.result.fp_pruned += 1
            return
        self.seen.setdefault(fp, []).append(sleep)

        explored: List[Action] = []
        for action in executor.enabled():
            if action in sleep:
                self.result.sleep_pruned += 1
                explored.append(action)
                continue
            child_sleep = frozenset(
                b
                for b in set(sleep) | set(explored)
                if self._independent(executor, system, action, b)
            )
            self._visit(script + [action], child_sleep)
            explored.append(action)

    def run(self) -> ExplorationResult:
        try:
            self._visit([], frozenset())
        except _StopExploration:
            pass
        return self.result


def explore_case(
    case: Case,
    max_nodes: int = 250_000,
    max_depth: int = 120,
    max_counterexamples: int = 1,
) -> ExplorationResult:
    """Exhaustively explore every schedule of ``case``'s tasks.

    ``case`` supplies the design, geometry, task programs, mutation and
    checker settings; its ``script``/``schedule`` fields are ignored (the
    explorer generates the scripts). Exploration stops early after
    ``max_counterexamples`` failures, ``max_nodes`` visited prefixes, or
    when a schedule exceeds ``max_depth`` actions (both caps mark the
    result ``truncated`` so exhaustiveness claims stay honest).
    """
    if case.fault_plan is not None and not case.fault_plan.is_noop:
        raise SimulationError("model checking does not compose with fault plans")
    template = dataclasses.replace(case, script=None, squash_probability=0.0)
    return _Explorer(template, max_nodes, max_depth, max_counterexamples).run()
