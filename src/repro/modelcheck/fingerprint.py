"""Canonical state fingerprints for duplicate-schedule pruning.

Two schedule prefixes that land the system in the same state have
identical futures, so the explorer only needs each state once. "Same
state" must mean *observationally* same, so the fingerprint canonicalizes
everything the protocol cannot observe under the model-check geometry
(which guarantees zero replacements):

* LRU order inside a set is excluded — with no replacements it can
  never influence an outcome,
* content stamps (``version_seq``, ``block_content``, memory stamps) are
  renamed by first appearance — stamps only ever feed equality
  comparisons, so the allocation counter's absolute values are noise,
* invalid blocks' data bytes are zeroed — the protocol never reads them.

Scheduler progress (per-task op index, executions, commit state and the
PU assignment) is folded in as well: two identical memory states with
different remaining work are of course different nodes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class _StampRenamer:
    """Injective first-appearance renaming of content stamps.

    Stamp 0 is the "never written" sentinel in both the line blocks and
    the memory stamp table, so it stays fixed.
    """

    def __init__(self) -> None:
        self._map: Dict[int, int] = {0: 0}

    def __call__(self, stamp: int) -> int:
        renamed = self._map.get(stamp)
        if renamed is None:
            renamed = len(self._map)
            self._map[stamp] = renamed
        return renamed


def _progress_key(executor) -> Tuple:
    return tuple(
        (s.pu, s.op_index, tuple(s.observed_loads), s.committed)
        for s in executor.progress
    )


def _masked_data(data, valid_mask: int, block_masks: List[Tuple[int, int]]) -> bytes:
    """Line data with every invalid block's bytes forced to zero."""
    out = bytearray(data)
    for block_mask, (start, stop) in block_masks:
        if not valid_mask & block_mask:
            for i in range(start, stop):
                out[i] = 0
    return bytes(out)


def _svc_fingerprint(system, executor) -> Tuple:
    rename = _StampRenamer()
    block = system.geometry.versioning_block_size
    block_masks = [
        (1 << i, (i * block, (i + 1) * block))
        for i in range(system.amap.blocks_per_line)
    ]
    caches = []
    for cache in system.caches:
        lines = []
        for line_addr, line in sorted(cache.lines()):
            lines.append(
                (
                    line_addr,
                    _masked_data(line.data, line.valid_mask, block_masks),
                    line.valid_mask,
                    line.store_mask,
                    line.load_mask,
                    line.committed,
                    line.stale,
                    line.architectural,
                    line.exclusive,
                    line.task_id,
                    line.written_back,
                    rename(line.version_seq),
                    tuple(rename(s) for s in line.block_content),
                )
            )
        caches.append((cache.current_task, tuple(lines)))
    memory = tuple(sorted(system.memory.image().items()))
    mem_stamps = tuple(
        (addr, tuple(rename(s) for s in stamps))
        for addr, stamps in sorted(system.vcl._memory_stamps.items())
        if any(stamps)
    )
    return ("svc", _progress_key(executor), system._committed_through,
            tuple(caches), memory, mem_stamps)


def _arb_fingerprint(system, executor) -> Tuple:
    rows = []
    for word_addr, row in sorted(system.buffer._rows.items()):
        entries = tuple(
            (rank, e.load_mask, e.store_mask,
             bytes(b if (e.store_mask >> i) & 1 else 0
                   for i, b in enumerate(e.data)))
            for rank, e in sorted(row.entries.items())
            if not e.empty
        )
        if entries:
            rows.append((word_addr, entries))
    dcache = tuple(
        (line_addr, bytes(line.data), line.dirty)
        for line_addr, line in sorted(system.data_cache.array.lines())
    )
    units = tuple(sorted(system._task_of_unit.items()))
    memory = tuple(sorted(system.memory.image().items()))
    return ("arb", _progress_key(executor), system._committed_through,
            units, tuple(rows), dcache, memory)


def fingerprint(system, executor) -> Tuple:
    """A hashable canonical key for (system state, schedule progress)."""
    if hasattr(system, "vcl"):
        return _svc_fingerprint(system, executor)
    if hasattr(system, "buffer"):
        return _arb_fingerprint(system, executor)
    raise TypeError(f"cannot fingerprint {type(system).__name__}")
