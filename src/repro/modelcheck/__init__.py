"""Bounded exhaustive model checking of the MRMW protocol.

The invariant checker audits the schedules a workload happens to take;
this package enumerates *every* schedule of every small program within a
configurable bound and drives the real :class:`repro.svc.SVCSystem` (and
the ARB baseline) through each one, checking every terminal state
against the sequential oracle. The pieces:

* :mod:`repro.modelcheck.programs` — the bound (PUs, total ops, lines)
  and the symmetry-reduced enumeration of small task programs,
* :mod:`repro.modelcheck.executor` — a deterministic, action-at-a-time
  re-implementation of the hier driver's stepping rules, so a schedule
  is an explicit replayable script instead of an RNG,
* :mod:`repro.modelcheck.fingerprint` — canonical state hashing for
  duplicate-state pruning,
* :mod:`repro.modelcheck.explorer` — the DFS over scheduler choices with
  sleep-set and fingerprint pruning,
* :mod:`repro.modelcheck.mutations` — known-bad protocol mutations (one
  per design tier) that the checker must catch: the kill-switch that
  proves the exploration actually has teeth,
* :mod:`repro.modelcheck.runner` — fan-out over every design tier plus
  the ARB, counterexample capture, and the ``python -m repro
  modelcheck`` CLI.

Counterexamples are emitted as :class:`repro.replay.FailureCapture`
files, so every violation shrinks and replays deterministically with
``python -m repro replay``.
"""

from repro.modelcheck.executor import ScheduleExecutor, run_script
from repro.modelcheck.explorer import ExplorationResult, explore_case
from repro.modelcheck.mutations import MUTATIONS, TIER_KILL_SWITCH
from repro.modelcheck.programs import Bounds, bound_geometry, enumerate_programs
from repro.modelcheck.runner import ModelCheckReport, modelcheck_main, run_modelcheck

__all__ = [
    "Bounds",
    "ExplorationResult",
    "MUTATIONS",
    "ModelCheckReport",
    "ScheduleExecutor",
    "TIER_KILL_SWITCH",
    "bound_geometry",
    "enumerate_programs",
    "explore_case",
    "modelcheck_main",
    "run_modelcheck",
    "run_script",
]
