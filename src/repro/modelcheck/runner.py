"""Fan-out, aggregation and the ``python -m repro modelcheck`` CLI.

One *unit* of work is (design, program): an exhaustive exploration of
every schedule of that program on that design. Units are independent —
each builds fresh systems — so they fan out over
:func:`repro.harness.parallel.parallel_map` exactly like experiment
points, serialized as plain dicts so fork and spawn contexts both work.

Beyond the per-schedule oracle check inside the explorer, the runner
cross-checks *between* targets: every design and the ARB baseline must
produce the same set of terminal outcomes for the same program (a
singleton set when everything is healthy, since each outcome already
matched the sequential oracle). Counterexamples are written as
:class:`repro.replay.FailureCapture` JSON files, immediately consumable
by ``python -m repro replay <file> --shrink``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.harness.parallel import parallel_map, resolve_workers
from repro.modelcheck.explorer import explore_case
from repro.modelcheck.mutations import MUTATIONS
from repro.modelcheck.programs import Bounds, bound_geometry, enumerate_programs
from repro.replay import Case, FailureCapture, task_from_dict, task_to_dict
from repro.svc.designs import DESIGNS

#: Default exploration targets: all six SVC tiers plus the ARB baseline.
ALL_TARGETS = tuple(DESIGNS) + ("arb",)

DEFAULT_CAPTURES_DIR = os.path.join("failures", "modelcheck")


@dataclass
class DesignStats:
    """Aggregated exploration statistics for one design."""

    design: str
    programs: int = 0
    nodes: int = 0
    schedules: int = 0
    sleep_pruned: int = 0
    fp_pruned: int = 0
    truncated_programs: int = 0
    counterexamples: int = 0

    def describe(self) -> str:
        line = (
            f"{self.design:>6}: {self.programs} programs, "
            f"{self.schedules} schedules explored, "
            f"{self.sleep_pruned + self.fp_pruned} pruned "
            f"({self.sleep_pruned} sleep, {self.fp_pruned} fingerprint), "
            f"{self.nodes} nodes, {self.counterexamples} counterexamples"
        )
        if self.truncated_programs:
            line += f" [{self.truncated_programs} programs truncated]"
        return line


@dataclass
class ModelCheckReport:
    """Everything one model-check run established."""

    bounds: Bounds
    designs: Tuple[str, ...]
    programs: int
    per_design: Dict[str, DesignStats] = field(default_factory=dict)
    #: Cross-target outcome divergences (design disagreement messages).
    mismatches: List[str] = field(default_factory=list)
    #: Paths of saved counterexample captures.
    captures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.mismatches
            and all(s.counterexamples == 0 for s in self.per_design.values())
            and all(s.truncated_programs == 0 for s in self.per_design.values())
        )

    def describe(self) -> str:
        lines = [
            f"modelcheck: {self.bounds.describe()}, "
            f"{self.programs} canonical programs x {len(self.designs)} targets"
        ]
        for design in self.designs:
            lines.append(self.per_design[design].describe())
        for message in self.mismatches:
            lines.append(f"MISMATCH: {message}")
        for path in self.captures:
            lines.append(f"counterexample capture: {path}")
        lines.append("RESULT: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _check_unit(payload: Dict) -> Dict:
    """Explore one (design, program) unit. Top-level so it pickles."""
    case = Case(
        design=payload["design"],
        tasks=tuple(task_from_dict(t) for t in payload["tasks"]),
        geometry=CacheGeometry(**payload["geometry"]),
        schedule="script",
        checker=True,
        check_invariants=True,
        n_caches=payload["n_caches"],
        mutation=payload["mutation"],
    )
    result = explore_case(
        case,
        max_nodes=payload["max_nodes"],
        max_counterexamples=payload["max_counterexamples"],
    )
    return {
        "design": result.design,
        "program": payload["program"],
        "nodes": result.nodes,
        "schedules": result.schedules,
        "sleep_pruned": result.sleep_pruned,
        "fp_pruned": result.fp_pruned,
        "truncated": result.truncated,
        "outcomes": sorted(result.outcomes),
        "captures": [
            FailureCapture.from_result(failing, failure).to_dict()
            for failing, failure in result.counterexamples
        ],
    }


def run_modelcheck(
    bounds: Bounds,
    designs: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    mutation: Optional[str] = None,
    captures_dir: str = DEFAULT_CAPTURES_DIR,
    max_nodes: int = 250_000,
    max_counterexamples: int = 1,
    max_programs: Optional[int] = None,
    programs: Optional[Sequence[Sequence]] = None,
    log=None,
) -> ModelCheckReport:
    """Exhaustively check every program within ``bounds`` on ``designs``.

    With a ``mutation``, targets default to the tiers the mutation is
    reachable on (and the cross-target comparison is skipped — a mutated
    machine is *supposed* to diverge from the baseline).

    ``programs`` supplies externally built task lists (litmus shapes,
    trace fragments) to check *instead of* the bound's enumeration. They
    are explored exactly as given — no symmetry canonicalization, no
    location renaming — so a hand-built IRIW shape round-trips the
    explorer unchanged; ``bounds`` then only sizes the replacement-free
    geometry (see :func:`repro.modelcheck.programs.bounds_for_programs`).
    """
    if mutation is not None and mutation not in MUTATIONS:
        raise ConfigError(
            f"unknown mutation {mutation!r}; choose from {sorted(MUTATIONS)}"
        )
    if designs is None:
        designs = MUTATIONS[mutation].tiers if mutation else ALL_TARGETS
    designs = tuple(designs)
    for design in designs:
        if design not in ALL_TARGETS:
            raise ConfigError(
                f"unknown design {design!r}; choose from {ALL_TARGETS}"
            )

    programs = (
        [tuple(program) for program in programs]
        if programs is not None
        else list(enumerate_programs(bounds))
    )
    if max_programs is not None and len(programs) > max_programs:
        if log is not None:
            log(
                f"note: bound yields {len(programs)} programs, "
                f"checking only the first {max_programs}"
            )
        programs = programs[:max_programs]

    geometry = bound_geometry(bounds)
    geometry_dict = {
        "size_bytes": geometry.size_bytes,
        "associativity": geometry.associativity,
        "line_size": geometry.line_size,
        "versioning_block_size": geometry.versioning_block_size,
    }
    indexed = list(enumerate(programs))
    if mutation is not None:
        # Largest programs first: mutations need a few cooperating ops
        # to manifest, and the enumeration emits small programs first.
        indexed.reverse()
    payloads = [
        {
            "design": design,
            "program": index,
            "tasks": [task_to_dict(t) for t in program],
            "geometry": geometry_dict,
            "n_caches": bounds.pus,
            "mutation": mutation,
            "max_nodes": max_nodes,
            "max_counterexamples": max_counterexamples,
        }
        for index, program in indexed
        for design in designs
    ]
    if log is not None:
        log(
            f"exploring {len(programs)} programs x {len(designs)} targets "
            f"({len(payloads)} units, {resolve_workers(workers)} workers)"
        )
    if mutation is not None:
        # Kill-switch mode only needs one counterexample, so stop
        # scheduling units once a chunk produced one.
        chunk = max(resolve_workers(workers), 16)
        results = []
        for start in range(0, len(payloads), chunk):
            batch = parallel_map(_check_unit, payloads[start : start + chunk], workers)
            results.extend(batch)
            if any(unit["captures"] for unit in batch):
                break
    else:
        results = parallel_map(_check_unit, payloads, workers)

    report = ModelCheckReport(
        bounds=bounds,
        designs=designs,
        programs=len(programs),
        per_design={design: DesignStats(design=design) for design in designs},
    )
    outcomes_by_program: Dict[int, Dict[str, List]] = {}
    for unit in results:
        stats = report.per_design[unit["design"]]
        stats.programs += 1
        stats.nodes += unit["nodes"]
        stats.schedules += unit["schedules"]
        stats.sleep_pruned += unit["sleep_pruned"]
        stats.fp_pruned += unit["fp_pruned"]
        stats.truncated_programs += 1 if unit["truncated"] else 0
        stats.counterexamples += len(unit["captures"])
        outcomes_by_program.setdefault(unit["program"], {})[unit["design"]] = (
            unit["outcomes"]
        )
        for i, capture_dict in enumerate(unit["captures"]):
            path = os.path.join(
                captures_dir,
                f"modelcheck-{unit['design']}-p{unit['program']:04d}-{i}.json",
            )
            FailureCapture.from_dict(capture_dict).save(path)
            report.captures.append(path)
            if log is not None:
                log(f"counterexample: {path}")

    # Cross-target comparison: identical outcome sets per program. Only
    # meaningful for clean protocols — a mutated run diverges by design.
    if mutation is None:
        for program_index in sorted(outcomes_by_program):
            per_design = outcomes_by_program[program_index]
            reference: Optional[Tuple[str, List]] = None
            for design in designs:
                outcomes = per_design.get(design)
                if outcomes is None or not outcomes:
                    continue  # exploration failed or truncated early
                if reference is None:
                    reference = (design, outcomes)
                elif outcomes != reference[1]:
                    report.mismatches.append(
                        f"program {program_index}: {design} outcomes differ "
                        f"from {reference[0]}"
                    )
    return report


def build_parser():
    """Argument parser for ``python -m repro modelcheck`` (exposed so
    tools/check_docs.py can validate commands quoted in the docs)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro modelcheck",
        description="Bounded exhaustive exploration of every schedule of "
        "every small program, across the design tiers and the ARB, "
        "cross-checked against the sequential oracle.",
    )
    parser.add_argument("--pus", type=int, default=2, help="processing units")
    parser.add_argument(
        "--ops", type=int, default=3, help="total memory-op budget per program"
    )
    parser.add_argument(
        "--lines", type=int, default=2, help="distinct 16-byte lines"
    )
    parser.add_argument(
        "--tasks", type=int, default=None,
        help="tasks per program (default: PUs + 1, exercising PU reuse)",
    )
    parser.add_argument(
        "--designs", default=None,
        help="comma-separated targets (default: all tiers + arb)",
    )
    parser.add_argument(
        "--mutation", default=None, choices=sorted(MUTATIONS),
        help="apply a known-bad protocol mutation (kill-switch mode)",
    )
    parser.add_argument(
        "--workers", default=None,
        help="worker processes (default: REPRO_WORKERS or serial; 0 = all CPUs)",
    )
    parser.add_argument(
        "--max-nodes", type=int, default=250_000,
        help="per-unit node budget before truncation",
    )
    parser.add_argument(
        "--max-programs", type=int, default=None,
        help="check only the first N canonical programs",
    )
    parser.add_argument(
        "--captures-dir", default=DEFAULT_CAPTURES_DIR,
        help="where counterexample captures are written",
    )
    return parser


def modelcheck_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro modelcheck [--pus N] [--ops N] [--lines N] ...``"""
    args = build_parser().parse_args(argv)

    bounds = Bounds(
        pus=args.pus, ops=args.ops, lines=args.lines, tasks=args.tasks
    )
    designs = args.designs.split(",") if args.designs else None
    report = run_modelcheck(
        bounds,
        designs=designs,
        workers=args.workers,
        mutation=args.mutation,
        captures_dir=args.captures_dir,
        max_nodes=args.max_nodes,
        max_programs=args.max_programs,
        log=print,
    )
    print(report.describe())
    if args.mutation is not None:
        found = sum(s.counterexamples for s in report.per_design.values())
        if found:
            print(
                f"kill switch OK: mutation {args.mutation!r} produced "
                f"{found} counterexample(s)"
            )
            return 0
        print(f"kill switch FAILED: mutation {args.mutation!r} went undetected")
        return 1
    return 0 if report.ok else 1
