"""The exploration bound and the enumeration of small task programs.

A bound is (PUs, total memory ops, 16-byte lines, tasks). Programs are
every way to split ``ops`` loads/stores across ``tasks`` tasks over the
word locations of ``lines`` cache lines. Two symmetry reductions keep
the space honest without losing coverage:

* **location canonicalization** — renaming whole lines, or the two word
  slots within one line, maps any execution onto an isomorphic one (the
  bound geometry guarantees no replacements, so set indexing is
  unobservable). Only programs whose first-use order of lines, and of
  words within each line, is ascending are enumerated.
* **store-value independence** — store values are arbitrary labels as
  long as they are distinct, so each store writes a value determined by
  its (task, position) alone.

Tasks beyond the PU count exercise PU reuse: a freed PU's cache still
holds the previous task's committed lines, which is exactly the passive
copy reuse (T bit) and local reactivation (X bit) machinery of the EC+
designs — paths a one-task-per-PU model could never reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigError
from repro.hier.task import MemOp, TaskProgram

#: Word locations per 16-byte line (4-byte words at offsets 0 and 4;
#: offsets 8 and 12 would add symmetric slots without new behavior).
WORDS_PER_LINE = 2
WORD_SIZE = 4
LINE_SIZE = 16


@dataclass(frozen=True)
class Bounds:
    """The exploration bound: small by design, exhaustive within."""

    pus: int = 2
    ops: int = 3
    lines: int = 2
    #: Tasks to run (defaults to pus + 1, so at least one PU is reused
    #: and the passive-line reuse paths are reachable).
    tasks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pus < 2:
            raise ConfigError("bounds need at least 2 PUs (the SVC minimum)")
        if self.ops < 1 or self.lines < 1:
            raise ConfigError("bounds must be at least 1 op and 1 line")
        if self.tasks is not None and self.tasks < 1:
            raise ConfigError("bounds need at least one task")

    @property
    def n_tasks(self) -> int:
        return self.tasks if self.tasks is not None else self.pus + 1

    @property
    def n_locations(self) -> int:
        return self.lines * WORDS_PER_LINE

    def describe(self) -> str:
        return (
            f"{self.pus} PUs x {self.n_tasks} tasks, "
            f"<= {self.ops} ops over {self.lines} lines"
        )


def location_address(index: int) -> int:
    """Byte address of word location ``index``: two words per line."""
    line, word = divmod(index, WORDS_PER_LINE)
    return line * LINE_SIZE + word * WORD_SIZE


def bounds_for_programs(
    programs: Sequence[Sequence[TaskProgram]],
    pus: int = 2,
) -> Bounds:
    """A :class:`Bounds` wide enough for externally supplied programs.

    Litmus shapes and trace fragments arrive as hand-built
    ``TaskProgram`` tuples rather than enumerator output; this derives
    the bound that makes :func:`bound_geometry` replacement-free for
    them: ``ops`` covers the largest program's memory-op total, ``lines``
    covers its distinct 16-byte lines (whatever their absolute
    addresses — the geometry only needs the *count*, since its
    associativity covers the worst-case set collision), and ``tasks``
    covers the longest task list.
    """
    if not programs:
        raise ConfigError("bounds_for_programs needs at least one program")
    max_ops = 1
    max_lines = 1
    max_tasks = 1
    for program in programs:
        if not program:
            raise ConfigError("cannot bound an empty program")
        ops = sum(len(task.memory_ops) for task in program)
        lines = {
            op.addr // LINE_SIZE for task in program for op in task.memory_ops
        }
        max_ops = max(max_ops, ops)
        max_lines = max(max_lines, len(lines) or 1)
        max_tasks = max(max_tasks, len(program))
    return Bounds(
        pus=max(2, pus), ops=max_ops, lines=max_lines, tasks=max_tasks
    )


def bound_geometry(bounds: Bounds) -> CacheGeometry:
    """A geometry under which no exploration ever needs a replacement.

    Every distinct line fits a way of its set in every cache (the word
    tiers split each 16-byte line into four one-word lines over more
    sets, so they only get roomier). Replacement-freedom is what makes
    set indexing, LRU order and stalls unobservable — the soundness
    precondition of both symmetry reductions and the sleep sets.
    """
    associativity = max(2, bounds.lines * WORDS_PER_LINE)
    return CacheGeometry(
        size_bytes=associativity * LINE_SIZE * 2,
        associativity=associativity,
        line_size=LINE_SIZE,
        versioning_block_size=WORD_SIZE,
    )


def store_value(rank: int, position: int) -> int:
    """Distinct, recognizable store data per (task, op position)."""
    return (rank + 1) * 100 + position + 1


def _compositions(total: int, parts: int) -> Iterator[Tuple[int, ...]]:
    """All ways to write ``total`` as ``parts`` ordered non-negatives."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def _canonical_locations(flat: Sequence[int]) -> bool:
    """True when the location sequence is the canonical representative
    of its orbit under line renaming and within-line word swapping."""
    next_line = 0
    words_seen: dict = {}
    for loc in flat:
        line, word = divmod(loc, WORDS_PER_LINE)
        seen = words_seen.get(line)
        if seen is None:
            if line != next_line:
                return False
            next_line += 1
            seen = words_seen[line] = set()
        if word not in seen:
            if word != len(seen):
                return False
            seen.add(word)
    return True


def enumerate_programs(bounds: Bounds) -> Iterator[Tuple[TaskProgram, ...]]:
    """Every canonical program within the bound.

    A program is a tuple of ``bounds.n_tasks`` tasks whose memory ops
    total between 1 and ``bounds.ops``; each op is a load or a 4-byte
    store to one of the bound's word locations.
    """
    n_tasks = bounds.n_tasks
    n_locations = bounds.n_locations
    choices = [("load", loc) for loc in range(n_locations)] + [
        ("store", loc) for loc in range(n_locations)
    ]
    for total in range(1, bounds.ops + 1):
        for split in _compositions(total, n_tasks):
            yield from _fill_ops(split, choices, total)


def _fill_ops(
    split: Tuple[int, ...],
    choices: List[Tuple[str, int]],
    total: int,
) -> Iterator[Tuple[TaskProgram, ...]]:
    """Expand one op-count split into all canonical op assignments."""
    slots: List[Tuple[str, int]] = [("load", 0)] * total

    def emit() -> Tuple[TaskProgram, ...]:
        tasks = []
        cursor = 0
        for rank, count in enumerate(split):
            ops = []
            for position in range(count):
                kind, loc = slots[cursor]
                cursor += 1
                addr = location_address(loc)
                if kind == "load":
                    ops.append(MemOp.load(addr, WORD_SIZE))
                else:
                    ops.append(
                        MemOp.store(addr, store_value(rank, position), WORD_SIZE)
                    )
            tasks.append(TaskProgram(ops=ops, name=f"t{rank}"))
        return tuple(tasks)

    def rec(index: int) -> Iterator[Tuple[TaskProgram, ...]]:
        if index == total:
            if _canonical_locations([loc for _, loc in slots]):
                yield emit()
            return
        for choice in choices:
            slots[index] = choice
            yield from rec(index + 1)

    yield from rec(0)


def count_programs(bounds: Bounds) -> int:
    """Size of the canonical program space (for reporting)."""
    return sum(1 for _ in enumerate_programs(bounds))
