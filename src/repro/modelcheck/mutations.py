"""Known-bad protocol mutations: the model checker's kill switch.

An exhaustive checker that reports "zero violations" proves nothing
unless it demonstrably *would* report one. Each mutation here plants a
deliberate, paper-relevant bug — applied by monkeypatching one system
instance, never module state, so mutated and clean systems coexist in
one process — and the kill-switch tests assert the checker finds a
counterexample within the default bound. One mutation per design tier
exercises that tier's signature machinery:

========================  ======  ==============================================
mutation                  tier    broken mechanism
========================  ======  ==============================================
commit_writeback_dropped  base    serial commit loses dirty lines (section 3.2.6)
stale_bit_ignored         ec      T bit: stale passive copies reused (3.4.3)
squash_spares_reader      ecs     violation squash misses the violating reader
snarf_any_version         hr      snarf installs a copy of the wrong version (3.6)
compose_oldest_writer     rl      fill composes from the oldest, not closest,
                                  previous writer (3.7)
no_violation_squash       final   invalidation window never squashes (3.2.4)
========================  ======  ==============================================

A mutation name stored in :attr:`repro.replay.Case.mutation` is re-applied
at ``build_system`` time, which is what keeps kill-switch counterexample
captures replayable from the JSON file alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.modelcheck.programs import Bounds
from repro.svc.line import SVCLine
from repro.svc.vcl import CACHE, CLEAN, MEMORY
from repro.svc.vol import build_vol, clean_supplier


@dataclass(frozen=True)
class MutationSpec:
    """One registered protocol mutation."""

    name: str
    description: str
    #: Designs on which the mutated machinery is reachable.
    tiers: Tuple[str, ...]
    #: A bound within which the checker provably finds a counterexample.
    bounds: Bounds
    apply: Callable[[object], None]


_KILL_BOUNDS = Bounds(pus=2, ops=3, lines=1)


def _commit_writeback_dropped(system) -> None:
    """Base-design commit skips the bus writebacks of dirty lines, so a
    committed task's stores silently never reach memory."""
    for cache in system.caches:
        cache.dirty_active_lines = lambda: []


def _stale_bit_ignored(system) -> None:
    """probe_load treats every passive copy as fresh: the T bit is wiped
    before the reuse check, so a new task reads outdated data locally."""
    for cache in system.caches:
        original = cache.probe_load

        def probe_load(line_addr, block_mask, _cache=cache, _orig=original):
            line = _cache.line_for(line_addr)
            if line is not None and line.committed and line.stale:
                line.stale = False
            return _orig(line_addr, block_mask)

        cache.probe_load = probe_load


def _squash_spares_reader(system) -> None:
    """A dependence-violation squash starts one rank too late, leaving
    the task that performed the premature load running on stale data."""
    original = system.squash_from_rank

    def squash_from_rank(rank, reason="misprediction"):
        if reason == "violation":
            return original(rank + 1, reason)
        return original(rank, reason)

    system.squash_from_rank = squash_from_rank


def _no_violation_squash(system) -> None:
    """The invalidation window detects use-before-definition but the
    squash never happens — premature loads survive to commit."""
    original = system.squash_from_rank

    def squash_from_rank(rank, reason="misprediction"):
        if reason == "violation":
            return []
        return original(rank, reason)

    system.squash_from_rank = squash_from_rank


def _snarf_any_version(system) -> None:
    """Snarfing drops its version check: a cache copies the bus data
    even when its task's VOL position calls for a different version."""
    vcl = system.vcl

    def _snarf(requestor, line_addr, new_line, ranks):
        snarfed = []
        entries = vcl._entries(line_addr)
        vol = build_vol(entries, ranks)
        for cache in system.caches:
            cid = cache.cache_id
            if cid == requestor or cache.current_task is None:
                continue
            if cache.line_for(line_addr) is not None:
                continue
            if not cache.array.has_free_way(line_addr):
                continue
            position = vcl._insertion_index(vol, entries, ranks, ranks[cid])
            data, suppliers, stamps = vcl._compose(
                line_addr, entries, vol, position, system.amap.full_mask
            )
            # The correct implementation skips this cache when its own
            # composition differs from the bus data; the mutation
            # installs the bus line regardless.
            vcl._clear_supplier_exclusivity(entries, suppliers)
            vcl._revoke_other_exclusivity(entries, cid)
            copy = SVCLine(
                data=bytearray(new_line.data),
                valid_mask=system.amap.full_mask,
                architectural=vcl._suppliers_architectural(
                    suppliers, entries, ranks
                ),
                version_seq=new_line.version_seq,
                task_id=ranks[cid],
            )
            copy.ensure_block_stamps(system.amap.blocks_per_line)
            for block, stamp in stamps.items():
                copy.block_content[block] = stamp
            cache.install(line_addr, copy)
            entries[cid] = copy
            vol = build_vol(entries, ranks)
            snarfed.append(cid)
            system.stats.add("snarfs")
        return snarfed

    vcl._snarf = _snarf


def _compose_oldest_writer(system) -> None:
    """Fill composition supplies each block from the *oldest* previous
    writer instead of the closest one, resurrecting overwritten data."""
    vcl = system.vcl

    def _compose(line_addr, entries, vol, position, need_mask):
        amap = system.amap
        vbs = amap.versioning_block_size
        data = bytearray(amap.line_size)
        suppliers = {}
        memory_stamps = vcl.memory_stamps_for(line_addr)
        stamps = {}
        for block in amap.blocks_in_mask(need_mask):
            start = block * vbs
            bit = 1 << block
            supplier = None
            for index in range(position):  # oldest-first: the mutation
                line = entries[vol[index]]
                if line.store_mask & bit and line.valid_mask & bit:
                    supplier = vol[index]
                    break
            if supplier is not None:
                data[start : start + vbs] = entries[supplier].data[
                    start : start + vbs
                ]
                suppliers[block] = (CACHE, supplier)
                stamps[block] = entries[supplier].block_content[block]
                continue
            stamps[block] = memory_stamps[block]
            clean = clean_supplier(entries, block, memory_stamps)
            if clean is not None:
                data[start : start + vbs] = entries[clean].data[
                    start : start + vbs
                ]
                suppliers[block] = (CLEAN, clean)
            else:
                data[start : start + vbs] = system.memory.read_bytes(
                    line_addr + start, vbs
                )
                suppliers[block] = (MEMORY, None)
        return data, suppliers, stamps

    vcl._compose = _compose


MUTATIONS: Dict[str, MutationSpec] = {
    spec.name: spec
    for spec in (
        MutationSpec(
            name="commit_writeback_dropped",
            description="base commit invalidates dirty lines without the "
            "bus writebacks",
            tiers=("base",),
            bounds=_KILL_BOUNDS,
            apply=_commit_writeback_dropped,
        ),
        MutationSpec(
            name="stale_bit_ignored",
            description="passive-copy reuse ignores the T (stale) bit",
            tiers=("ec", "ecs", "hr", "rl", "final"),
            bounds=_KILL_BOUNDS,
            apply=_stale_bit_ignored,
        ),
        MutationSpec(
            name="squash_spares_reader",
            description="violation squash spares the violating reader",
            tiers=("base", "ec", "ecs", "hr", "rl", "final"),
            bounds=_KILL_BOUNDS,
            apply=_squash_spares_reader,
        ),
        MutationSpec(
            name="snarf_any_version",
            description="snarf installs the bus data regardless of the "
            "snarfing task's version",
            tiers=("hr", "rl", "final"),
            # A wrong-version snarf needs three concurrently active
            # tasks: a requestor, a version between it and the snarfer,
            # and the snarfing cache itself (which must not already
            # hold the line).
            bounds=Bounds(pus=3, ops=3, lines=1),
            apply=_snarf_any_version,
        ),
        MutationSpec(
            name="compose_oldest_writer",
            description="fill composition picks the oldest previous "
            "writer per block",
            tiers=("base", "ec", "ecs", "hr", "rl", "final"),
            bounds=_KILL_BOUNDS,
            apply=_compose_oldest_writer,
        ),
        MutationSpec(
            name="no_violation_squash",
            description="use-before-definition detected but never squashed",
            tiers=("base", "ec", "ecs", "hr", "rl", "final"),
            bounds=_KILL_BOUNDS,
            apply=_no_violation_squash,
        ),
    )
}

#: The per-tier kill switch: the mutation whose counterexample exercises
#: that tier's signature machinery.
TIER_KILL_SWITCH: Dict[str, str] = {
    "base": "commit_writeback_dropped",
    "ec": "stale_bit_ignored",
    "ecs": "squash_spares_reader",
    "hr": "snarf_any_version",
    "rl": "compose_oldest_writer",
    "final": "no_violation_squash",
}
