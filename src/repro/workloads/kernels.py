"""Algorithmic loop kernels as task programs.

The paper motivates the SVC as the memory system that lets a compiler
parallelize sequential programs *speculatively*: take a loop whose
iterations may or may not be independent, make each iteration a task,
and let the hardware detect the iterations that actually conflicted
(section 2.3: "the parallelizing software can be less conservative").

These kernels build real computations in that form; the examples and
tests execute them speculatively and check the results against plain
Python.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.rng import make_rng
from repro.hier.task import MemOp, TaskProgram

WORD = 4


def array_base(index: int, base: int = 0x10_0000) -> int:
    return base + WORD * index


def histogram_kernel(
    values: Sequence[int],
    n_bins: int,
    iterations_per_task: int = 4,
    histogram_base: int = 0x20_0000,
    input_base: int = 0x10_0000,
) -> Tuple[List[TaskProgram], Dict[int, int]]:
    """``for v in values: hist[v % n_bins] += 1`` as speculative tasks.

    Iterations conflict exactly when two nearby values share a bin — a
    data-dependent, unpredictable cross-iteration dependence that static
    parallelization must assume always exists. Returns (tasks, initial
    memory image holding the input array).
    """
    image: Dict[int, int] = {}
    for i, value in enumerate(values):
        addr = input_base + WORD * i
        for b, byte in enumerate(int(value).to_bytes(WORD, "little", signed=False)):
            image[addr + b] = byte

    tasks: List[TaskProgram] = []
    for start in range(0, len(values), iterations_per_task):
        ops: List[MemOp] = []
        for i in range(start, min(start + iterations_per_task, len(values))):
            bin_addr = histogram_base + WORD * (values[i] % n_bins)
            # load hist[bin]; add 1 (a dependent compute cycle); store
            # the incremented count (value = loaded + 1).
            load_index = len(ops)
            ops.append(MemOp.load(bin_addr))
            ops.append(MemOp.compute(latency=1, depends_on=(load_index,)))
            ops.append(
                MemOp.store(
                    bin_addr, 1,
                    depends_on=(load_index + 1,),
                    value_deps=(load_index,),
                )
            )
        tasks.append(TaskProgram(ops=ops, name=f"hist[{start}..]"))
    return tasks, image


def reference_histogram(values: Sequence[int], n_bins: int) -> List[int]:
    bins = [0] * n_bins
    for value in values:
        bins[value % n_bins] += 1
    return bins


def stencil_kernel(
    n: int,
    iterations_per_task: int = 8,
    src_base: int = 0x10_0000,
    dst_base: int = 0x30_0000,
) -> List[TaskProgram]:
    """``dst[i] = src[i-1] + src[i] + src[i+1]`` — an embarrassingly
    parallel loop (no cross-iteration output dependences): the
    speculative run should see no violation squashes at all."""
    tasks: List[TaskProgram] = []
    for start in range(1, n - 1, iterations_per_task):
        ops: List[MemOp] = []
        for i in range(start, min(start + iterations_per_task, n - 1)):
            first = len(ops)
            ops.append(MemOp.load(src_base + WORD * (i - 1)))
            ops.append(MemOp.load(src_base + WORD * i))
            ops.append(MemOp.load(src_base + WORD * (i + 1)))
            ops.append(MemOp.compute(
                latency=1, depends_on=(first, first + 1, first + 2)
            ))
            ops.append(MemOp.store(
                dst_base + WORD * i, 0,
                depends_on=(first + 3,),
                value_deps=(first, first + 1, first + 2),
            ))
        tasks.append(TaskProgram(ops=ops, name=f"stencil[{start}..]"))
    return tasks


def pointer_chase_kernel(
    chain: Sequence[int],
    updates_per_task: int = 2,
    node_base: int = 0x40_0000,
) -> Tuple[List[TaskProgram], Dict[int, int]]:
    """Linked-list value updates: node[i].value += 1 along a chain.

    ``chain`` gives the node order; node i's slot sits at
    ``node_base + 8*chain[i]`` (value word + padding). Distinct nodes
    are independent; a chain that revisits a node creates a true
    cross-task dependence.
    """
    image: Dict[int, int] = {}
    seed_rng = make_rng(1, "pointer-chase")
    for node in set(chain):
        addr = node_base + 8 * node
        for b, byte in enumerate(
            int(seed_rng.randrange(1, 100)).to_bytes(WORD, "little")
        ):
            image[addr + b] = byte

    tasks: List[TaskProgram] = []
    for start in range(0, len(chain), updates_per_task):
        ops: List[MemOp] = []
        for i in range(start, min(start + updates_per_task, len(chain))):
            addr = node_base + 8 * chain[i]
            load_index = len(ops)
            ops.append(MemOp.load(addr))
            ops.append(MemOp.compute(latency=1, depends_on=(load_index,)))
            ops.append(MemOp.store(
                addr, 1,
                depends_on=(load_index + 1,),
                value_deps=(load_index,),
            ))
        tasks.append(TaskProgram(ops=ops, name=f"chase[{start}..]"))
    return tasks, image
