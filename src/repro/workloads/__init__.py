"""Synthetic workloads standing in for the paper's SPEC95 runs.

The paper drives its evaluation with annotated MIPS binaries of seven
SPEC95 programs on a cycle-level multiscalar simulator. Without those
binaries or compiler, this package substitutes parameterized synthetic
task streams whose *address-stream statistics* — working-set size,
spatial/temporal locality, inter-task sharing, task sizes, misprediction
rates — are tuned per benchmark so the memory-system comparison sees
equivalent pressure (DESIGN.md section 3 documents the substitution).

:mod:`repro.workloads.generator` is the engine;
:mod:`repro.workloads.spec95` holds the seven calibrated profiles;
:mod:`repro.workloads.kernels` builds real algorithmic loop kernels for
the thread-level-speculation examples.
"""

from repro.workloads.generator import WorkloadSpec, generate_tasks
from repro.workloads.spec95 import SPEC95_PROFILES, spec95_tasks

__all__ = [
    "generate_tasks",
    "SPEC95_PROFILES",
    "spec95_tasks",
    "WorkloadSpec",
]
