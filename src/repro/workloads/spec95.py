"""Calibrated per-benchmark profiles for the seven SPEC95 programs.

Each profile encodes the qualitative memory behaviour the paper reports
or that is well documented for the benchmark, sized against the
evaluation's 32KB/64KB cache points:

* ``compress`` — hash/dictionary updates: heavy fine-grain read-write
  sharing between neighbouring tasks (largest SVC-vs-ARB miss-ratio gap
  in Table 2: reference spreading + migratory lines hurt private
  caches), moderate working set.
* ``gcc`` — branchy integer code: highest task-misprediction rate,
  irregular medium working set.
* ``vortex`` — object database: pointer-chasing loads (little spatial
  locality), read-mostly sharing.
* ``perl`` — interpreter: large read-only tables reused by every task
  (the one benchmark where the SVC's retained read-only lines beat the
  ARB's shared cache in Table 2).
* ``ijpeg`` — image streaming: long spatial runs, low miss ratios, few
  violations.
* ``mgrid`` — 3D stencil: working set far beyond L1 (highest miss ratio
  and the 0.75 bus utilization of Table 3), FP latencies, well-predicted
  tasks.
* ``apsi`` — FP mesh code: medium working set, moderate sharing.

The default scale gives roughly 10^5 instructions per benchmark —
enough passes over each working set for steady-state miss ratios while
the full harness stays in the minutes range. ``REPRO_SCALE`` multiplies
task counts for longer runs (the paper used 200M-instruction runs; the
statistics of these stationary streams converge far earlier).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.hier.task import TaskProgram
from repro.workloads.generator import WorkloadSpec, generate_tasks

SPEC95_PROFILES: Dict[str, WorkloadSpec] = {
    "compress": WorkloadSpec(
        name="compress",
        n_tasks=1500,
        ops_per_task_mean=56,
        memory_fraction=0.32,
        store_fraction=0.45,
        working_set_bytes=16 * 1024,
        shared_bytes=6 * 1024,
        p_shared=0.05,
        p_private=0.33,
        p_read_only=0.08,
        p_reuse=0.55,
        spatial_run=16,
        p_jump=0.30,
        private_frame_bytes=16,
        private_frames=4,
        private_store_fraction=0.45,
        shared_window_words=48,
        mispredict_rate=0.02,
        ilp_chain=0.35,
        p_load_dep=0.30,
        seed=101,
    ),
    "gcc": WorkloadSpec(
        name="gcc",
        n_tasks=1500,
        ops_per_task_mean=52,
        memory_fraction=0.34,
        store_fraction=0.30,
        working_set_bytes=12 * 1024,
        shared_bytes=3 * 1024,
        p_shared=0.05,
        p_private=0.40,
        p_read_only=0.20,
        p_reuse=0.55,
        spatial_run=12,
        p_jump=0.25,
        private_frame_bytes=16,
        private_frames=4,
        mispredict_rate=0.08,
        ilp_chain=0.35,
        p_load_dep=0.30,
        seed=102,
    ),
    "vortex": WorkloadSpec(
        name="vortex",
        n_tasks=1500,
        ops_per_task_mean=60,
        memory_fraction=0.36,
        store_fraction=0.25,
        working_set_bytes=20 * 1024,
        shared_bytes=4 * 1024,
        p_shared=0.08,
        p_private=0.35,
        p_read_only=0.18,
        p_reuse=0.55,
        spatial_run=4,
        p_jump=0.40,
        private_frame_bytes=16,
        private_frames=4,
        mispredict_rate=0.03,
        ilp_chain=0.35,
        p_load_dep=0.30,
        seed=103,
    ),
    "perl": WorkloadSpec(
        name="perl",
        n_tasks=1500,
        ops_per_task_mean=54,
        memory_fraction=0.34,
        store_fraction=0.22,
        working_set_bytes=8 * 1024,
        shared_bytes=2 * 1024,
        read_only_bytes=16 * 1024,
        p_shared=0.05,
        p_private=0.35,
        p_read_only=0.35,
        p_reuse=0.60,
        spatial_run=8,
        p_jump=0.20,
        private_frame_bytes=16,
        private_frames=4,
        read_only_hot_words=512,
        p_read_only_hot=0.85,
        mispredict_rate=0.05,
        ilp_chain=0.35,
        p_load_dep=0.30,
        seed=104,
    ),
    "ijpeg": WorkloadSpec(
        name="ijpeg",
        n_tasks=1500,
        ops_per_task_mean=64,
        memory_fraction=0.30,
        store_fraction=0.35,
        working_set_bytes=12 * 1024,
        shared_bytes=2 * 1024,
        p_shared=0.02,
        p_private=0.35,
        p_read_only=0.10,
        p_reuse=0.50,
        spatial_run=24,
        p_jump=0.05,
        private_frame_bytes=16,
        private_frames=4,
        mispredict_rate=0.01,
        imul_fraction=0.15,
        ilp_chain=0.35,
        p_load_dep=0.30,
        seed=105,
    ),
    "mgrid": WorkloadSpec(
        name="mgrid",
        n_tasks=1500,
        ops_per_task_mean=68,
        memory_fraction=0.44,
        store_fraction=0.30,
        working_set_bytes=256 * 1024,
        shared_bytes=4 * 1024,
        p_shared=0.03,
        p_private=0.22,
        p_read_only=0.04,
        p_reuse=0.38,
        spatial_run=12,
        p_jump=0.05,
        private_frame_bytes=16,
        private_frames=4,
        mispredict_rate=0.005,
        fp_fraction=0.45,
        ilp_chain=0.35,
        p_load_dep=0.30,
        seed=106,
    ),
    "apsi": WorkloadSpec(
        name="apsi",
        n_tasks=1500,
        ops_per_task_mean=60,
        memory_fraction=0.34,
        store_fraction=0.30,
        working_set_bytes=28 * 1024,
        shared_bytes=3 * 1024,
        p_shared=0.06,
        p_private=0.30,
        p_read_only=0.12,
        p_reuse=0.45,
        spatial_run=12,
        p_jump=0.15,
        private_frame_bytes=16,
        private_frames=4,
        mispredict_rate=0.02,
        fp_fraction=0.35,
        ilp_chain=0.35,
        p_load_dep=0.30,
        seed=107,
    ),
}

BENCHMARKS = tuple(SPEC95_PROFILES)

#: (benchmark, scale) -> generated task list. Generation is seeded and
#: deterministic, every machine point of a sweep replays the *same*
#: stream (that is the experiment's controlled variable), and nothing
#: mutates a generated TaskProgram in place (fault injection builds new
#: ones) — so regenerating per machine, which profiling showed costing
#: ~30% of an ARB run, is pure waste.
_TASK_CACHE: Dict[tuple, List[TaskProgram]] = {}


def scale_factor() -> float:
    """Experiment scale from the ``REPRO_SCALE`` environment variable."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def spec95_tasks(name: str, scale: float = None) -> List[TaskProgram]:
    """Task list for one benchmark profile at the requested scale."""
    try:
        spec = SPEC95_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(SPEC95_PROFILES)}"
        ) from None
    factor = scale_factor() if scale is None else scale
    key = (name, factor)
    cached = _TASK_CACHE.get(key)
    if cached is None:
        if factor != 1.0:
            spec = spec.scaled(factor)
        cached = generate_tasks(spec)
        _TASK_CACHE[key] = cached
    # A fresh list per caller: consumers may wrap or reorder it, and the
    # shared TaskProgram elements themselves are never mutated in place.
    return list(cached)
