"""Parameterized synthetic task-stream generator.

A workload is a list of :class:`TaskProgram` whose operations draw
addresses from four regions:

* **stream** — a large region walked with spatial runs; sized by
  ``working_set_bytes``, it sets the capacity-miss pressure.
* **shared** — a small region where consecutive tasks' windows overlap;
  it creates inter-task memory dependences: version forwarding when the
  producer runs ahead, violation squashes when it does not (the paper's
  "fine-grain sharing... causes the latest version of a line to
  constantly move from one L1 cache to another").
* **read-only** — loads only; the data the EC design keeps warm across
  task commits and squashes.
* **recent** — temporal reuse of the task's own recent addresses.

Compute operations form load-use dependence chains (``p_load_dep``), so
memory hit latency lands on the critical path exactly as it does in the
paper's latency sweep. All randomness derives from the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.hier.task import MemOp, OpKind, TaskProgram

_STREAM_BASE = 0x10_0000
_WORD = 4


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs describing one benchmark-like workload."""

    name: str
    n_tasks: int = 128
    ops_per_task_mean: int = 32
    memory_fraction: float = 0.35
    store_fraction: float = 0.35
    working_set_bytes: int = 64 * 1024
    shared_bytes: int = 2 * 1024
    read_only_bytes: int = 8 * 1024
    p_shared: float = 0.10
    p_read_only: float = 0.15
    p_reuse: float = 0.35
    #: Stack-frame / task-local traffic: the bulk of real references.
    #: Each task walks a small frame (chosen round-robin from a pool)
    #: with dense loads and stores, so most of its accesses hit lines it
    #: already owns — the behaviour that keeps the paper's bus
    #: utilization in the 22-36% range.
    p_private: float = 0.45
    private_frame_bytes: int = 128
    private_frames: int = 8
    private_store_fraction: float = 0.5
    spatial_run: int = 4
    #: Probability that a finished spatial run jumps to a random spot
    #: instead of continuing the cyclic walk of the working set.
    p_jump: float = 0.15
    shared_window_words: int = 32
    #: Read-only accesses draw from a hot subset this often (interpreter
    #: dispatch tables, symbol tables): the reuse the EC design retains.
    read_only_hot_words: int = 256
    p_read_only_hot: float = 0.8
    mispredict_rate: float = 0.03
    p_load_dep: float = 0.40
    ilp_chain: float = 0.50
    fp_fraction: float = 0.0
    imul_fraction: float = 0.05
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.memory_fraction <= 1.0:
            raise ConfigError("memory_fraction must be in [0, 1]")
        if self.p_private + self.p_shared + self.p_read_only > 1.0:
            raise ConfigError("region probabilities exceed 1")
        if self.n_tasks <= 0 or self.ops_per_task_mean <= 0:
            raise ConfigError("task counts must be positive")

    def scaled(self, factor: float) -> "WorkloadSpec":
        """Same behaviour, ``factor`` times as many tasks (experiment
        scaling knob)."""
        return replace(self, n_tasks=max(4, int(self.n_tasks * factor)))


class _AddressStreams:
    """Per-run address-generation state across tasks.

    Region bases are laid out contiguously (rounded to 1KB), the way a
    linker lays out data segments: large power-of-two gaps between
    regions would alias every region onto the same cache sets and
    manufacture conflict misses no real program has.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.stream_pointer = 0
        self.run_left = 0

        def _round_kb(n: int) -> int:
            return (n + 1023) & ~1023

        self.stream_base = _STREAM_BASE
        self.shared_base = self.stream_base + _round_kb(spec.working_set_bytes)
        self.read_only_base = self.shared_base + _round_kb(spec.shared_bytes)
        self.private_base = self.read_only_base + _round_kb(spec.read_only_bytes)
        self.frame_pointer = 0
        # Per-region word counts, computed once instead of per address.
        self._stream_words = max(1, spec.working_set_bytes // _WORD)
        self._shared_words = max(1, spec.shared_bytes // _WORD)
        self._shared_window = min(spec.shared_window_words, self._shared_words)
        self._frame_words = max(1, spec.private_frame_bytes // _WORD)
        self._n_frames = max(1, spec.private_frames)
        self._read_only_words = max(1, spec.read_only_bytes // _WORD)
        self._read_only_hot = min(spec.read_only_hot_words, self._read_only_words)

    def start_task(self) -> None:
        """Align the stream walk to a line boundary at task entry.

        Loop-partitioned tasks work on distinct elements; without the
        alignment, adjacent tasks would share the line straddling their
        boundary and every such line would ping-pong between two PUs —
        far more migratory traffic than real partitioned code has.
        """
        line_words = 4  # 16-byte lines, 4-byte words
        remainder = self.stream_pointer % line_words
        if remainder:
            self.stream_pointer += line_words - remainder
        self.run_left = 0

    def stream_addr(self, rng) -> int:
        """Cyclically walk the big region in spatial runs; occasional
        jumps model pointer dereferences and loop-nest switches. The
        cyclic walk is what lets a working set that fits in cache settle
        into hits after the first pass."""
        words = self._stream_words
        if self.run_left <= 0:
            if rng.random() < self.spec.p_jump:
                self.stream_pointer = rng.randrange(words)
            self.run_left = max(1, self.spec.spatial_run)
        addr = self.stream_base + (self.stream_pointer % words) * _WORD
        self.stream_pointer += 1
        self.run_left -= 1
        return addr

    def shared_addr(self, rng, rank: int) -> int:
        """An address in a window that slides one half-window per task,
        so task i overlaps tasks i-1 and i+1 — the producer/consumer
        pattern that exercises versioning."""
        words = self._shared_words
        window = self._shared_window
        base = (rank * window // 2) % words
        return self.shared_base + ((base + rng.randrange(window)) % words) * _WORD

    def private_addr(self, rng, rank: int) -> int:
        """Walk the task's stack frame densely and sequentially."""
        frame_words = self._frame_words
        frame = rank % self._n_frames
        base = self.private_base + frame * self.spec.private_frame_bytes
        self.frame_pointer += 1
        if rng.random() < 0.2:
            self.frame_pointer = rng.randrange(frame_words)
        return base + (self.frame_pointer % frame_words) * _WORD

    def read_only_addr(self, rng) -> int:
        if rng.random() < self.spec.p_read_only_hot:
            return self.read_only_base + rng.randrange(self._read_only_hot) * _WORD
        return self.read_only_base + rng.randrange(self._read_only_words) * _WORD


def generate_tasks(
    spec: WorkloadSpec, seed: Optional[int] = None
) -> List[TaskProgram]:
    """Deterministically build the task list for ``spec``."""
    rng = make_rng(spec.seed if seed is None else seed, spec.name)
    streams = _AddressStreams(spec)
    tasks: List[TaskProgram] = []
    store_counter = 1

    # Hot-loop constants hoisted out of the per-op path; the RNG draw
    # sequence is untouched, so generated workloads are bit-identical.
    random = rng.random
    p_load_dep = spec.p_load_dep
    ilp_chain = spec.ilp_chain
    memory_fraction = spec.memory_fraction
    p_private = spec.p_private
    p_private_shared = p_private + spec.p_shared
    p_private_shared_ro = p_private_shared + spec.p_read_only
    p_reuse = spec.p_reuse
    store_fraction = spec.store_fraction
    private_store_fraction = spec.private_store_fraction
    fp_fraction = spec.fp_fraction
    fp_imul_fraction = fp_fraction + spec.imul_fraction
    shared_base = streams.shared_base
    n_ops_lo = max(1, spec.ops_per_task_mean // 2)
    n_ops_hi = spec.ops_per_task_mean + spec.ops_per_task_mean // 2
    LOAD, STORE, COMPUTE = OpKind.LOAD, OpKind.STORE, OpKind.COMPUTE

    for rank in range(spec.n_tasks):
        streams.start_task()
        n_ops = rng.randint(n_ops_lo, n_ops_hi)
        ops: List[MemOp] = []
        recent_addrs: List[int] = []
        last_load: Optional[int] = None

        for _ in range(n_ops):
            depends = []
            if last_load is not None and random() < p_load_dep:
                depends.append(last_load)
            if ops and random() < ilp_chain:
                depends.append(len(ops) - 1)

            if random() < memory_fraction:
                region = random()
                if region < p_private:
                    addr = streams.private_addr(rng, rank)
                    is_store = random() < private_store_fraction
                elif region < p_private_shared:
                    addr = streams.shared_addr(rng, rank)
                    is_store = random() < store_fraction
                elif region < p_private_shared_ro:
                    addr = streams.read_only_addr(rng)
                    is_store = False
                elif recent_addrs and random() < p_reuse:
                    addr = rng.choice(recent_addrs)
                    is_store = random() < store_fraction
                else:
                    addr = streams.stream_addr(rng)
                    is_store = random() < store_fraction
                # Only stream addresses feed the temporal-reuse pool:
                # the other regions carry their own reuse structure, and
                # replaying a read-only address as a store would break
                # the region's meaning.
                if addr < shared_base:
                    recent_addrs.append(addr)
                    if len(recent_addrs) > 16:
                        recent_addrs.pop(0)
                if is_store:
                    ops.append(MemOp(STORE, addr, 4, store_counter, 1, tuple(depends)))
                    store_counter += 1
                else:
                    ops.append(MemOp(LOAD, addr, 4, 0, 1, tuple(depends)))
                    last_load = len(ops) - 1
            else:
                kind_draw = random()
                if kind_draw < fp_fraction:
                    latency = 4
                elif kind_draw < fp_imul_fraction:
                    latency = 3
                else:
                    latency = 1
                ops.append(MemOp(COMPUTE, 0, 4, 0, latency, tuple(depends)))

        tasks.append(
            TaskProgram(
                ops=ops,
                name=f"{spec.name}-task{rank}",
                mispredicted=rng.random() < spec.mispredict_rate,
            )
        )
    # The first task can never be a misprediction (nothing predicted it).
    if tasks and tasks[0].mispredicted:
        tasks[0] = TaskProgram(
            ops=tasks[0].ops, name=tasks[0].name, mispredicted=False
        )
    return tasks


_ = OpKind  # re-exported concept referenced in docstrings
