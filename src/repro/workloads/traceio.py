"""Task-trace serialization: run your own workloads through the machines.

A trace file is JSON-lines: one object per task, ops encoded compactly.
This is the interchange point for driving the SVC/ARB with externally
generated address streams (e.g. from an instrumented application or
another simulator) instead of the built-in synthetic generators.

Format (one line per task)::

    {"name": "t0", "mispredicted": false,
     "ops": [["L", addr, size],
             ["S", addr, size, value],
             ["S", addr, size, value, [value_dep, ...]],
             ["C", latency, [dep, ...]]]}

Loads may also carry a trailing dependence list. Unknown op codes are
rejected loudly; round-tripping is exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.common.errors import ConfigError
from repro.hier.task import MemOp, OpKind, TaskProgram


def _encode_op(op: MemOp) -> list:
    if op.kind == OpKind.LOAD:
        encoded = ["L", op.addr, op.size]
        if op.depends_on:
            encoded.append(list(op.depends_on))
        return encoded
    if op.kind == OpKind.STORE:
        encoded = ["S", op.addr, op.size, op.value]
        if op.value_deps or op.depends_on:
            encoded.append(list(op.value_deps))
        if op.depends_on:
            encoded.append(list(op.depends_on))
        return encoded
    if op.kind == OpKind.COMPUTE:
        return ["C", op.latency, list(op.depends_on)]
    raise ConfigError(f"cannot encode op kind {op.kind!r}")


def _int_field(encoded: list, index: int, what: str) -> int:
    """Field ``index`` as a plain int (bools are JSON ``true``/``false``
    leaking into a numeric slot — reject them explicitly)."""
    value = encoded[index]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{what} must be an int, got {value!r}")
    return value


def _dep_list(encoded: list, index: int, what: str) -> tuple:
    """Field ``index`` as a dependence list: a JSON array of ints."""
    value = encoded[index]
    if not isinstance(value, list):
        raise ConfigError(f"{what} must be a list of ints, got {value!r}")
    for dep in value:
        if isinstance(dep, bool) or not isinstance(dep, int):
            raise ConfigError(f"{what} must contain only ints, got {dep!r}")
    return tuple(value)


def _decode_op(encoded) -> MemOp:
    if not isinstance(encoded, list) or not encoded:
        raise ConfigError(f"op must be a non-empty list, got {encoded!r}")
    code = encoded[0]
    if code == "L":
        if len(encoded) not in (3, 4):
            raise ConfigError(
                f"load op takes [L, addr, size] or [L, addr, size, deps], "
                f"got {len(encoded)} fields"
            )
        deps = _dep_list(encoded, 3, "load deps") if len(encoded) > 3 else ()
        return MemOp.load(
            _int_field(encoded, 1, "load addr"),
            _int_field(encoded, 2, "load size"),
            depends_on=deps,
        )
    if code == "S":
        if len(encoded) not in (4, 5, 6):
            raise ConfigError(
                f"store op takes [S, addr, size, value] plus optional "
                f"value-dep and dep lists, got {len(encoded)} fields"
            )
        value_deps = (
            _dep_list(encoded, 4, "store value deps") if len(encoded) > 4 else ()
        )
        deps = _dep_list(encoded, 5, "store deps") if len(encoded) > 5 else ()
        return MemOp.store(
            _int_field(encoded, 1, "store addr"),
            _int_field(encoded, 3, "store value"),
            _int_field(encoded, 2, "store size"),
            value_deps=value_deps,
            depends_on=deps,
        )
    if code == "C":
        if len(encoded) != 3:
            raise ConfigError(
                f"compute op takes [C, latency, deps], got {len(encoded)} fields"
            )
        return MemOp.compute(
            latency=_int_field(encoded, 1, "compute latency"),
            depends_on=_dep_list(encoded, 2, "compute deps"),
        )
    raise ConfigError(f"unknown op code {code!r} in trace")


def dump_tasks(tasks: Iterable[TaskProgram], path: Union[str, Path]) -> None:
    """Write a task list as a JSON-lines trace file."""
    with open(path, "w") as handle:
        for task in tasks:
            record = {
                "name": task.name,
                "mispredicted": task.mispredicted,
                "ops": [_encode_op(op) for op in task.ops],
            }
            handle.write(json.dumps(record) + "\n")


def load_tasks(path: Union[str, Path]) -> List[TaskProgram]:
    """Read a JSON-lines trace file back into task programs."""
    tasks: List[TaskProgram] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"trace line {line_no}: bad JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ConfigError(
                    f"trace line {line_no}: task record must be an object, "
                    f"got {type(record).__name__}"
                )
            try:
                ops = [_decode_op(op) for op in record["ops"]]
            except ConfigError as exc:
                raise ConfigError(f"trace line {line_no}: {exc}") from exc
            except (KeyError, IndexError, TypeError) as exc:
                raise ConfigError(
                    f"trace line {line_no}: malformed op list"
                ) from exc
            tasks.append(
                TaskProgram(
                    ops=ops,
                    name=record.get("name"),
                    mispredicted=bool(record.get("mispredicted", False)),
                )
            )
    return tasks
