"""Task-trace serialization: run your own workloads through the machines.

A trace file is JSON-lines: one object per task, ops encoded compactly.
This is the interchange point for driving the SVC/ARB with externally
generated address streams (e.g. from an instrumented application or
another simulator) instead of the built-in synthetic generators.

Format (one line per task)::

    {"name": "t0", "mispredicted": false,
     "ops": [["L", addr, size],
             ["S", addr, size, value],
             ["S", addr, size, value, [value_dep, ...]],
             ["C", latency, [dep, ...]]]}

Loads may also carry a trailing dependence list. Unknown op codes are
rejected loudly; round-tripping is exact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.common.errors import ConfigError
from repro.hier.task import MemOp, OpKind, TaskProgram


def _encode_op(op: MemOp) -> list:
    if op.kind == OpKind.LOAD:
        encoded = ["L", op.addr, op.size]
        if op.depends_on:
            encoded.append(list(op.depends_on))
        return encoded
    if op.kind == OpKind.STORE:
        encoded = ["S", op.addr, op.size, op.value]
        if op.value_deps or op.depends_on:
            encoded.append(list(op.value_deps))
        if op.depends_on:
            encoded.append(list(op.depends_on))
        return encoded
    if op.kind == OpKind.COMPUTE:
        return ["C", op.latency, list(op.depends_on)]
    raise ConfigError(f"cannot encode op kind {op.kind!r}")


def _decode_op(encoded: list) -> MemOp:
    code = encoded[0]
    if code == "L":
        deps = tuple(encoded[3]) if len(encoded) > 3 else ()
        return MemOp.load(encoded[1], encoded[2], depends_on=deps)
    if code == "S":
        value_deps = tuple(encoded[4]) if len(encoded) > 4 else ()
        deps = tuple(encoded[5]) if len(encoded) > 5 else ()
        return MemOp.store(
            encoded[1], encoded[3], encoded[2],
            value_deps=value_deps, depends_on=deps,
        )
    if code == "C":
        return MemOp.compute(latency=encoded[1], depends_on=tuple(encoded[2]))
    raise ConfigError(f"unknown op code {code!r} in trace")


def dump_tasks(tasks: Iterable[TaskProgram], path: Union[str, Path]) -> None:
    """Write a task list as a JSON-lines trace file."""
    with open(path, "w") as handle:
        for task in tasks:
            record = {
                "name": task.name,
                "mispredicted": task.mispredicted,
                "ops": [_encode_op(op) for op in task.ops],
            }
            handle.write(json.dumps(record) + "\n")


def load_tasks(path: Union[str, Path]) -> List[TaskProgram]:
    """Read a JSON-lines trace file back into task programs."""
    tasks: List[TaskProgram] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"trace line {line_no}: bad JSON: {exc}") from exc
            try:
                ops = [_decode_op(op) for op in record["ops"]]
            except (KeyError, IndexError, TypeError) as exc:
                raise ConfigError(
                    f"trace line {line_no}: malformed op list"
                ) from exc
            tasks.append(
                TaskProgram(
                    ops=ops,
                    name=record.get("name"),
                    mispredicted=bool(record.get("mispredicted", False)),
                )
            )
    return tasks
