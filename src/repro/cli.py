"""Command-line interface: run the paper's experiments from a shell.

Usage (any experiment from the registry)::

    python -m repro table2 --scale 0.5
    python -m repro fig19 --benchmarks compress,mgrid
    python -m repro ablation_designs
    python -m repro list
    python -m repro replay failure.json --shrink
    python -m repro modelcheck --pus 2 --ops 3 --lines 2
    python -m repro litmus --all
    python -m repro trace fig19 --scale 0.02 --benchmarks compress
    python -m repro bench --gate
    python -m repro fig19 --workload trace:examples/traces/histogram.jsonl
    python -m repro fig19 --workers 2 --progress --stream campaign.ndjson
    python -m repro report fig19 --scale 0.05

Results print in the paper's row/series shape, with the published
numbers alongside where the paper reports them, and can additionally be
written to a file with ``--output``.

Experiments run under the supervised engine
(:mod:`repro.harness.supervisor`): ``--workers``, ``--timeout``,
``--retries`` and ``--chaos`` control the pool, and ``--resume`` serves
already-computed points from the content-addressed result store
(``--store`` / ``REPRO_RESULT_STORE``).

Exit codes are standardized: **0** full success, **1** run or point
failure (including quarantined points in a partial campaign), **2**
usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.common.errors import ConfigError, ReproError
from repro.harness.experiments import EXPERIMENTS, ExperimentResult
from repro.harness.reporting import format_series, format_table
from repro.workloads.spec95 import BENCHMARKS

#: Standardized exit codes (pinned by tests/test_cli.py).
EXIT_OK = 0
EXIT_RUN_FAILURE = 1
EXIT_USAGE = 2


def _render(result: ExperimentResult) -> str:
    name = result.experiment
    if name == "table2":
        return format_table(
            result, ["arb_32k", "svc_4x8k"], lambda p: p.miss_ratio, "miss"
        )
    if name == "table3":
        return format_table(
            result, ["svc_4x8k", "svc_4x16k"], lambda p: p.bus_utilization, "util"
        )
    if name in ("fig19", "fig20"):
        from repro.harness.charts import render_grouped_bars

        machines = ["svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c"]
        series = format_series(
            result, machines, lambda p: p.ipc, "IPC", highlight="svc_1c"
        )
        chart = render_grouped_bars(result, machines, lambda p: p.ipc, "IPC")
        return f"{series}\n\n{chart}"
    machines = sorted({p.machine for p in result.points})
    ipc = format_series(result, machines, lambda p: p.ipc, "IPC")
    miss = format_series(result, machines, lambda p: p.miss_ratio, "miss")
    return f"{ipc}\n\n{miss}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Speculative Versioning Cache evaluation "
        "(Gopal et al., HPCA 1998).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'): "
        + ", ".join(sorted(set(EXPERIMENTS) | {"list"}))
        + "; or 'replay <capture.json>' to re-run a failure capture; "
        "or 'modelcheck' for bounded exhaustive schedule exploration; "
        "or 'litmus' for the litmus-shape conformance corpus; "
        "or 'trace <experiment>' to run with telemetry and emit a "
        "Perfetto-loadable Chrome trace; "
        "or 'bench' to run the performance benchmark and its gates; "
        "or 'report <experiment>' to run a campaign and render an "
        "aggregated HTML/markdown run report",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated SPEC95 benchmark subset "
        f"(default: experiment-specific; all = {','.join(BENCHMARKS)})",
    )
    parser.add_argument(
        "--workload",
        default=None,
        metavar="NAME",
        help="run every point of the experiment on one workload instead "
        "of the benchmark set: 'trace:<file>' loads a JSON-lines trace "
        "(see docs/WORKLOADS.md), a plain name selects that SPEC95 "
        "profile; for traces, --scale repeats the whole program",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (default: REPRO_SCALE or 1.0)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered result to this file",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help="worker processes (0 = one per CPU; default: REPRO_WORKERS "
        "or serial)",
    )
    parser.add_argument(
        "--timeout",
        default=None,
        help="per-point wall-clock timeout in seconds "
        "(default: REPRO_POINT_TIMEOUT or none; needs --workers >= 2)",
    )
    parser.add_argument(
        "--retries",
        default=None,
        help="retry budget per failing point before quarantine "
        "(default: REPRO_RETRIES or 1)",
    )
    parser.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a seeded chaos plan (worker kills, exceptions, "
        "stalls) into the campaign — for testing the supervisor",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve already-computed points from the content-addressed "
        "result store; recompute only missing/changed points",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store root for --resume "
        "(default: REPRO_RESULT_STORE or .repro-results)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live campaign progress (points done/running/"
        "quarantined, retries, ETA, per-tier events/sec) on stderr",
    )
    parser.add_argument(
        "--stream",
        default=None,
        metavar="FILE",
        help="write the campaign's schema-versioned NDJSON event stream "
        "to FILE (validate with python -m repro.telemetry.stream)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "replay":
        from repro.replay import replay_main

        return replay_main(raw[1:])
    if raw and raw[0] == "modelcheck":
        from repro.modelcheck.runner import modelcheck_main

        return modelcheck_main(raw[1:])
    if raw and raw[0] == "trace":
        from repro.telemetry.trace_cli import trace_main

        return trace_main(raw[1:])
    if raw and raw[0] == "bench":
        from repro.bench_cli import bench_main

        return bench_main(raw[1:])
    if raw and raw[0] == "litmus":
        from repro.litmus.runner import litmus_main

        return litmus_main(raw[1:])
    if raw and raw[0] == "report":
        from repro.telemetry.report import report_main

        return report_main(raw[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, runner in sorted(EXPERIMENTS.items()):
            doc = (runner.__doc__ or "").strip().splitlines()[0]
            print(f"{name:20s} {doc}")
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2

    kwargs = {}
    if args.workload and args.benchmarks:
        print("--workload and --benchmarks are mutually exclusive", file=sys.stderr)
        return EXIT_USAGE
    if args.workload:
        from repro.workloads.traceprog import is_trace_workload, trace_path

        if is_trace_workload(args.workload):
            import os

            if not os.path.isfile(trace_path(args.workload)):
                print(
                    f"trace file not found: {trace_path(args.workload)}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
        elif args.workload not in BENCHMARKS:
            print(
                f"unknown workload {args.workload!r}: use a SPEC95 name "
                f"({','.join(BENCHMARKS)}) or trace:<file>",
                file=sys.stderr,
            )
            return EXIT_USAGE
        kwargs["benchmarks"] = (args.workload,)
    if args.benchmarks:
        requested = tuple(name.strip() for name in args.benchmarks.split(","))
        unknown = [name for name in requested if name not in BENCHMARKS]
        if unknown:
            print(f"unknown benchmarks: {unknown}", file=sys.stderr)
            return EXIT_USAGE
        kwargs["benchmarks"] = requested
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.resume:
        kwargs["resume"] = True

    from repro.harness.supervisor import (
        SupervisorConfig,
        resolve_point_timeout,
        resolve_retries,
        set_default_supervisor,
    )
    from repro.harness.parallel import resolve_workers

    try:
        # Validate every knob up front so garbage is a usage error (2),
        # not a mid-campaign crash.
        resolve_workers(args.workers)
        supervisor = SupervisorConfig(
            point_timeout=resolve_point_timeout(args.timeout),
            retries=resolve_retries(args.retries),
            chaos_seed=args.chaos,
            resume=args.resume,
            store_root=args.store,
            stream_path=args.stream,
            progress=args.progress,
        )
    except ConfigError as error:
        print(f"config error: {error}", file=sys.stderr)
        return EXIT_USAGE

    previous = set_default_supervisor(supervisor)
    started = time.time()
    try:
        result = EXPERIMENTS[args.experiment](**kwargs)
    except ConfigError as error:
        print(f"config error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as error:
        print(f"run failed: {error}", file=sys.stderr)
        return EXIT_RUN_FAILURE
    finally:
        set_default_supervisor(previous)
    text = _render(result)
    elapsed = time.time() - started
    header = f"== {args.experiment} ({elapsed:.1f}s) =="
    print(header)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(f"{header}\n{text}\n")
    for report in result.campaigns:
        print(f"campaign: {report.summary()}", file=sys.stderr)
    quarantined = result.quarantined_count
    if quarantined:
        print(
            f"PARTIAL CAMPAIGN: {quarantined} point(s) quarantined after "
            "exhausting retries; see the failure notes above",
            file=sys.stderr,
        )
        for report in result.campaigns:
            for outcome in report.quarantined:
                last = outcome.failures[-1] if outcome.failures else "?"
                flight = (
                    f" ({len(outcome.flight)} flight record(s) attached)"
                    if outcome.flight
                    else ""
                )
                print(
                    f"  quarantined {outcome.spec.benchmark}/"
                    f"{outcome.spec.machine}: {last}{flight}",
                    file=sys.stderr,
                )
        return EXIT_RUN_FAILURE
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
