"""Shared substrate: addresses, configuration, statistics, events, errors.

Everything in this package is protocol-agnostic plumbing used by the SVC,
the ARB baseline, the SMP coherence baseline and the timing simulator.
"""

from repro.common.addresses import AddressMap
from repro.common.config import (
    ARBConfig,
    BusConfig,
    CacheGeometry,
    ProcessorConfig,
    SVCConfig,
    TimingConfig,
)
from repro.common.errors import ConfigError, ProtocolError, SimulationError
from repro.common.events import EventLog, ProtocolEvent
from repro.common.stats import StatsRegistry

__all__ = [
    "AddressMap",
    "ARBConfig",
    "BusConfig",
    "CacheGeometry",
    "ConfigError",
    "EventLog",
    "ProcessorConfig",
    "ProtocolError",
    "ProtocolEvent",
    "SimulationError",
    "StatsRegistry",
    "SVCConfig",
    "TimingConfig",
]
