"""Lightweight statistics registry shared by all simulator components.

Components increment named counters; experiments read ratios out at the
end. A registry is plain data — no global state — so two machines under
comparison never share counters by accident.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable


class StatsRegistry:
    """Named integer counters with derived-ratio helpers."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (may be negative)."""
        self._counters[name] += amount

    def set(self, name: str, value: int) -> None:
        """Set counter ``name`` to an absolute value."""
        self._counters[name] = value

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a float; 0.0 when empty."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def names(self) -> Iterable[str]:
        return sorted(self._counters)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all counters, for reporting."""
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()

    def merge(self, other: "StatsRegistry", prefix: str = "") -> None:
        """Fold another registry's counters into this one."""
        for name, value in other.snapshot().items():
            self._counters[prefix + name] += value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatsRegistry({inner})"
