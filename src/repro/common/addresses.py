"""Byte-address arithmetic for caches with sub-block (versioning-block) state.

The paper's RL design (section 3.7) divides each address block (cache line)
into *versioning blocks*: the storage unit at which the L (load) and S
(store) bits are kept. The base design is the special case where the line
is one word and there is a single versioning block. All designs in this
repository are expressed through :class:`AddressMap`, so the base design is
simply ``AddressMap(line_size=4, versioning_block_size=4)``.

Disambiguation granularity equals ``versioning_block_size``; the paper's
byte-level disambiguation corresponds to ``versioning_block_size=1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressMap:
    """Maps byte addresses to (line, versioning block, offset) coordinates.

    Parameters
    ----------
    line_size:
        Address-block size in bytes: the unit for which a tag is kept.
    versioning_block_size:
        Sub-block size in bytes: the unit for which L/S bits are kept.
        Must divide ``line_size``.
    """

    line_size: int = 16
    versioning_block_size: int = 4

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_size):
            raise ConfigError(f"line_size must be a power of two, got {self.line_size}")
        if not _is_power_of_two(self.versioning_block_size):
            raise ConfigError(
                "versioning_block_size must be a power of two, got "
                f"{self.versioning_block_size}"
            )
        if self.versioning_block_size > self.line_size:
            raise ConfigError(
                f"versioning_block_size ({self.versioning_block_size}) exceeds "
                f"line_size ({self.line_size})"
            )
        # Address math runs on every single access, so the derived
        # constants and the mask -> block-list expansion are precomputed
        # once here (object.__setattr__ because the dataclass is frozen;
        # none of these participate in eq/hash, which stay field-based).
        object.__setattr__(self, "_offset_mask", self.line_size - 1)
        object.__setattr__(self, "_line_mask", ~(self.line_size - 1))
        object.__setattr__(
            self, "_block_shift", self.versioning_block_size.bit_length() - 1
        )
        blocks = self.line_size // self.versioning_block_size
        object.__setattr__(self, "_blocks_per_line", blocks)
        object.__setattr__(self, "_full_mask", (1 << blocks) - 1)
        object.__setattr__(
            self,
            "_mask_blocks",
            [
                [b for b in range(blocks) if mask & (1 << b)]
                for mask in range(1 << blocks)
            ]
            if blocks <= 8
            else None,
        )

    @property
    def blocks_per_line(self) -> int:
        """Number of versioning blocks in one line."""
        return self._blocks_per_line

    @property
    def full_mask(self) -> int:
        """Bitmask with one bit set per versioning block."""
        return self._full_mask

    def line_address(self, addr: int) -> int:
        """Byte address of the first byte of the line containing ``addr``."""
        return addr & self._line_mask

    def line_offset(self, addr: int) -> int:
        """Byte offset of ``addr`` within its line."""
        return addr & self._offset_mask

    def block_index(self, addr: int) -> int:
        """Versioning-block index of ``addr`` within its line."""
        return (addr & self._offset_mask) >> self._block_shift

    def block_mask(self, addr: int, size: int) -> int:
        """Bitmask of the versioning blocks touched by an access.

        ``addr``/``size`` must lie within a single line; accesses never
        straddle lines in this simulator (the workload generators align
        them), and the guard makes a violation loud rather than silent.
        """
        if size <= 0:
            raise ConfigError(f"access size must be positive, got {size}")
        first = self.block_index(addr)
        last = self.block_index(addr + size - 1)
        if self.line_address(addr) != self.line_address(addr + size - 1):
            raise ConfigError(
                f"access at {addr:#x} size {size} straddles a line boundary"
            )
        return ((1 << (last + 1)) - 1) ^ ((1 << first) - 1)

    def full_cover_mask(self, addr: int, size: int) -> int:
        """Bitmask of the versioning blocks an access covers *entirely*
        (no fill data needed to merge a store into them)."""
        mask = 0
        offset = self.line_offset(addr)
        for block in self.blocks_in_mask(self.block_mask(addr, size)):
            start = block * self.versioning_block_size
            if offset <= start and offset + size >= start + self.versioning_block_size:
                mask |= 1 << block
        return mask

    def blocks_in_mask(self, mask: int) -> list:
        """Indices of the versioning blocks named by ``mask``.

        Precomputed for every possible mask on typical geometries (up to
        8 blocks per line); callers must treat the result as read-only.
        """
        table = self._mask_blocks
        if table is not None:
            return table[mask & self._full_mask]
        return [b for b in range(self._blocks_per_line) if mask & (1 << b)]

    def byte_range_of_block(self, line_addr: int, block: int) -> range:
        """Byte addresses covered by versioning block ``block`` of a line."""
        start = line_addr + block * self.versioning_block_size
        return range(start, start + self.versioning_block_size)
