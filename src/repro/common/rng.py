"""Deterministic random-number helpers.

Every stochastic component (workload generators, misprediction models)
takes an explicit seed and derives child streams by name, so a simulation
is reproducible bit-for-bit from its configuration alone and two components
never consume each other's randomness.
"""

from __future__ import annotations

import random
import zlib


def make_rng(seed: int, stream: str = "") -> random.Random:
    """A ``random.Random`` for ``(seed, stream)``, stable across runs.

    ``stream`` namespaces the generator: ``make_rng(7, "addresses")`` and
    ``make_rng(7, "branches")`` are independent, but each is the same
    sequence every time.
    """
    mixed = seed ^ zlib.crc32(stream.encode("utf-8"))
    return random.Random(mixed)
