"""Configuration dataclasses for every machine in the repository.

The default values reproduce the paper's evaluation configuration
(section 4.2): a 4-PU multiscalar processor, 2-wide PUs, private 4-way
8KB/16KB SVC caches in 16-byte lines on a 3-cycle split-transaction
snooping bus, and a contention-free ARB of 256 rows and five stages backed
by a 32KB/64KB direct-mapped shared data cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.addresses import AddressMap
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of one cache: capacity, associativity and line layout."""

    size_bytes: int = 8 * 1024
    associativity: int = 4
    line_size: int = 16
    versioning_block_size: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ConfigError("cache size and associativity must be positive")
        if self.size_bytes % (self.associativity * self.line_size) != 0:
            raise ConfigError(
                f"{self.size_bytes}B / {self.associativity}-way / "
                f"{self.line_size}B lines does not divide into whole sets"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def address_map(self) -> AddressMap:
        # Memoized: some callers fetch this per access, and AddressMap
        # precomputes lookup tables at construction.
        cached = getattr(self, "_amap_cache", None)
        if cached is None:
            cached = AddressMap(
                line_size=self.line_size,
                versioning_block_size=self.versioning_block_size,
            )
            object.__setattr__(self, "_amap_cache", cached)
        return cached

    def set_index(self, line_addr: int) -> int:
        """Set index of a line address (direct-mapped when n_sets==1 ways)."""
        return (line_addr // self.line_size) % self.n_sets


@dataclass(frozen=True)
class BusConfig:
    """Split-transaction snooping bus (section 4.2).

    A typical transaction occupies the bus for ``transaction_cycles``; a
    flush of a committed version to the next level of memory takes one
    extra cycle (paper footnote 7). Arbitration occurs only once for
    cache-to-cache transfers.
    """

    transaction_cycles: int = 3
    commit_flush_extra_cycles: int = 1
    width_words: int = 4


class UpdatePolicy:
    """Coherence reaction of non-requesting caches to a BusWrite.

    ``INVALIDATE`` is the protocol developed through sections 3.2-3.7;
    ``UPDATE`` pushes the stored blocks into later tasks' copies instead of
    invalidating them; ``HYBRID`` (section 3.8) selects per request.
    """

    INVALIDATE = "invalidate"
    UPDATE = "update"
    HYBRID = "hybrid"

    ALL = (INVALIDATE, UPDATE, HYBRID)


@dataclass(frozen=True)
class SVCFeatures:
    """Feature flags selecting one of the paper's design levels.

    The design progression of section 3 maps onto these flags:

    ========  ============================================================
    Design    Flags
    ========  ============================================================
    BASE      all flags off (and a 1-word, 1-block line geometry)
    EC        ``lazy_commit`` (C bit) and ``stale_bit`` (T bit)
    ECS       EC + ``architectural_bit`` (A bit) + ``vol_repair``
    HR        ECS + ``snarfing``
    RL        HR + multi-word lines (geometry, not a flag here)
    FINAL     RL + ``update_policy`` other than pure invalidate, optional
              ``retain_passive_dirty``
    ========  ============================================================
    """

    lazy_commit: bool = False
    stale_bit: bool = False
    architectural_bit: bool = False
    vol_repair: bool = False
    snarfing: bool = False
    retain_passive_dirty: bool = False
    update_policy: str = UpdatePolicy.INVALIDATE

    def __post_init__(self) -> None:
        if self.update_policy not in UpdatePolicy.ALL:
            raise ConfigError(f"unknown update policy {self.update_policy!r}")
        if self.architectural_bit and not self.lazy_commit:
            raise ConfigError("the A bit (ECS) requires the C bit (EC)")
        if self.vol_repair and not self.lazy_commit:
            raise ConfigError("VOL repair (ECS) requires lazy commit (EC)")
        if self.stale_bit and not self.lazy_commit:
            raise ConfigError("the T bit is an EC-design feature")

    @classmethod
    def base(cls) -> "SVCFeatures":
        return cls()

    @classmethod
    def ec(cls) -> "SVCFeatures":
        return cls(lazy_commit=True, stale_bit=True)

    @classmethod
    def ecs(cls) -> "SVCFeatures":
        return cls(
            lazy_commit=True,
            stale_bit=True,
            architectural_bit=True,
            vol_repair=True,
        )

    @classmethod
    def hr(cls) -> "SVCFeatures":
        return replace(cls.ecs(), snarfing=True)

    @classmethod
    def rl(cls) -> "SVCFeatures":
        # RL changes the geometry, not the protocol flags beyond HR.
        return cls.hr()

    @classmethod
    def final(cls, update_policy: str = UpdatePolicy.HYBRID) -> "SVCFeatures":
        return replace(
            cls.hr(),
            update_policy=update_policy,
            retain_passive_dirty=True,
        )


@dataclass(frozen=True)
class SVCConfig:
    """One SVC memory system: N private caches, bus, VCL, next-level memory."""

    n_caches: int = 4
    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    features: SVCFeatures = field(default_factory=SVCFeatures.final)
    bus: BusConfig = field(default_factory=BusConfig)
    hit_cycles: int = 1
    miss_penalty_cycles: int = 10
    n_mshrs: int = 8
    mshr_combining: int = 4
    writeback_buffer_entries: int = 8
    check_invariants: bool = False
    #: Maintain the line-granular version directory (repro.svc.directory)
    #: so snoops resolve in O(holders) instead of scanning every cache.
    #: Off = the seed's brute-force scans; behaviour must be identical
    #: either way (enforced by repro.harness.differential).
    use_directory: bool = True
    #: Route the hot VCL snoop/supply/snarf/repair path through the
    #: structure-of-arrays kernel (repro.svc.fastpath). Off = the
    #: per-line object model alone, kept as the slow reference
    #: implementation; behaviour must be identical either way
    #: (enforced by repro.harness.differential, fastpath dimension).
    use_fastpath: bool = True

    def __post_init__(self) -> None:
        if self.n_caches < 2:
            raise ConfigError("an SVC needs at least two private caches")

    @classmethod
    def paper_32kb(cls, **overrides) -> "SVCConfig":
        """4 x 8KB, 4-way, 16B lines: the paper's 32KB-total configuration."""
        geometry = CacheGeometry(size_bytes=8 * 1024)
        return replace(cls(geometry=geometry), **overrides)

    @classmethod
    def paper_64kb(cls, **overrides) -> "SVCConfig":
        """4 x 16KB, 4-way, 16B lines: the paper's 64KB-total configuration."""
        geometry = CacheGeometry(size_bytes=16 * 1024)
        return replace(cls(geometry=geometry), **overrides)


@dataclass(frozen=True)
class ARBConfig:
    """Address Resolution Buffer and its backing shared data cache.

    The paper's ARB (section 4.2): fully associative, 256 rows, five
    stages, backed by a 32KB or 64KB direct-mapped data cache in 16-byte
    lines; hit time swept from 1 to 4 cycles; contention-free.
    """

    n_rows: int = 256
    n_stages: int = 5
    cache_geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=32 * 1024, associativity=1, line_size=16
        )
    )
    hit_cycles: int = 1
    miss_penalty_cycles: int = 10
    n_mshrs: int = 32
    mshr_combining: int = 8
    writeback_buffer_entries: int = 32

    @classmethod
    def paper_32kb(cls, hit_cycles: int = 1, **overrides) -> "ARBConfig":
        return replace(cls(hit_cycles=hit_cycles), **overrides)

    @classmethod
    def paper_64kb(cls, hit_cycles: int = 1, **overrides) -> "ARBConfig":
        geometry = CacheGeometry(
            size_bytes=64 * 1024, associativity=1, line_size=16
        )
        return replace(
            cls(cache_geometry=geometry, hit_cycles=hit_cycles), **overrides
        )


@dataclass(frozen=True)
class TimingConfig:
    """Latencies of the non-memory parts of the machine."""

    ialu_cycles: int = 1
    imul_cycles: int = 3
    fpu_cycles: int = 4
    branch_cycles: int = 1
    agen_cycles: int = 1
    register_forward_cycles: int = 1
    task_dispatch_cycles: int = 1
    squash_restart_cycles: int = 5


@dataclass(frozen=True)
class ProcessorConfig:
    """The multiscalar-like processor of section 4.2."""

    n_pus: int = 4
    issue_width: int = 2
    lsq_entries: int = 16
    timing: TimingConfig = field(default_factory=TimingConfig)

    def __post_init__(self) -> None:
        if self.n_pus < 1 or self.issue_width < 1:
            raise ConfigError("n_pus and issue_width must be positive")
