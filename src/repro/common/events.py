"""Protocol event log.

The SVC, ARB and coherence controllers emit :class:`ProtocolEvent` records
describing bus transactions, state transitions, squashes and writebacks.
The worked-example tests (paper Figures 4, 8, 9, 12-17) and the
``protocol_walkthrough`` example assert on and pretty-print this stream.

Logging is optional: components accept ``event_log=None`` and skip emission
entirely, so the timing benchmarks pay nothing for it.

The log is also the hook point for runtime verification: observers
registered with :meth:`EventLog.attach` see every event as it is
emitted, which is how :class:`repro.check.InvariantChecker` audits the
protocol after every bus transaction, commit and squash without the
protocol code knowing checkers exist. With no log there are no
observers, so the ``checker=None`` / ``event_log=None`` fast path costs
exactly what it did before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class ProtocolEvent:
    """One observable protocol action.

    ``kind`` is a short verb (``"bus_read"``, ``"invalidate"``,
    ``"squash"``, ``"writeback"``, ...); ``source`` names the component
    that emitted it; ``detail`` carries kind-specific fields.
    """

    kind: str
    source: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Single-line human-readable rendering."""
        fields = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.source}] {self.kind}({fields})"


class EventLog:
    """Append-only list of protocol events with simple query helpers."""

    def __init__(self) -> None:
        self._events: List[ProtocolEvent] = []
        self._observers: List[Callable[[ProtocolEvent], None]] = []
        #: Per-kind index so of_kind/last stop re-scanning the whole log
        #: on every worked-example assertion. Maintained *lazily*: emit
        #: and extend only append to ``_events``; the index catches up
        #: to the ``_indexed_count`` watermark the first time a per-kind
        #: query needs it. Emission — the protocol hot path — therefore
        #: pays one list append per event, batched appends pay a single
        #: pre-sized ``list.extend``, and runs that never query by kind
        #: never build the index at all.
        self._by_kind: Dict[str, List[ProtocolEvent]] = {}
        self._indexed_count = 0

    def attach(self, observer: Callable[[ProtocolEvent], None]) -> None:
        """Register an observer called with every event as it is emitted.

        Observers run synchronously, after the event is appended; an
        observer that raises (e.g. an invariant checker) aborts the
        emitting operation with the protocol state intact for post-mortem
        inspection.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def detach(self, observer: Callable[[ProtocolEvent], None]) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    def emit(self, kind: str, source: str, **detail: Any) -> None:
        event = ProtocolEvent(kind=kind, source=source, detail=detail)
        self._events.append(event)
        for observer in self._observers:
            observer(event)

    def extend(self, events: Iterable[ProtocolEvent]) -> None:
        """Append a batch of already-built events in order.

        The batch lands in one pre-sized ``list.extend`` (per-kind index
        updates stay deferred, as with :meth:`emit`); observers still
        see every event individually, in order, after the whole batch is
        appended — batch emitters use this exactly because observers
        must not see half-applied protocol state between the batch's
        events.
        """
        events = list(events)
        self._events.extend(events)
        observers = self._observers
        if observers:
            for event in events:
                for observer in observers:
                    observer(event)

    def _sync_index(self) -> None:
        """Catch the per-kind index up to the event list (lazy)."""
        events = self._events
        watermark = self._indexed_count
        if watermark == len(events):
            return
        by_kind = self._by_kind
        for event in events[watermark:]:
            index = by_kind.get(event.kind)
            if index is None:
                by_kind[event.kind] = [event]
            else:
                index.append(event)
        self._indexed_count = len(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ProtocolEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[ProtocolEvent]:
        self._sync_index()
        return list(self._by_kind.get(kind, ()))

    def last(self, kind: Optional[str] = None) -> Optional[ProtocolEvent]:
        if kind is None:
            return self._events[-1] if self._events else None
        self._sync_index()
        index = self._by_kind.get(kind)
        return index[-1] if index else None

    def clear(self) -> None:
        """Drop all events, keeping observers attached.

        The per-kind index MUST be cleared together with the event list
        (and the lazy-index watermark reset): a stale index would keep
        serving pre-clear events from :meth:`of_kind`/:meth:`last` while
        ``__iter__``/``__len__`` say the log is empty
        (tests/common/test_events.py pins this).
        """
        self._events.clear()
        self._by_kind.clear()
        self._indexed_count = 0

    def describe(self) -> str:
        """Multi-line rendering of the whole log."""
        return "\n".join(event.describe() for event in self._events)
