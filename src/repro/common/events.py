"""Protocol event log.

The SVC, ARB and coherence controllers emit :class:`ProtocolEvent` records
describing bus transactions, state transitions, squashes and writebacks.
The worked-example tests (paper Figures 4, 8, 9, 12-17) and the
``protocol_walkthrough`` example assert on and pretty-print this stream.

Logging is optional: components accept ``event_log=None`` and skip emission
entirely, so the timing benchmarks pay nothing for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class ProtocolEvent:
    """One observable protocol action.

    ``kind`` is a short verb (``"bus_read"``, ``"invalidate"``,
    ``"squash"``, ``"writeback"``, ...); ``source`` names the component
    that emitted it; ``detail`` carries kind-specific fields.
    """

    kind: str
    source: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Single-line human-readable rendering."""
        fields = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.source}] {self.kind}({fields})"


class EventLog:
    """Append-only list of protocol events with simple query helpers."""

    def __init__(self) -> None:
        self._events: List[ProtocolEvent] = []

    def emit(self, kind: str, source: str, **detail: Any) -> None:
        self._events.append(ProtocolEvent(kind=kind, source=source, detail=detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ProtocolEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[ProtocolEvent]:
        return [e for e in self._events if e.kind == kind]

    def last(self, kind: Optional[str] = None) -> Optional[ProtocolEvent]:
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()

    def describe(self) -> str:
        """Multi-line rendering of the whole log."""
        return "\n".join(event.describe() for event in self._events)
