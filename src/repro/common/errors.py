"""Exception hierarchy for the simulator.

The split matters operationally: a :class:`ConfigError` means the caller
built an impossible machine; a :class:`ProtocolError` means the simulator
itself violated an invariant (always a bug worth a report); a
:class:`SimulationError` is a runtime condition such as a deadlocked
resource that valid configurations can still reach.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class ProtocolError(ReproError):
    """A protocol invariant was violated (simulator bug, never user error)."""


class SimulationError(ReproError):
    """A runtime simulation failure (deadlock, resource exhaustion, ...)."""


class InvariantViolation(ProtocolError):
    """A runtime invariant check failed, with a structured diagnostic.

    Raised by :class:`repro.check.InvariantChecker`. ``invariant`` names
    the violated rule (see docs/INVARIANTS.md), ``subject`` identifies
    the state it was checked on (usually a line address or cache id) and
    ``detail`` carries rule-specific fields — enough for a failure
    capture to say exactly what went wrong without re-running.
    """

    def __init__(self, invariant: str, message: str, subject=None, **detail) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant
        self.subject = subject
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "message": str(self),
            "subject": self.subject,
            "detail": {k: repr(v) for k, v in self.detail.items()},
        }


class ReplacementStall(SimulationError):
    """No legal replacement victim exists for a fill.

    Speculative (active) lines may be replaced only by the head task
    (paper section 3.2.5); when every way of a set holds another task's
    irreplaceable state, the PU request must stall until this task
    becomes the head. Drivers catch this and retry after commits advance.
    """

    def __init__(self, cache_id: int, line_addr: int) -> None:
        super().__init__(
            f"cache {cache_id}: no evictable way for line {line_addr:#x}"
        )
        self.cache_id = cache_id
        self.line_addr = line_addr
