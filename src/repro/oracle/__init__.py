"""Sequential golden model for speculative-versioning correctness."""

from repro.oracle.sequential import (
    OracleResult,
    SequentialOracle,
    verify_run,
)

__all__ = ["OracleResult", "SequentialOracle", "verify_run"]
