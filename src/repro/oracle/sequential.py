"""Sequential execution oracle.

Speculative versioning exists to preserve *sequential semantics* under
out-of-order, multi-version execution (paper section 1): every committed
load must see the value the sequential execution would have produced, and
the final architected memory must equal the sequential result. This
module is that sequential execution, plus the comparator the property
tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hier.driver import DriverReport
from repro.hier.task import OpKind, TaskProgram
from repro.mem.main_memory import MainMemory


@dataclass
class OracleResult:
    """Ground truth for one program: per-task load values and memory."""

    load_values: List[List[int]]
    memory_image: Dict[int, int] = field(default_factory=dict)


class SequentialOracle:
    """Executes the task sequence one task at a time, in order."""

    def __init__(self, initial_image: Optional[Dict[int, int]] = None) -> None:
        self._initial_image = dict(initial_image or {})

    def run(self, tasks: List[TaskProgram]) -> OracleResult:
        memory = MainMemory()
        memory.load_image(self._initial_image.items())
        load_values: List[List[int]] = []
        for task in tasks:
            observed: List[int] = []
            loaded_by_index: Dict[int, int] = {}
            for position, op in enumerate(task.ops):
                if op.kind == OpKind.LOAD:
                    value = memory.read_int(op.addr, op.size)
                    observed.append(value)
                    loaded_by_index[position] = value
                elif op.kind == OpKind.STORE:
                    memory.write_int(
                        op.addr, op.size, op.store_value(loaded_by_index)
                    )
            load_values.append(observed)
        return OracleResult(load_values=load_values, memory_image=memory.image())


def verify_run(
    report: DriverReport,
    oracle: OracleResult,
    memory: MainMemory,
) -> List[str]:
    """Compare a speculative run against the oracle.

    Returns a list of human-readable discrepancies (empty means the run
    preserved sequential semantics). Checks both halves of the paper's
    correctness obligation: committed load values and the final
    architected memory image.
    """
    problems: List[str] = []
    if len(report.load_values) != len(oracle.load_values):
        problems.append(
            f"task count mismatch: ran {len(report.load_values)}, "
            f"oracle has {len(oracle.load_values)}"
        )
        return problems
    for rank, (got, want) in enumerate(zip(report.load_values, oracle.load_values)):
        if got != want:
            problems.append(
                f"task {rank}: committed loads {got} != sequential {want}"
            )
    got_image = memory.image()
    if got_image != oracle.memory_image:
        missing = {
            addr: byte
            for addr, byte in oracle.memory_image.items()
            if got_image.get(addr, 0) != byte
        }
        extra = {
            addr: byte
            for addr, byte in got_image.items()
            if oracle.memory_image.get(addr, 0) != byte
        }
        problems.append(
            f"memory image mismatch: wrong/missing={missing} unexpected={extra}"
        )
    return problems
