"""The Speculative Versioning Cache: the paper's core contribution.

Quick start::

    from repro.svc import SVCSystem
    from repro.common import SVCConfig

    svc = SVCSystem(SVCConfig.paper_32kb())
    svc.begin_task(cache_id=0, rank=0)
    svc.begin_task(cache_id=1, rank=1)
    svc.store(0, 0x100, 42)          # task 0 creates a version
    result = svc.load(1, 0x100)      # task 1 reads it across the bus
    assert result.value == 42
"""

from repro.svc.cache import ProbeOutcome, SVCCache
from repro.svc.designs import DESIGNS, design_config
from repro.svc.line import LineState, SVCLine
from repro.svc.system import AccessResult, SVCSystem
from repro.svc.vcl import BusOutcome, VersionControlLogic
from repro.svc.vol import build_vol, check_invariants

__all__ = [
    "AccessResult",
    "BusOutcome",
    "build_vol",
    "check_invariants",
    "DESIGNS",
    "design_config",
    "LineState",
    "ProbeOutcome",
    "SVCCache",
    "SVCLine",
    "SVCSystem",
    "VersionControlLogic",
]
