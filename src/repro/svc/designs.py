"""Named design levels: the paper's section-3 progression as presets.

Each preset returns an :class:`SVCConfig` so experiments can ask for
"the ECS design at 4x8KB" without assembling feature flags by hand. The
BASE design also narrows the geometry to one-word lines with a single
versioning block, matching the paper's base-design assumption.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from repro.common.config import CacheGeometry, SVCConfig, SVCFeatures, UpdatePolicy

#: Paper section introducing each design level.
DESIGN_SECTIONS = {
    "base": "3.2",
    "ec": "3.4",
    "ecs": "3.5",
    "hr": "3.6",
    "rl": "3.7",
    "final": "3.8",
}


def _word_geometry(geometry: CacheGeometry) -> CacheGeometry:
    """Same capacity/associativity, one-word lines (base design)."""
    return CacheGeometry(
        size_bytes=geometry.size_bytes,
        associativity=geometry.associativity,
        line_size=4,
        versioning_block_size=4,
    )


def base_design(config: SVCConfig = None) -> SVCConfig:
    """Section 3.2: eager commit writebacks, invalidate-all squashes,
    one-word lines."""
    config = config if config is not None else SVCConfig()
    return replace(
        config,
        features=SVCFeatures.base(),
        geometry=_word_geometry(config.geometry),
    )


def ec_design(config: SVCConfig = None) -> SVCConfig:
    """Section 3.4: lazy commit (C bit) and stale-copy reuse (T bit),
    still one-word lines. The EC design assumes no squashes; squashing
    one drops all uncommitted lines of the squashed tasks."""
    config = config if config is not None else SVCConfig()
    return replace(
        config,
        features=SVCFeatures.ec(),
        geometry=_word_geometry(config.geometry),
    )


def ecs_design(config: SVCConfig = None) -> SVCConfig:
    """Section 3.5: EC plus efficient squashes (A bit, VOL repair)."""
    config = config if config is not None else SVCConfig()
    return replace(
        config,
        features=SVCFeatures.ecs(),
        geometry=_word_geometry(config.geometry),
    )


def hr_design(config: SVCConfig = None) -> SVCConfig:
    """Section 3.6: ECS plus bus snarfing."""
    config = config if config is not None else SVCConfig()
    return replace(
        config,
        features=SVCFeatures.hr(),
        geometry=_word_geometry(config.geometry),
    )


def rl_design(config: SVCConfig = None) -> SVCConfig:
    """Section 3.7: realistic (multi-word) lines with per-block L/S."""
    config = config if config is not None else SVCConfig()
    return replace(config, features=SVCFeatures.rl())


def final_design(
    config: SVCConfig = None, update_policy: str = UpdatePolicy.HYBRID
) -> SVCConfig:
    """Section 3.8: RL plus the hybrid update-invalidate protocol and
    retained passive-dirty lines."""
    config = config if config is not None else SVCConfig()
    return replace(config, features=SVCFeatures.final(update_policy))


DESIGNS: Dict[str, Callable[..., SVCConfig]] = {
    "base": base_design,
    "ec": ec_design,
    "ecs": ecs_design,
    "hr": hr_design,
    "rl": rl_design,
    "final": final_design,
}


def design_config(name: str, config: SVCConfig = None) -> SVCConfig:
    """Preset lookup by name (``base``/``ec``/``ecs``/``hr``/``rl``/``final``)."""
    try:
        factory = DESIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown SVC design {name!r}; choose from {sorted(DESIGNS)}"
        ) from None
    return factory(config)
