"""Per-PU SVC cache controller: the processor side of the protocol.

The controller makes only *local* decisions — hit/miss/upgrade
classification, L/S bit updates, flash commit and squash — exactly the
split the paper draws between the cache FSM (Figures 10 and 18) and the
Version Control Logic. Anything requiring knowledge of other caches
(supplying versions, invalidation windows, VOL surgery) lives in
:class:`repro.svc.vcl.VersionControlLogic`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.common.config import CacheGeometry, SVCFeatures
from repro.common.errors import ProtocolError
from repro.mem.storage import SetAssociativeArray
from repro.svc.line import LineState, SVCLine


class ProbeOutcome:
    """Local classification of a PU request."""

    HIT = "hit"
    MISS = "miss"
    UPGRADE = "upgrade"  # store to a resident line lacking S coverage


class SVCCache:
    """One private L1 cache of the SVC."""

    def __init__(
        self, cache_id: int, geometry: CacheGeometry, features: SVCFeatures
    ) -> None:
        self.cache_id = cache_id
        self.geometry = geometry
        self.features = features
        self.amap = geometry.address_map
        self.array: SetAssociativeArray[SVCLine] = SetAssociativeArray(geometry)
        #: (offset << 5) | size -> partial-block RMW mask; the partial
        #: set depends only on the access shape, not the address.
        self._partial_memo = {}
        #: Line addresses made active (C clear) by the current task;
        #: the flash-commit / flash-squash working set.
        self.active_lines: Set[int] = set()
        #: Rank of the task currently executing on this cache's PU.
        self.current_task: Optional[int] = None
        #: Fault injection (repro.faults): when set, replacement picks an
        #: adversarial victim from the legal candidates instead of LRU.
        self.victim_bias_rng = None
        #: Version directory (repro.svc.directory) notified at every
        #: residency change; None when the system runs brute-force snoops.
        self.directory = None
        #: Persistent columnar engine (repro.svc.fastpath) whose cached
        #: (entries, VOL) columns must be invalidated whenever this cache
        #: changes anything VOL reconstruction depends on: residency,
        #: the C bit, or a committed line's version order. None when the
        #: system runs the reference object-model path.
        self.engine = None

    # -- lookup helpers --------------------------------------------------------

    def line_for(self, line_addr: int, touch: bool = False) -> Optional[SVCLine]:
        return self.array.lookup(line_addr, touch=touch)

    def state_of(self, line_addr: int) -> str:
        line = self.line_for(line_addr)
        return LineState.INVALID if line is None else line.state

    # -- PU-side probes ---------------------------------------------------------

    def probe_load(self, line_addr: int, block_mask: int) -> Tuple[str, Optional[SVCLine]]:
        """Classify a load. A hit needs an active line (or a reusable
        passive clean line — EC design, T clear) with valid data covering
        the accessed blocks."""
        line = self.array.lookup(line_addr)
        if line is None:
            return ProbeOutcome.MISS, None
        if not line.committed:
            if (line.valid_mask & block_mask) == block_mask:
                return ProbeOutcome.HIT, line
            # Partial-coverage active line: a miss that keeps the
            # resident line (the fill merges around its S blocks).
            return ProbeOutcome.MISS, line
        # Passive line. A passive clean copy that is not stale can be
        # reused locally: reset C, set A (section 3.5.1). A written-back
        # passive dirty line is equivalent — its version is already in
        # memory, so dropping the S bits turns it into a clean copy with
        # nothing left to lose on a squash. Everything else (stale
        # copies, unflushed versions) goes to the bus.
        if (
            self.features.stale_bit
            and (not line.dirty or line.written_back)
            and not line.stale
            and line.covers(block_mask)
        ):
            line.store_mask = 0
            line.committed = False
            line.architectural = self.features.architectural_bit
            line.written_back = False
            line.load_mask = 0
            line.task_id = self.current_task
            self.active_lines.add(line_addr)
            if self.engine is not None:
                self.engine.invalidate(line_addr)
            return ProbeOutcome.HIT, line
        return ProbeOutcome.MISS, line

    def probe_store(
        self, line_addr: int, block_mask: int, full_cover: int = 0
    ) -> Tuple[str, Optional[SVCLine]]:
        """Classify a store.

        A hit needs an active line with the X bit — no later task holds
        any copy of (or recorded interest in) this line, so the store
        needs no invalidation window — plus valid data for any partially
        covered block (the read half of the read-modify-write). A
        resident active line without exclusivity is an upgrade (BusWrite,
        possibly without data); anything else is a miss.
        """
        line = self.array.lookup(line_addr)
        if line is None:
            return ProbeOutcome.MISS, None
        if line.committed:
            # Local reactivation: our PU holds the sole, already
            # written-back committed version and no later task holds any
            # piece of the line (X set). The new task may build its
            # version in place — the old data is safe in memory, so even
            # a squash loses nothing, and with no downstream holders
            # there is no window to open.
            if (
                self.features.lazy_commit
                and line.exclusive
                and (not line.dirty or line.written_back)
                and line.covers(block_mask & ~full_cover)
            ):
                line.store_mask = 0
                line.load_mask = 0
                line.committed = False
                line.architectural = False
                line.written_back = False
                line.task_id = self.current_task
                line.version_seq = (
                    self.current_task + 1 if self.current_task is not None else 0
                )
                self.active_lines.add(line_addr)
                if self.engine is not None:
                    self.engine.invalidate(line_addr)
                return ProbeOutcome.HIT, line
            return ProbeOutcome.MISS, line
        if line.exclusive:
            need = block_mask & ~full_cover
            if (line.valid_mask & need) == need:
                return ProbeOutcome.HIT, line
        return ProbeOutcome.UPGRADE, line

    def record_load(self, line: SVCLine, block_mask: int) -> None:
        """Set L bits for loaded blocks the task has not yet defined —
        the use-before-definition record that detects violations."""
        line.load_mask |= block_mask & ~line.store_mask

    def apply_store(
        self, line: SVCLine, addr: int, size: int, value: int, block_mask: int
    ) -> None:
        """Write store data and update S/valid masks.

        A store covering only part of a versioning block is a
        read-modify-write of that block: the merged block depends on the
        pre-store bytes, so the L bit is set as well. This is what makes
        intra-block false sharing *detected* (by a violation squash)
        rather than silent — the effect section 3.7 attributes to
        coarse-grained versioning blocks.
        """
        offset = self.amap.line_offset(addr)
        line.data[offset : offset + size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")
        memo_key = (offset << 5) | size
        partial = self._partial_memo.get(memo_key)
        if partial is None:
            partial = 0
            block_bytes = self.amap.versioning_block_size
            for block in self.amap.blocks_in_mask(block_mask):
                start = block * block_bytes
                if offset > start or offset + size < start + block_bytes:
                    partial |= 1 << block
            self._partial_memo[memo_key] = partial
        line.load_mask |= partial & ~line.store_mask
        line.store_mask |= block_mask
        line.valid_mask |= block_mask

    # -- installation and replacement -------------------------------------------

    def can_evict(self, line_addr: int, line: SVCLine, is_head: bool) -> bool:
        """Replacement veto (section 3.2.5): active lines hold
        information needed for correctness and may be replaced only by
        the head (non-speculative) task; passive lines are always fair
        game."""
        if line.committed:
            return True
        return is_head

    def choose_victim(
        self, line_addr: int, is_head: bool
    ) -> Optional[Tuple[int, SVCLine]]:
        if self.victim_bias_rng is not None:
            candidates = self.array.victim_candidates(
                line_addr, lambda addr, line: self.can_evict(addr, line, is_head)
            )
            if not candidates:
                return None
            # Adversarial bias: usually evict the hottest (MRU) legal
            # line, sometimes a random one — maximal conflict churn at a
            # fixed associativity. Correctness must not depend on the
            # replacement policy, only on the can_evict veto.
            if self.victim_bias_rng.random() < 0.75:
                return candidates[-1]
            return self.victim_bias_rng.choice(candidates)
        return self.array.choose_victim(
            line_addr, lambda addr, line: self.can_evict(addr, line, is_head)
        )

    def install(self, line_addr: int, line: SVCLine) -> None:
        """Insert a freshly filled line; the caller has made room."""
        self.array.insert(line_addr, line)
        if not line.committed:
            self.active_lines.add(line_addr)
        if self.directory is not None:
            self.directory.on_install(self.cache_id, line_addr, line)
        if self.engine is not None:
            self.engine.invalidate(line_addr)

    def drop(self, line_addr: int) -> SVCLine:
        """Remove a line (invalidation, purge or cast-out)."""
        self.active_lines.discard(line_addr)
        line = self.array.remove(line_addr)
        if self.directory is not None:
            self.directory.on_drop(self.cache_id, line_addr)
        if self.engine is not None:
            self.engine.invalidate(line_addr)
        return line

    # -- task lifecycle -----------------------------------------------------------

    def begin_task(self, rank: int) -> None:
        if self.current_task is not None:
            raise ProtocolError(
                f"cache {self.cache_id} already runs task {self.current_task}"
            )
        if self.active_lines:
            raise ProtocolError(
                f"cache {self.cache_id} has active lines but no task"
            )
        self.current_task = rank

    def flash_commit(self) -> List[int]:
        """EC-design commit: set the C bit on the task's lines, locally
        and in one step (section 3.4). Returns the affected addresses."""
        committed = []
        if self.engine is not None and self.active_lines:
            self.engine.invalidate_many(self.active_lines)
        for line_addr in self.active_lines:
            line = self.array.lookup(line_addr, touch=False)
            if line is None:
                raise ProtocolError("active-line set out of sync with array")
            line.committed = True
            committed.append(line_addr)
        self.active_lines.clear()
        self.current_task = None
        return committed

    def dirty_active_lines(self) -> List[Tuple[int, SVCLine]]:
        """The current task's versions (base-design commit writes these
        back eagerly)."""
        result = []
        for line_addr in sorted(self.active_lines):
            line = self.array.lookup(line_addr, touch=False)
            if line is not None and line.dirty:
                result.append((line_addr, line))
        return result

    def flash_invalidate_all(self) -> None:
        """Base-design commit/squash epilogue: drop every line."""
        if self.directory is not None or self.engine is not None:
            addrs = [addr for addr, _ in self.array.lines()]
            if self.directory is not None:
                self.directory.on_clear(self.cache_id, addrs)
            if self.engine is not None:
                self.engine.invalidate_many(addrs)
        self.array.clear()
        self.active_lines.clear()

    def flash_squash(self) -> List[int]:
        """Squash the current task's speculative state.

        ECS design: active lines with the A bit set and no dirty data are
        retained as passive clean (architectural data survives squashes);
        everything else the task touched is invalidated. Returns the
        addresses whose lines were dropped (their VOLs now dangle until
        the VCL repairs them on the next bus request).
        """
        dropped = []
        if self.engine is not None and self.active_lines:
            self.engine.invalidate_many(self.active_lines)
        for line_addr in sorted(self.active_lines):
            line = self.array.lookup(line_addr, touch=False)
            if line is None:
                raise ProtocolError("active-line set out of sync with array")
            if self.features.architectural_bit and line.architectural and not line.dirty:
                line.committed = True
                line.load_mask = 0
                line.task_id = None
                # A squashed task's copy has no exclusivity claim: X
                # would wrongly authorize a silent local reactivation.
                line.exclusive = False
            else:
                self.array.remove(line_addr)
                if self.directory is not None:
                    self.directory.on_drop(self.cache_id, line_addr)
                dropped.append(line_addr)
        self.active_lines.clear()
        self.current_task = None
        return dropped

    def lines(self) -> Iterable[Tuple[int, SVCLine]]:
        return self.array.lines()
