"""Persistent columnar protocol engine for the hot VCL bus path.

:class:`FastpathKernel` is the structure-of-arrays fast path behind
``SVCConfig.use_fastpath``. PR 7 introduced it as a *transaction-scoped*
accelerator: flat columns (bitmasks, content stamps, VOL order) were
rebuilt from the :class:`~repro.svc.line.SVCLine` objects on every bus
transaction. This version promotes it to a **persistent columnar
engine**: the expensive derived state — the per-line holder snapshot in
canonical (ascending cache id) order and the reconstructed Version
Ordering List — now lives across bus transactions in
:attr:`_snaps` and is *incrementally invalidated* at exactly the points
where the object model changes anything the columns depend on:

* install / drop (residency changes),
* flash commit, flash squash and flash invalidate (C-bit waves and
  rank retirement),
* the local reactivation paths in ``probe_load`` / ``probe_store``
  (a passive line silently turning active).

:class:`repro.svc.cache.SVCCache` calls :meth:`invalidate` /
:meth:`invalidate_many` from those points, mirroring how the version
directory is maintained. Everything *else* the protocol does to a line —
L/S/valid mask updates, byte writes, content stamps, X/T/A bits, pointer
repair — leaves VOL membership and order untouched, so the snapshot
stays valid and the next transaction on the line pays **zero** snoops
and zero ``build_vol`` calls. The ``SVCLine`` objects remain the source
of truth for per-line *bits* (the snapshot holds references, not
copies), which is what makes the narrow invalidation set sufficient:
only membership, the C bit, committed ``version_seq`` order and the
rank map can reorder a VOL, and each of those has exactly one mutation
point, all hooked.

On top of the persistent columns the kernel keeps PR 7's fused
kernels — stamp-compare snarfing, one-pass VOL repair, copy-free
residency checks — now all fed from :meth:`acquire` so a whole bus
transaction (snoop, committed purge, snarf and final repair) resolves
against at most one column rebuild instead of three to four.

Invariants
----------

1. **Observable equivalence.** With ``SVCConfig.use_fastpath`` off, the
   VCL runs the original per-line object model (the executable
   reference specification); with it on, every event stream, statistics
   snapshot, committed load value and final memory image must be
   byte-identical. Enforced by :mod:`repro.harness.differential`
   (fastpath dimension) across all six design tiers with fault plans,
   and by the conformance corpus pinning default-configuration event
   streams.
2. **Snapshot freshness.** A cached ``(entries, vol)`` snapshot is
   bit-equal to what a fresh directory snoop plus ``build_vol`` would
   produce, at every moment it is served. :meth:`audit` re-derives
   every cached snapshot from the materialized ``SVCLine`` state and
   raises on the first divergence; :meth:`repro.svc.system.SVCSystem.
   verify` runs it (so ``--verify`` harness runs cross-check the
   columns the same way they cross-check the directory and rank maps).
3. **Stamps name exact data states.** The stamp-compare snarf accept is
   sound because a content stamp is allocated globally (one per store,
   :meth:`repro.svc.system.SVCSystem.next_content_seq`) and written
   back alongside the bytes it stamps — equal stamps at the same
   (line, block) imply equal bytes. When a candidate's stamps do *not*
   match, the kernel falls back to the reference byte composition and
   comparison, so stamp mismatches can only cost time, never
   correctness (tests/svc/test_fastpath.py pins the fallback).
4. **Canonical snapshot order.** Cached snapshots are always built in
   ascending cache-id order (the brute-force scan's order), and a
   snapshot mutated by the snarf install loop is never re-cached —
   order-sensitive helpers (``clean_supplier``) must see exactly the
   iteration order the reference path sees.

docs/PERFORMANCE.md documents the column lifecycle and the measured
effect; docs/ARCHITECTURE.md places the engine in the subsystem map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.svc.line import SVCLine
from repro.svc.vol import (
    build_vol,
    check_invariants,
    clean_supplier,
    closest_previous_writer,
)
from repro.telemetry import VOL_WALK

# Mirror repro.svc.vcl's supplier source tags (importing vcl here would
# be circular: vcl imports this module at wiring time).
MEMORY = "memory"
CACHE = "cache"
CLEAN = "clean"


class FastpathKernel:
    """Persistent SoA columns + fused kernels behind ``use_fastpath``."""

    __slots__ = (
        "vcl",
        "system",
        "_full_mask",
        "_n_blocks",
        "_blocks_in_mask",
        "_snaps",
        "snap_hits",
        "snap_builds",
    )

    def __init__(self, vcl) -> None:
        self.vcl = vcl
        self.system = vcl.system
        amap = self.system.amap
        self._full_mask = amap.full_mask
        self._n_blocks = amap.blocks_per_line
        self._blocks_in_mask = amap.blocks_in_mask
        #: Persistent columns: line_addr -> (entries, vol). ``entries``
        #: is the canonical ascending-cache-id holder snapshot, ``vol``
        #: the reconstructed ordering. Only *valid* snapshots are kept;
        #: the maintenance hooks below pop on any order-relevant change.
        self._snaps: Dict[int, Tuple[Dict[int, SVCLine], List[int]]] = {}
        #: Cheap effectiveness counters (read by the bench tooling and
        #: the audit tests; never consulted by protocol logic).
        self.snap_hits = 0
        self.snap_builds = 0
        # Register for incremental maintenance, exactly like the
        # version directory: caches notify on every residency or
        # activation change.
        for cache in self.system.caches:
            cache.engine = self

    # -- persistent column maintenance ---------------------------------------

    def invalidate(self, line_addr: int) -> None:
        """Drop the cached columns of one line (membership / C-bit /
        rank-relevant change)."""
        self._snaps.pop(line_addr, None)

    def invalidate_many(self, line_addrs) -> None:
        """Drop cached columns for many lines (flash commit/squash)."""
        pop = self._snaps.pop
        for line_addr in line_addrs:
            pop(line_addr, None)

    def acquire(self, line_addr: int) -> Tuple[Dict[int, SVCLine], List[int]]:
        """The ``(entries, vol)`` columns for one line.

        Serves the persistent snapshot when the incremental-maintenance
        hooks have not invalidated it; otherwise rebuilds it once — in
        canonical ascending cache-id order — and re-caches it. The
        returned dict is shared protocol-wide: readers must not mutate
        it except through the install hooks (the snarf loop mutates its
        *local* reference only after an install has already popped the
        snapshot, so a cached dict is never a mutated one).
        """
        snap = self._snaps.get(line_addr)
        if snap is not None:
            self.snap_hits += 1
            return snap
        system = self.system
        directory = system.directory
        if directory is not None:
            entries = directory.entries(line_addr)
        else:
            entries = {}
            for cache in system.caches:
                line = cache.line_for(line_addr)
                if line is not None:
                    entries[cache.cache_id] = line
        vol = build_vol(entries, system._active_ranks)
        snap = (entries, vol)
        self._snaps[line_addr] = snap
        self.snap_builds += 1
        return snap

    def audit(self) -> None:
        """Cross-check every cached column set against the materialized
        ``SVCLine`` state (the new ``--verify`` invariant).

        Re-derives each snapshot the slow way — a fresh holder scan and
        a fresh ``build_vol`` — and requires the cached version to hold
        the *same line objects* under the same cache ids in the same
        canonical order, with the identical VOL. A stale snapshot would
        let a snoop resolve against yesterday's ordering, so any
        divergence is a protocol violation, not a cache miss.
        """
        system = self.system
        ranks = system._active_ranks
        for line_addr, (entries, vol) in self._snaps.items():
            actual: Dict[int, SVCLine] = {}
            for cache in system.caches:
                line = cache.line_for(line_addr)
                if line is not None:
                    actual[cache.cache_id] = line
            if list(entries) != sorted(actual):
                raise ProtocolError(
                    f"fastpath column desync for {line_addr:#x}: cached "
                    f"holders {sorted(entries)} vs arrays {sorted(actual)}"
                )
            for cache_id, line in actual.items():
                if entries[cache_id] is not line:
                    raise ProtocolError(
                        f"fastpath column for {line_addr:#x} cache "
                        f"{cache_id} tracks a different line object than "
                        "the array holds"
                    )
            if build_vol(actual, ranks) != vol:
                raise ProtocolError(
                    f"fastpath VOL column for {line_addr:#x} is {vol} but "
                    f"a fresh reconstruction orders {build_vol(actual, ranks)}"
                )

    def clear(self) -> None:
        """Drop every cached column (end-of-run teardown)."""
        self._snaps.clear()

    # -- rank columns --------------------------------------------------------

    def ranks(self) -> Dict[int, int]:
        """The live ``cache_id -> rank`` map (never mutated by readers).

        The slow path copies this dict on every snoop so callers could
        mutate it freely; no VCL code path ever does, so the fast path
        hands out the incrementally maintained map itself.
        """
        return self.system._active_ranks

    # -- supply plans --------------------------------------------------------

    def supply_plan(
        self,
        line_addr: int,
        entries: Dict[int, SVCLine],
        vol: List[int],
        position: int,
    ) -> Tuple[Dict[int, Tuple[str, Optional[int]]], List[int]]:
        """Per-block (supplier, stamp) columns for a full-line fill at
        ``position`` — the metadata half of :meth:`VersionControlLogic.
        _compose`, with no byte movement and no memory reads."""
        memory_stamps = self.vcl.memory_stamps_for(line_addr)
        suppliers: Dict[int, Tuple[str, Optional[int]]] = {}
        stamps = [0] * self._n_blocks
        for block in range(self._n_blocks):
            writer = closest_previous_writer(entries, vol, position, block)
            if writer is not None:
                suppliers[block] = (CACHE, writer)
                stamps[block] = entries[writer].block_content[block]
                continue
            stamps[block] = memory_stamps[block]
            clean = clean_supplier(entries, block, memory_stamps)
            if clean is not None:
                suppliers[block] = (CLEAN, clean)
            else:
                suppliers[block] = (MEMORY, None)
        return suppliers, stamps

    @staticmethod
    def _emit_supply_span(telemetry, position, suppliers) -> None:
        """The VOL_WALK span the reference ``_compose`` would have
        emitted for this candidate, so traces keep the same shape on
        both paths."""
        span = telemetry.begin(
            VOL_WALK, "supply walk", phase="supply", position=position
        )
        sources = [src for src, _ in suppliers.values()]
        telemetry.end(
            span,
            blocks=len(suppliers),
            from_versions=sources.count(CACHE),
            from_clean=sources.count(CLEAN),
            from_memory=sources.count(MEMORY),
        )

    # -- snarf ---------------------------------------------------------------

    def snarf(
        self,
        requestor: int,
        line_addr: int,
        new_line: SVCLine,
        ranks: Dict[int, int],
    ) -> List[int]:
        """HR-design snarfing with stamp-compare accept.

        Observably identical to the reference loop in
        :meth:`VersionControlLogic._snarf`: the same candidates are
        visited in the same order and the same copies are installed with
        the same bits. Only the *mechanism* differs — a candidate whose
        supply-plan stamps equal the bus line's stamps is accepted
        without composing a byte buffer (invariant 3 in the module
        docstring), and plans are memoized per insertion position until
        an install changes the VOL.
        """
        system = self.system
        vcl = self.vcl
        telemetry = system.telemetry
        snarfed: List[int] = []
        entries, vol = self.acquire(line_addr)
        plans: Dict[int, Tuple[Dict[int, Tuple[str, Optional[int]]], List[int]]] = {}
        for cache in system.caches:
            cid = cache.cache_id
            if cid == requestor or cache.current_task is None:
                continue
            if cache.line_for(line_addr) is not None:
                continue
            if not cache.array.has_free_way(line_addr):
                continue
            position = vcl._insertion_index(vol, entries, ranks, ranks[cid])
            plan = plans.get(position)
            if plan is None:
                plan = self.supply_plan(line_addr, entries, vol, position)
                plans[position] = plan
            suppliers, stamps = plan
            if stamps == new_line.block_content:
                data = new_line.data
                if telemetry is not None:
                    self._emit_supply_span(telemetry, position, suppliers)
            else:
                data, suppliers, stamp_map = vcl._compose(
                    line_addr, entries, vol, position, self._full_mask
                )
                if bytes(data) != bytes(new_line.data):
                    continue
                stamps = [stamp_map.get(b, 0) for b in range(self._n_blocks)]
            vcl._clear_supplier_exclusivity(entries, suppliers)
            vcl._revoke_other_exclusivity(entries, cid)
            copy = SVCLine(
                data=bytearray(data),
                valid_mask=self._full_mask,
                architectural=vcl._suppliers_architectural(
                    suppliers, entries, ranks
                ),
                version_seq=new_line.version_seq,
                task_id=ranks[cid],
            )
            copy.ensure_block_stamps(self._n_blocks)
            copy.block_content[:] = stamps
            # install pops the cached snapshot first; the local dict is
            # then mutated to match, exactly like the reference loop,
            # and is deliberately NOT re-cached (invariant 4: its
            # iteration order is insertion order, not canonical).
            cache.install(line_addr, copy)
            entries[cid] = copy
            vol = build_vol(entries, ranks)
            plans.clear()
            snarfed.append(cid)
            system.stats.add("snarfs")
        return snarfed

    # -- fused VOL repair ----------------------------------------------------

    def finalize(self, line_addr: int) -> None:
        """Pointer rewrite + T-bit refresh in one backward VOL pass.

        Matches :meth:`VersionControlLogic._finalize_impl` exactly:
        pointers mirror the rebuilt VOL, tail stamps are the newest
        ``store_mask & valid_mask`` writer of each block (else the
        memory stamp), and a line is stale iff any valid block's stamp
        differs from the tail stamp. Runs against :meth:`acquire`, so a
        transaction that changed nothing order-relevant repairs against
        the persistent columns with no rebuild at all — and leaves the
        rebuilt snapshot cached for the next transaction on the line.
        """
        vcl = self.vcl
        system = self.system
        entries, vol = self.acquire(line_addr)
        ranks = system._active_ranks

        # Late-bound through the vcl module namespace: the pointer
        # rewrite is a deliberate seam (the checker's seeded-bug drill
        # patches ``repro.svc.vcl.rewrite_pointers``), and both paths
        # must break identically when it is broken.
        import repro.svc.vcl as vcl_module

        if len(vol) == 1:
            # Sole-holder fast path: the pointer is trivially None and
            # the tail stamps collapse to "own written blocks over the
            # memory image", so staleness reduces to any valid,
            # unwritten block diverging from the memory stamp.
            only = entries[vol[0]]
            vcl_module.rewrite_pointers(entries, vol)
            if system.features.stale_bit:
                memory_stamps = vcl.memory_stamps_for(line_addr)
                content = only.block_content
                stale = False
                for block in self._blocks_in_mask(
                    only.valid_mask & ~only.store_mask
                ):
                    if content[block] != memory_stamps[block]:
                        stale = True
                        break
                only.stale = stale
            if system.config.check_invariants:
                check_invariants(
                    entries,
                    vol,
                    ranks,
                    vcl.memory_stamps_for(line_addr),
                    check_stale=system.features.stale_bit,
                )
            return

        vcl_module.rewrite_pointers(entries, vol)

        if system.features.stale_bit:
            memory_stamps = vcl.memory_stamps_for(line_addr)
            tail = list(memory_stamps)
            remaining = self._full_mask
            for cid in reversed(vol):
                if not remaining:
                    break
                line = entries[cid]
                writes = line.store_mask & line.valid_mask & remaining
                if writes:
                    content = line.block_content
                    mask, block = writes, 0
                    while mask:
                        if mask & 1:
                            tail[block] = content[block]
                        mask >>= 1
                        block += 1
                    remaining &= ~writes
            for cid in vol:
                line = entries[cid]
                content = line.block_content
                mask, block = line.valid_mask, 0
                stale = False
                while mask:
                    if mask & 1 and content[block] != tail[block]:
                        stale = True
                        break
                    mask >>= 1
                    block += 1
                line.stale = stale

        if system.config.check_invariants:
            check_invariants(
                entries,
                vol,
                ranks,
                vcl.memory_stamps_for(line_addr),
                check_stale=system.features.stale_bit,
            )

    # -- residency checks ----------------------------------------------------

    def is_sole_holder(self, line_addr: int, requestor: int) -> bool:
        """``set(holders) == {requestor}`` without snapshotting holders."""
        directory = self.system.directory
        if directory is not None:
            holders = directory.holder_map(line_addr)
            return (
                holders is not None
                and len(holders) == 1
                and requestor in holders
            )
        found_self = False
        for cache in self.system.caches:
            if cache.line_for(line_addr) is None:
                continue
            if cache.cache_id != requestor:
                return False
            found_self = True
        return found_self

    def others_all_invalid(self, line_addr: int, requestor: int) -> bool:
        """No cache but the requestor holds any valid data for the line."""
        directory = self.system.directory
        if directory is not None:
            holders = directory.holder_map(line_addr)
            if holders is None:
                return True
            for cid, line in holders.items():
                if cid != requestor and line.valid_mask != 0:
                    return False
            return True
        for cache in self.system.caches:
            if cache.cache_id == requestor:
                continue
            line = cache.line_for(line_addr)
            if line is not None and line.valid_mask != 0:
                return False
        return True


__all__ = ["FastpathKernel"]
