"""Structure-of-arrays fast path for the hot VCL protocol loop.

:class:`FastpathKernel` reimplements the three dominant pieces of the
bus-side hot path — snarf candidate evaluation, post-transaction VOL
repair, and the exclusivity (X-bit) residency checks — against
flat, transaction-scoped columns instead of repeated per-line object
walks and dict copies:

* **Supply plans without data movement.** A snarf candidate is accepted
  or rejected from the per-block *content stamps* of its would-be fill
  (one flat stamp column per insertion position, memoized across
  candidates) instead of composing the full byte buffer per candidate
  and comparing it against the bus data.
* **Fused VOL repair.** Pointer rewrite, tail-stamp computation and
  T-bit refresh run in one backward pass over the VOL using bitmask
  columns (``store_mask & valid_mask``) rather than one
  ``closest_previous_writer`` scan per block plus one ``is_fresh`` scan
  per line.
* **Copy-free residency checks.** Sole-holder and all-others-invalid
  questions read the version directory's holder map in place instead of
  materializing a fresh snapshot dict per question.
* **Live rank columns.** The VCL reads the system's incrementally
  maintained ``cache_id -> rank`` map directly instead of copying it on
  every snoop (the map is only ever read during a transaction).

Invariants
----------

1. **Observable equivalence.** With ``SVCConfig.use_fastpath`` off, the
   VCL runs the original per-line object model (the slow reference
   implementation); with it on, every event stream, statistics
   snapshot, committed load value and final memory image must be
   byte-identical. This is enforced the same way the PR-2 version
   directory is: :mod:`repro.harness.differential` (fastpath dimension)
   replays seeded workloads both ways across all six design tiers with
   fault plans attached, and the conformance corpus pins the event
   streams the default (fastpath-on) configuration emits.
2. **Stamps name exact data states.** The stamp-compare snarf accept is
   sound because a content stamp is allocated globally (one per store,
   :meth:`repro.svc.system.SVCSystem.next_content_seq`) and written
   back alongside the bytes it stamps — equal stamps at the same
   (line, block) imply equal bytes. The T-bit staleness machinery and
   clean-supply matching (:func:`repro.svc.vol.clean_supplier`) already
   rely on exactly this invariant; when a candidate's stamps do *not*
   match, the kernel falls back to the reference byte composition and
   comparison, so stamp mismatches can only cost time, never
   correctness.
3. **No new state across transactions.** The kernel holds no mutable
   protocol state: columns and plans live only for one bus transaction,
   and the :class:`~repro.svc.line.SVCLine` objects remain the single
   source of truth. There is nothing to desynchronize between requests.

docs/PERFORMANCE.md explains the measured effect and the bench gate
(per-tier events/sec floors); docs/ARCHITECTURE.md places the kernel in
the subsystem map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.svc.line import SVCLine
from repro.svc.vol import (
    build_vol,
    check_invariants,
    clean_supplier,
    closest_previous_writer,
)
from repro.telemetry import VOL_WALK

# Mirror repro.svc.vcl's supplier source tags (importing vcl here would
# be circular: vcl imports this module at wiring time).
MEMORY = "memory"
CACHE = "cache"
CLEAN = "clean"


class FastpathKernel:
    """Transaction-scoped SoA kernels behind ``SVCConfig.use_fastpath``."""

    __slots__ = ("vcl", "system", "_full_mask", "_n_blocks")

    def __init__(self, vcl) -> None:
        self.vcl = vcl
        self.system = vcl.system
        amap = self.system.amap
        self._full_mask = amap.full_mask
        self._n_blocks = amap.blocks_per_line

    # -- rank columns --------------------------------------------------------

    def ranks(self) -> Dict[int, int]:
        """The live ``cache_id -> rank`` map (never mutated by readers).

        The slow path copies this dict on every snoop so callers could
        mutate it freely; no VCL code path ever does, so the fast path
        hands out the incrementally maintained map itself.
        """
        return self.system._active_ranks

    # -- supply plans --------------------------------------------------------

    def supply_plan(
        self,
        line_addr: int,
        entries: Dict[int, SVCLine],
        vol: List[int],
        position: int,
    ) -> Tuple[Dict[int, Tuple[str, Optional[int]]], List[int]]:
        """Per-block (supplier, stamp) columns for a full-line fill at
        ``position`` — the metadata half of :meth:`VersionControlLogic.
        _compose`, with no byte movement and no memory reads."""
        memory_stamps = self.vcl.memory_stamps_for(line_addr)
        suppliers: Dict[int, Tuple[str, Optional[int]]] = {}
        stamps = [0] * self._n_blocks
        for block in range(self._n_blocks):
            writer = closest_previous_writer(entries, vol, position, block)
            if writer is not None:
                suppliers[block] = (CACHE, writer)
                stamps[block] = entries[writer].block_content[block]
                continue
            stamps[block] = memory_stamps[block]
            clean = clean_supplier(entries, block, memory_stamps)
            if clean is not None:
                suppliers[block] = (CLEAN, clean)
            else:
                suppliers[block] = (MEMORY, None)
        return suppliers, stamps

    @staticmethod
    def _emit_supply_span(telemetry, position, suppliers) -> None:
        """The VOL_WALK span the reference ``_compose`` would have
        emitted for this candidate, so traces keep the same shape on
        both paths."""
        span = telemetry.begin(
            VOL_WALK, "supply walk", phase="supply", position=position
        )
        sources = [src for src, _ in suppliers.values()]
        telemetry.end(
            span,
            blocks=len(suppliers),
            from_versions=sources.count(CACHE),
            from_clean=sources.count(CLEAN),
            from_memory=sources.count(MEMORY),
        )

    # -- snarf ---------------------------------------------------------------

    def snarf(
        self,
        requestor: int,
        line_addr: int,
        new_line: SVCLine,
        ranks: Dict[int, int],
    ) -> List[int]:
        """HR-design snarfing with stamp-compare accept.

        Observably identical to the reference loop in
        :meth:`VersionControlLogic._snarf`: the same candidates are
        visited in the same order and the same copies are installed with
        the same bits. Only the *mechanism* differs — a candidate whose
        supply-plan stamps equal the bus line's stamps is accepted
        without composing a byte buffer (invariant 2 in the module
        docstring), and plans are memoized per insertion position until
        an install changes the VOL.
        """
        system = self.system
        vcl = self.vcl
        telemetry = system.telemetry
        snarfed: List[int] = []
        entries = vcl._entries(line_addr)
        vol = build_vol(entries, ranks)
        plans: Dict[int, Tuple[Dict[int, Tuple[str, Optional[int]]], List[int]]] = {}
        for cache in system.caches:
            cid = cache.cache_id
            if cid == requestor or cache.current_task is None:
                continue
            if cache.line_for(line_addr) is not None:
                continue
            if not cache.array.has_free_way(line_addr):
                continue
            position = vcl._insertion_index(vol, entries, ranks, ranks[cid])
            plan = plans.get(position)
            if plan is None:
                plan = self.supply_plan(line_addr, entries, vol, position)
                plans[position] = plan
            suppliers, stamps = plan
            if stamps == new_line.block_content:
                data = new_line.data
                if telemetry is not None:
                    self._emit_supply_span(telemetry, position, suppliers)
            else:
                data, suppliers, stamp_map = vcl._compose(
                    line_addr, entries, vol, position, self._full_mask
                )
                if bytes(data) != bytes(new_line.data):
                    continue
                stamps = [stamp_map.get(b, 0) for b in range(self._n_blocks)]
            vcl._clear_supplier_exclusivity(entries, suppliers)
            vcl._revoke_other_exclusivity(entries, cid)
            copy = SVCLine(
                data=bytearray(data),
                valid_mask=self._full_mask,
                architectural=vcl._suppliers_architectural(
                    suppliers, entries, ranks
                ),
                version_seq=new_line.version_seq,
                task_id=ranks[cid],
            )
            copy.ensure_block_stamps(self._n_blocks)
            copy.block_content[:] = stamps
            cache.install(line_addr, copy)
            entries[cid] = copy
            vol = build_vol(entries, ranks)
            plans.clear()
            snarfed.append(cid)
            system.stats.add("snarfs")
        return snarfed

    # -- fused VOL repair ----------------------------------------------------

    def finalize(self, line_addr: int) -> None:
        """Pointer rewrite + T-bit refresh in one backward VOL pass.

        Matches :meth:`VersionControlLogic._finalize_impl` exactly:
        pointers mirror the rebuilt VOL, tail stamps are the newest
        ``store_mask & valid_mask`` writer of each block (else the
        memory stamp), and a line is stale iff any valid block's stamp
        differs from the tail stamp.
        """
        vcl = self.vcl
        system = self.system
        entries = vcl._entries(line_addr)
        ranks = system._active_ranks
        vol = build_vol(entries, ranks)

        # Late-bound through the vcl module namespace: the pointer
        # rewrite is a deliberate seam (the checker's seeded-bug drill
        # patches ``repro.svc.vcl.rewrite_pointers``), and both paths
        # must break identically when it is broken.
        import repro.svc.vcl as vcl_module

        vcl_module.rewrite_pointers(entries, vol)

        if system.features.stale_bit:
            memory_stamps = vcl.memory_stamps_for(line_addr)
            tail = list(memory_stamps)
            remaining = self._full_mask
            for cid in reversed(vol):
                if not remaining:
                    break
                line = entries[cid]
                writes = line.store_mask & line.valid_mask & remaining
                if writes:
                    content = line.block_content
                    mask, block = writes, 0
                    while mask:
                        if mask & 1:
                            tail[block] = content[block]
                        mask >>= 1
                        block += 1
                    remaining &= ~writes
            for cid in vol:
                line = entries[cid]
                content = line.block_content
                mask, block = line.valid_mask, 0
                stale = False
                while mask:
                    if mask & 1 and content[block] != tail[block]:
                        stale = True
                        break
                    mask >>= 1
                    block += 1
                line.stale = stale

        if system.config.check_invariants:
            check_invariants(
                entries,
                vol,
                ranks,
                vcl.memory_stamps_for(line_addr),
                check_stale=system.features.stale_bit,
            )

    # -- residency checks ----------------------------------------------------

    def is_sole_holder(self, line_addr: int, requestor: int) -> bool:
        """``set(holders) == {requestor}`` without snapshotting holders."""
        directory = self.system.directory
        if directory is not None:
            holders = directory.holder_map(line_addr)
            return (
                holders is not None
                and len(holders) == 1
                and requestor in holders
            )
        found_self = False
        for cache in self.system.caches:
            if cache.line_for(line_addr) is None:
                continue
            if cache.cache_id != requestor:
                return False
            found_self = True
        return found_self

    def others_all_invalid(self, line_addr: int, requestor: int) -> bool:
        """No cache but the requestor holds any valid data for the line."""
        directory = self.system.directory
        if directory is not None:
            holders = directory.holder_map(line_addr)
            if holders is None:
                return True
            for cid, line in holders.items():
                if cid != requestor and line.valid_mask != 0:
                    return False
            return True
        for cache in self.system.caches:
            if cache.cache_id == requestor:
                continue
            line = cache.line_for(line_addr)
            if line is not None and line.valid_mask != 0:
                return False
        return True


__all__ = ["FastpathKernel"]
