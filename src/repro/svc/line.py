"""SVC cache-line state: the bits of the paper's Figures 6, 11 and 16.

Each line carries, in addition to tag and data:

* per-versioning-block **S** (store) and **L** (load) masks — the RL
  design of section 3.7; the base design is the one-block special case,
* a per-block **valid** mask — which blocks of the data are usable; a
  forward store from an earlier task invalidates the overlapped blocks of
  later copies (the sub-block generalization of the base design's
  whole-line invalidate),
* **C** (commit), **T** (stale) and **A** (architectural) bits from the
  EC/ECS designs,
* the VOL **pointer**: the cache holding the next copy/version, and
* a **version sequence number** stamped by the VCL when the line becomes
  a version. Committed versions must stay totally ordered even after
  silent evictions punch holes in the pointer chain; the stamp is the
  functional model of the order the chain encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


class LineState:
    """The five stable states of the final design's FSM (Figure 18)."""

    INVALID = "Invalid"
    ACTIVE_CLEAN = "ActiveClean"
    ACTIVE_DIRTY = "ActiveDirty"
    PASSIVE_CLEAN = "PassiveClean"
    PASSIVE_DIRTY = "PassiveDirty"


@dataclass(slots=True)
class SVCLine:
    """One resident SVC line. ``data`` always spans the full line.

    ``slots=True``: millions of lines are created per timing sweep, and
    the protocol hot paths read these fields constantly; slot access
    avoids a per-instance ``__dict__`` in both time and space.
    """

    data: bytearray
    valid_mask: int = 0
    store_mask: int = 0
    load_mask: int = 0
    committed: bool = False
    stale: bool = False
    architectural: bool = False
    #: The X (exclusive) bit of section 3.8.1: set when no later task
    #: holds a copy of (or interest in) this version, so a store to an
    #: owned block may complete locally. Cleared whenever the line
    #: supplies data to a later task's fill or snarf, or when the
    #: write-update policy leaves live copies downstream. Without it, a
    #: second store to an owned block would silently invalidate copies
    #: that later tasks already loaded — an undetected violation.
    exclusive: bool = False
    pointer: Optional[int] = None
    version_seq: int = 0
    #: Per-versioning-block stamp of the version *state* each block's
    #: data reflects. Stamps are allocated globally per BusWrite; a
    #: block copied from a supplier inherits the supplier's stamp for
    #: that block, a block copied from memory inherits the memory
    #: stamp the VCL tracks per line address. Unlike ``version_seq`` —
    #: which orders committed versions by task — block stamps identify
    #: exact data states, which is what the T (stale) bit needs: a line
    #: is reusable by a new task only when every valid block matches
    #: the stamp the tail-of-VOL composition would supply.
    block_content: List[int] = field(default_factory=list)
    task_id: Optional[int] = field(default=None, compare=False)
    #: Set when a retained committed version has been flushed to memory;
    #: a later purge then skips the redundant writeback.
    written_back: bool = False

    @property
    def dirty(self) -> bool:
        """True when the line holds a version (any S bit set)."""
        return self.store_mask != 0

    @property
    def state(self) -> str:
        """The Figure-18 state this line is in."""
        if self.committed:
            return LineState.PASSIVE_DIRTY if self.dirty else LineState.PASSIVE_CLEAN
        return LineState.ACTIVE_DIRTY if self.dirty else LineState.ACTIVE_CLEAN

    def ensure_block_stamps(self, n_blocks: int) -> None:
        """Initialize the per-block stamp array (idempotent)."""
        if len(self.block_content) != n_blocks:
            self.block_content = [0] * n_blocks

    def covers(self, mask: int) -> bool:
        """True when every block in ``mask`` holds valid data."""
        return (self.valid_mask & mask) == mask

    def read(self, offset: int, size: int) -> int:
        """Little-endian value of ``size`` bytes at ``offset``."""
        return int.from_bytes(self.data[offset : offset + size], "little")

    def write(self, offset: int, size: int, value: int) -> None:
        mask = (1 << (8 * size)) - 1
        self.data[offset : offset + size] = (value & mask).to_bytes(size, "little")

    def describe(self) -> str:
        """Compact rendering used by tests and the walkthrough example."""
        bits = []
        if self.store_mask:
            bits.append("S")
        if self.load_mask:
            bits.append("L")
        if self.committed:
            bits.append("C")
        if self.stale:
            bits.append("T")
        if self.architectural:
            bits.append("A")
        if self.exclusive:
            bits.append("X")
        flag_text = "".join(bits) or "-"
        ptr_text = "-" if self.pointer is None else str(self.pointer)
        return f"{flag_text}/ptr={ptr_text}"
