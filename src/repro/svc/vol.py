"""Version Ordering List construction, search and repair.

The VOL of a line is the program order among its copies and versions
(paper section 2.3). Physically it is a pointer chain through the lines;
logically, on every bus request the VCL reconstructs it from the snooped
states plus the task-assignment order, exactly as the paper's VCL does:

* **committed entries** (C set) form a prefix. Committed *versions*
  (passive dirty) are ordered by the version sequence stamp — the
  functional equivalent of the pointer-chain order, robust to holes that
  silent evictions of clean lines punch in the chain. Committed *copies*
  (passive clean) carry no ordering obligation (they never supply data or
  receive writeback order); they are placed after the committed versions.
* **active entries** (C clear) are ordered by the current task rank of
  the PU owning each cache — the "implicit total order among the PUs"
  the paper derives from task assignment.

After each bus request the VCL rewrites every line's pointer to mirror the
reconstructed order, which is how the paper's ECS design repairs dangling
pointers after squashes (Figure 17).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ProtocolError
from repro.svc.line import SVCLine


def build_vol(
    entries: Dict[int, SVCLine],
    task_rank_of_cache: Dict[int, int],
) -> List[int]:
    """Reconstruct the logical VOL order for one line address.

    Parameters
    ----------
    entries:
        ``cache_id -> line`` for every cache currently holding the line.
    task_rank_of_cache:
        ``cache_id -> rank`` of the task currently assigned to each PU;
        smaller rank means older in program order. Caches holding only
        committed state need not appear.

    Returns
    -------
    Cache ids in VOL order (oldest first).
    """
    committed_versions = []
    committed_copies = []
    active = []
    for cache_id, line in entries.items():
        if line.committed:
            if line.dirty:
                committed_versions.append(cache_id)
            else:
                committed_copies.append(cache_id)
        else:
            if cache_id not in task_rank_of_cache:
                raise ProtocolError(
                    f"cache {cache_id} holds an active line but runs no task"
                )
            active.append(cache_id)

    committed_versions.sort(key=lambda cid: entries[cid].version_seq)
    # Committed copies: order is immaterial; keep deterministic by the
    # sequence of the version they copied (0 for architectural copies).
    committed_copies.sort(key=lambda cid: (entries[cid].version_seq, cid))
    active.sort(key=lambda cid: task_rank_of_cache[cid])
    return committed_versions + committed_copies + active


def rewrite_pointers(entries: Dict[int, SVCLine], vol: List[int]) -> None:
    """Make every line's pointer name its VOL successor (repair step)."""
    for index, cache_id in enumerate(vol):
        nxt = vol[index + 1] if index + 1 < len(vol) else None
        entries[cache_id].pointer = nxt


def last_version_index(entries: Dict[int, SVCLine], vol: List[int]) -> Optional[int]:
    """Index in ``vol`` of the most recent version, or ``None`` if no
    cache holds a version (all entries are copies)."""
    for index in range(len(vol) - 1, -1, -1):
        if entries[vol[index]].dirty:
            return index
    return None


def tail_stamps(
    entries: Dict[int, SVCLine],
    vol: List[int],
    memory_stamps: List[int],
) -> List[int]:
    """The per-block content stamps a brand-new tail task's fill would
    receive: the closest previous writer's stamp for each block, falling
    back to the stamp of the bytes last written back to memory."""
    n_blocks = len(memory_stamps)
    stamps = list(memory_stamps)
    for block in range(n_blocks):
        writer = closest_previous_writer(entries, vol, len(vol), block)
        if writer is not None:
            stamps[block] = entries[writer].block_content[block]
    return stamps


def is_fresh(line: SVCLine, tail: List[int]) -> bool:
    """Whether every valid block of ``line`` holds the data a tail-task
    fill would be supplied — the reuse-safety condition behind T."""
    for block, stamp in enumerate(tail):
        if line.valid_mask & (1 << block) and line.block_content[block] != stamp:
            return False
    return True


def refresh_stale_bits(
    entries: Dict[int, SVCLine],
    vol: List[int],
    memory_stamps: List[int],
) -> None:
    """Enforce the T-bit invariant of section 3.4.3.

    The paper's statement — the most recent version and its copies have
    T clear, all other versions and copies have T set — generalizes
    under versioning blocks to: a line is *not stale* exactly when every
    valid block matches the state a tail-of-VOL composition would
    supply. With one block per line the two statements coincide; with
    several, block-accurate stamps are required because a write-update
    patch can freshen one block of a copy while the rest stay old.
    """
    tail = tail_stamps(entries, vol, memory_stamps)
    for cache_id in vol:
        line = entries[cache_id]
        line.stale = not is_fresh(line, tail)


def closest_previous_writer(
    entries: Dict[int, SVCLine],
    vol: List[int],
    position: int,
    block: int,
) -> Optional[int]:
    """Cache id of the closest previous version of ``block`` before VOL
    index ``position``, or ``None`` when memory must supply it.

    Only an entry with the S bit set *and* valid data for the block can
    supply it; an entry whose block was invalidated by a forward store
    cannot (its data there is a hole).
    """
    bit = 1 << block
    for index in range(position - 1, -1, -1):
        line = entries[vol[index]]
        if line.store_mask & bit and line.valid_mask & bit:
            return vol[index]
    return None


def clean_supplier(
    entries: Dict[int, SVCLine],
    block: int,
    memory_stamps: List[int],
) -> Optional[int]:
    """A cache able to supply ``block`` as a clean (architectural) copy.

    Any resident line whose block carries the same content stamp as the
    bytes last written back to memory holds exactly the architectural
    data — the cache-to-cache transfer of read-only data the paper
    mentions in section 3.8.1. Position in the VOL is irrelevant:
    the data equals memory's.
    """
    bit = 1 << block
    for cache_id, line in entries.items():
        if line.valid_mask & bit and line.block_content[block] == memory_stamps[block]:
            return cache_id
    return None


def check_invariants(
    entries: Dict[int, SVCLine],
    vol: List[int],
    task_rank_of_cache: Dict[int, int],
    memory_stamps: List[int],
    check_stale: bool = True,
) -> None:
    """Debug-mode consistency checks run after every bus request.

    ``check_stale`` is cleared for designs below EC, which have no T
    bit to audit (Figure 11)."""
    if sorted(vol) != sorted(entries):
        raise ProtocolError("VOL does not cover exactly the valid entries")
    # Committed prefix property.
    seen_active = False
    for cache_id in vol:
        if entries[cache_id].committed:
            if seen_active:
                raise ProtocolError("committed entry after an active entry in VOL")
        else:
            seen_active = True
    # Active entries ascend in task rank.
    active_ranks = [
        task_rank_of_cache[cid] for cid in vol if not entries[cid].committed
    ]
    if active_ranks != sorted(active_ranks):
        raise ProtocolError("active VOL entries out of task order")
    # Committed versions ascend in stamp order.
    stamps = [
        entries[cid].version_seq
        for cid in vol
        if entries[cid].committed and entries[cid].dirty
    ]
    if stamps != sorted(stamps):
        raise ProtocolError("committed versions out of stamp order")
    # Pointer chain mirrors the order.
    for index, cache_id in enumerate(vol):
        expected = vol[index + 1] if index + 1 < len(vol) else None
        if entries[cache_id].pointer != expected:
            raise ProtocolError(
                f"pointer of cache {cache_id} is {entries[cache_id].pointer}, "
                f"expected {expected}"
            )
    # T-bit invariant.
    if check_stale:
        tail = tail_stamps(entries, vol, memory_stamps)
        for cache_id in vol:
            line = entries[cache_id]
            if line.stale != (not is_fresh(line, tail)):
                raise ProtocolError(f"T bit wrong on cache {cache_id}")
