"""Line-granular version directory: snoop filtering for the VCL.

The seed implementation resolved every bus request by brute force —
``for cache in self.system.caches: cache.line_for(line_addr)`` — an
O(n_caches × lookup) broadcast snoop per transaction, repeated several
times per request (fill composition, purge, exclusivity checks, VOL
repair). Directory-style filtering of broadcast snoops is the classic
fix: keep, per line address, the set of caches that currently hold the
line, and consult only those.

:class:`VersionDirectory` is that filter. It maps ``line_addr ->
{cache_id: SVCLine}`` and is maintained *incrementally* at the only
points where residency changes — :meth:`repro.svc.cache.SVCCache.install`,
:meth:`~repro.svc.cache.SVCCache.drop` and the flash squash/invalidate
paths — so a snapshot costs O(holders) instead of O(n_caches × ways).
The line *objects* are shared with the cache arrays, so per-line bits
(C, T, A, X, masks) read through the directory are always current; only
residency needs explicit bookkeeping.

The directory is a pure accelerator: :class:`repro.svc.vcl.
VersionControlLogic` falls back to the brute-force scan when
``SVCConfig.use_directory`` is off, and the two paths are required to be
*byte-identical* in observable behaviour (event streams, stats, memory
images) — enforced by :mod:`repro.harness.differential` and the
property tests. In the spirit of RealityCheck, the fast path is
verified against the slow path rather than trusted:
:meth:`VersionDirectory.audit` cross-checks the directory against a
full array scan, and both :meth:`repro.svc.system.SVCSystem.verify` and
the runtime :class:`repro.check.InvariantChecker` run it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.errors import ProtocolError
from repro.svc.line import SVCLine


class VersionDirectory:
    """Incrementally maintained map of line address -> holder set."""

    __slots__ = ("_holders",)

    def __init__(self) -> None:
        #: line_addr -> {cache_id: line}. Holder dicts are keyed by
        #: cache id; :meth:`entries` returns them in ascending cache-id
        #: order, matching the brute-force scan's iteration order so the
        #: two paths are observably identical.
        self._holders: Dict[int, Dict[int, SVCLine]] = {}

    # -- maintenance (called from SVCCache at every residency change) -------

    def on_install(self, cache_id: int, line_addr: int, line: SVCLine) -> None:
        holders = self._holders.get(line_addr)
        if holders is None:
            holders = {}
            self._holders[line_addr] = holders
        holders[cache_id] = line

    def on_drop(self, cache_id: int, line_addr: int) -> None:
        holders = self._holders.get(line_addr)
        if holders is None or cache_id not in holders:
            raise ProtocolError(
                f"directory desync: cache {cache_id} dropped line "
                f"{line_addr:#x} it was never recorded as holding"
            )
        del holders[cache_id]
        if not holders:
            del self._holders[line_addr]

    def on_clear(self, cache_id: int, line_addrs: Iterable[int]) -> None:
        """Flash invalidate: one cache drops every listed line at once."""
        for line_addr in line_addrs:
            self.on_drop(cache_id, line_addr)

    # -- queries -------------------------------------------------------------

    def entries(self, line_addr: int) -> Dict[int, SVCLine]:
        """Fresh ``{cache_id: line}`` snapshot for one line, ascending by
        cache id (callers mutate the returned dict)."""
        holders = self._holders.get(line_addr)
        if not holders:
            return {}
        if len(holders) == 1:
            return dict(holders)
        return {cid: holders[cid] for cid in sorted(holders)}

    def holder_map(self, line_addr: int) -> Optional[Dict[int, SVCLine]]:
        """The *internal* holder dict for one line, or ``None``.

        Zero-copy accessor for the fastpath kernel's residency checks;
        callers must treat the result as read-only.
        """
        return self._holders.get(line_addr)

    def holder_ids(self, line_addr: int) -> List[int]:
        holders = self._holders.get(line_addr)
        return sorted(holders) if holders else []

    def addresses(self) -> List[int]:
        """All line addresses with at least one holder, ascending."""
        return sorted(self._holders)

    def holder_count(self, line_addr: int) -> int:
        holders = self._holders.get(line_addr)
        return len(holders) if holders else 0

    def __len__(self) -> int:
        return len(self._holders)

    def __iter__(self) -> Iterator[Tuple[int, Dict[int, SVCLine]]]:
        return iter(self._holders.items())

    # -- verification --------------------------------------------------------

    def audit(self, caches) -> None:
        """Differential check of the fast path against the slow path.

        Rebuilds the holder map by brute-force scan of every cache array
        and raises :class:`ProtocolError` on the first disagreement —
        a missing holder would let a snoop skip a cache that holds the
        line (an undetected violation), a phantom holder would corrupt
        VOL construction.
        """
        actual: Dict[int, Dict[int, SVCLine]] = {}
        for cache in caches:
            for line_addr, line in cache.lines():
                actual.setdefault(line_addr, {})[cache.cache_id] = line
        if set(actual) != set(self._holders):
            missing = sorted(set(actual) - set(self._holders))
            phantom = sorted(set(self._holders) - set(actual))
            raise ProtocolError(
                "version directory address set diverged from the cache "
                f"arrays (missing={list(map(hex, missing))}, "
                f"phantom={list(map(hex, phantom))})"
            )
        for line_addr, holders in actual.items():
            recorded = self._holders[line_addr]
            if set(holders) != set(recorded):
                raise ProtocolError(
                    f"version directory holder set for {line_addr:#x} is "
                    f"{sorted(recorded)} but the arrays hold "
                    f"{sorted(holders)}"
                )
            for cache_id, line in holders.items():
                if recorded[cache_id] is not line:
                    raise ProtocolError(
                        f"version directory for {line_addr:#x} cache "
                        f"{cache_id} tracks a different line object than "
                        "the array holds"
                    )

    def clear(self) -> None:
        self._holders.clear()
