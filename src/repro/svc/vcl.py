"""Version Control Logic: the bus-side brain of the SVC (section 3.8.2).

On every bus request the VCL sees the snooped line states of all caches,
reconstructs the Version Ordering List, and orchestrates everything the
paper assigns to it:

* supply the correct version for a load (closest previous version per
  versioning block, else architected memory),
* open the invalidation window of a store and detect memory-dependence
  violations (squashes),
* purge committed versions — writing back the newest and dropping the
  ones it covers (the EC design's lazy commit),
* repair VOLs broken by squashes and silent evictions,
* maintain the T (stale) and A (architectural) bits,
* offer snarf opportunities to caches that could use the data (HR), and
* apply the write-update leg of the hybrid update–invalidate protocol.

The VCL mutates cache lines directly: in hardware it would emit per-cache
responses that the controllers apply; collapsing the two steps changes no
observable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bus.requests import BusRequestKind
from repro.common.config import UpdatePolicy
from repro.common.errors import ProtocolError, ReplacementStall
from repro.svc.line import SVCLine
from repro.svc.vol import (
    build_vol,
    check_invariants,
    clean_supplier,
    closest_previous_writer,
    refresh_stale_bits,
    rewrite_pointers,
)
from repro.telemetry import (
    BUS_TXN,
    FANOUT_EDGES,
    SNOOP,
    VOL_REPAIR,
    VOL_WALK,
    WB_DRAIN,
)

MEMORY = "memory"
CACHE = "cache"  # a version supplied speculative data
CLEAN = "clean"  # another cache supplied an architectural copy


@dataclass(slots=True)
class BusOutcome:
    """What one bus request did, for stats, timing and the driver."""

    kind: str
    end_cycle: int
    from_memory: bool = False
    cache_to_cache: bool = False
    flushes: int = 0
    squashed_ranks: List[int] = field(default_factory=list)
    snarfed_caches: List[int] = field(default_factory=list)
    invalidations: int = 0
    updates: int = 0


class VersionControlLogic:
    """Combinational logic shared by all caches on the snooping bus."""

    def __init__(self, system) -> None:
        self.system = system
        #: Per-line-address stamps of the block states last written back
        #: to memory. A fill block supplied by memory inherits this
        #: stamp, so staleness checks can tell copies of the current
        #: architectural image from copies of an older one.
        self._memory_stamps: Dict[int, List[int]] = {}
        #: Structure-of-arrays kernel for the hot snarf/repair/residency
        #: path (repro.svc.fastpath); None runs the reference per-line
        #: object model. Observable behaviour is identical either way
        #: (repro.harness.differential, fastpath dimension).
        self._fast = None
        if system.config.use_fastpath:
            from repro.svc.fastpath import FastpathKernel

            self._fast = FastpathKernel(self)
        #: Telemetry histogram handles, captured at wiring time like the
        #: bus's: snoop-shape metrics stay *exact* even when the timing
        #: simulator unwires ``system.telemetry`` for sampled-out
        #: memory-op subtrees (only spans are sampled, never metrics).
        self._hist_fanout = None
        self._hist_vol = None
        self._fanout_batch = None
        self._vol_batch = None
        if system.telemetry is not None:
            self._hist_fanout = system.telemetry.histogram(
                "svc.snoop_fanout", FANOUT_EDGES, unit="caches"
            )
            self._hist_vol = system.telemetry.histogram(
                "svc.vol_length", FANOUT_EDGES, unit="versions"
            )
            #: Batched per-snoop observations (index = fan-out / VOL
            #: length, both bounded by the cache count): the snoop hot
            #: path pays one list increment per histogram instead of a
            #: call; the flush hook drains before every snapshot, so
            #: the metrics stay exact.
            self._fanout_batch = [0] * (len(system.caches) + 1)
            self._vol_batch = [0] * (len(system.caches) + 1)
            system.telemetry.on_snapshot(self._flush_snoop_shape)

    def _flush_snoop_shape(self) -> None:
        """Drain batched snoop-shape counts into the histograms
        (idempotent: counts are zeroed as they flush)."""
        for batch, hist in (
            (self._fanout_batch, self._hist_fanout),
            (self._vol_batch, self._hist_vol),
        ):
            if batch is None:
                continue
            for value, count in enumerate(batch):
                if count:
                    hist.observe_many(value, count)
                    batch[value] = 0

    @property
    def fastpath(self):
        """The :class:`repro.svc.fastpath.FastpathKernel` in use, or
        ``None`` when ``SVCConfig.use_fastpath`` selected the reference
        per-line object model."""
        return self._fast

    def memory_stamps_for(self, line_addr: int) -> List[int]:
        stamps = self._memory_stamps.get(line_addr)
        if stamps is None:
            stamps = [0] * self.system.amap.blocks_per_line
            self._memory_stamps[line_addr] = stamps
        return stamps

    # -- snapshot helpers ---------------------------------------------------

    def _entries(self, line_addr: int) -> Dict[int, SVCLine]:
        """Holder snapshot for one line: O(holders) via the version
        directory, else the seed's brute-force snoop of every cache.
        Both paths return a fresh dict in ascending cache-id order, so
        they are observably interchangeable (callers mutate the result)."""
        directory = self.system.directory
        if directory is not None:
            return directory.entries(line_addr)
        entries = {}
        for cache in self.system.caches:
            line = cache.line_for(line_addr)
            if line is not None:
                entries[cache.cache_id] = line
        return entries

    def _ranks(self) -> Dict[int, int]:
        if self._fast is not None:
            # Live map; every VCL reader is read-only (fastpath kernel).
            return self._fast.ranks()
        return self.system.current_ranks()

    def _snoop(self, line_addr: int, telemetry):
        """Holder snapshot + rank map + VOL reconstruction for one bus
        request, traced as a single snoop span with fan-out/VOL-length
        histograms. ``telemetry=None`` skips the span; the batched
        histogram counts accumulate whenever the handles were wired
        (metrics are exact even when spans are being sampled)."""
        fast = self._fast
        if telemetry is None:
            if fast is not None:
                # Persistent columns: the snapshot survives across bus
                # transactions and is rebuilt only after an
                # incremental-maintenance invalidation (see
                # repro.svc.fastpath). The shared dict is read-only to
                # every caller on this path.
                entries, vol = fast.acquire(line_addr)
                ranks = self.system._active_ranks
            else:
                entries = self._entries(line_addr)
                ranks = self._ranks()
                vol = build_vol(entries, ranks)
            if self._fanout_batch is not None:
                self._fanout_batch[len(entries)] += 1
                self._vol_batch[len(vol)] += 1
            return entries, ranks, vol
        span = telemetry.begin(SNOOP, f"snoop {line_addr:#x}", line_addr=line_addr)
        if fast is not None:
            entries, vol = fast.acquire(line_addr)
            ranks = self.system._active_ranks
        else:
            entries = self._entries(line_addr)
            ranks = self._ranks()
            vol = build_vol(entries, ranks)
        if self._fanout_batch is not None:
            self._fanout_batch[len(entries)] += 1
            self._vol_batch[len(vol)] += 1
        telemetry.end(span, holders=len(entries), vol_length=len(vol))
        return entries, ranks, vol

    @staticmethod
    def _insertion_index(
        vol: List[int],
        entries: Dict[int, SVCLine],
        ranks: Dict[int, int],
        my_rank: int,
    ) -> int:
        """VOL index where a new entry of task ``my_rank`` belongs:
        after the committed prefix and after every older active entry."""
        index = 0
        for cache_id in vol:
            line = entries[cache_id]
            if line.committed or ranks[cache_id] < my_rank:
                index += 1
            else:
                break
        return index

    # -- data movement helpers ------------------------------------------------

    def _compose(
        self,
        line_addr: int,
        entries: Dict[int, SVCLine],
        vol: List[int],
        position: int,
        need_mask: int,
    ) -> Tuple[bytearray, Dict[int, Tuple[str, Optional[int]]], Dict[int, int]]:
        """Build fill data for the blocks in ``need_mask``: each block
        comes from the closest previous version that wrote it, else from
        architected memory. Returns (data, per-block supplier, per-block
        content stamps)."""
        amap = self.system.amap
        vbs = amap.versioning_block_size
        data = bytearray(amap.line_size)
        suppliers: Dict[int, Tuple[str, Optional[int]]] = {}
        memory_stamps = self.memory_stamps_for(line_addr)
        stamps: Dict[int, int] = {}
        telemetry = self.system.telemetry
        span = (
            telemetry.begin(VOL_WALK, "supply walk", phase="supply", position=position)
            if telemetry is not None
            else None
        )
        for block in amap.blocks_in_mask(need_mask):
            start = block * vbs
            supplier = closest_previous_writer(entries, vol, position, block)
            if supplier is not None:
                data[start : start + vbs] = entries[supplier].data[start : start + vbs]
                suppliers[block] = (CACHE, supplier)
                stamps[block] = entries[supplier].block_content[block]
                continue
            stamps[block] = memory_stamps[block]
            clean = clean_supplier(entries, block, memory_stamps)
            if clean is not None:
                data[start : start + vbs] = entries[clean].data[start : start + vbs]
                suppliers[block] = (CLEAN, clean)
            else:
                data[start : start + vbs] = self.system.memory.read_bytes(
                    line_addr + start, vbs
                )
                suppliers[block] = (MEMORY, None)
        if span is not None:
            sources = [src for src, _ in suppliers.values()]
            telemetry.end(
                span,
                blocks=len(suppliers),
                from_versions=sources.count(CACHE),
                from_clean=sources.count(CLEAN),
                from_memory=sources.count(MEMORY),
            )
        return data, suppliers, stamps

    def _write_blocks(self, line_addr: int, line: SVCLine, mask: int) -> None:
        amap = self.system.amap
        vbs = amap.versioning_block_size
        memory_stamps = self.memory_stamps_for(line_addr)
        for block in amap.blocks_in_mask(mask):
            start = block * vbs
            self.system.memory.write_bytes(
                line_addr + start, bytes(line.data[start : start + vbs])
            )
            memory_stamps[block] = line.block_content[block]
        self.system.stats.add("writebacks")

    def _purge_committed(self, line_addr: int, retain_newest: bool) -> int:
        """Write back and drop committed versions of one line.

        Coverage rule (the paper's "only the most recent committed
        version is written back", generalized to versioning blocks): scan
        committed versions newest-first; a version's block reaches memory
        only if no newer committed version already wrote that block.
        With one block per line this degenerates to exactly the paper's
        rule. When ``retain_newest`` the newest version stays resident,
        marked written-back, so it can keep supplying loads cheaply.
        Returns the number of versions flushed to memory.
        """
        if self._fast is not None:
            entries, vol = self._fast.acquire(line_addr)
        else:
            entries = self._entries(line_addr)
            vol = build_vol(entries, self._ranks())
        versions = [
            cid for cid in vol if entries[cid].committed and entries[cid].dirty
        ]
        if not versions:
            return 0
        telemetry = self.system.telemetry
        span = (
            telemetry.begin(
                WB_DRAIN,
                f"purge committed {line_addr:#x}",
                line_addr=line_addr,
                versions=len(versions),
                retain_newest=retain_newest,
            )
            if telemetry is not None
            else None
        )
        newest = versions[-1]
        covered = 0
        flushes = 0
        for cache_id in reversed(versions):
            line = entries[cache_id]
            useful = line.store_mask & line.valid_mask
            to_write = useful & ~covered
            if to_write and not line.written_back:
                self._write_blocks(line_addr, line, to_write)
                flushes += 1
            covered |= useful
            if retain_newest and cache_id == newest:
                line.written_back = True
            else:
                self.system.caches[cache_id].drop(line_addr)
        if span is not None:
            telemetry.end(span, flushes=flushes)
        return flushes

    def _make_room(self, requestor: int, line_addr: int, now: int) -> int:
        """Ensure a way is free for a fill, casting out a victim if needed.

        Must run *before* any other protocol side effect of a bus
        request: a :class:`ReplacementStall` aborts the whole PU request,
        and the driver retries it later, so nothing observable may have
        happened yet. A resident line for ``line_addr`` (even a stale
        committed one) needs no room — the fill reuses its way.
        """
        cache = self.system.caches[requestor]
        if cache.line_for(line_addr) is not None:
            return now
        if not cache.array.set_is_full(line_addr):
            return now
        is_head = self.system.task_rank(requestor) == self.system.head_rank()
        victim = cache.choose_victim(line_addr, is_head)
        if victim is None:
            raise ReplacementStall(requestor, line_addr)
        victim_addr, _victim_line = victim
        self.system.stats.add("replacements")
        return self.cast_out(requestor, victim_addr, now)

    def _finalize(self, line_addr: int) -> None:
        """Post-transaction VOL repair: rewrite pointers, refresh T bits,
        and (in debug builds) check every protocol invariant."""
        telemetry = self.system.telemetry
        if telemetry is None:
            self._finalize_impl(line_addr)
            return
        # try/finally because _finalize also runs outside any bus_txn
        # span (silent evictions): a check_invariants raise must not
        # leave this span open to adopt unrelated later spans.
        span = telemetry.begin(
            VOL_REPAIR, f"repair {line_addr:#x}", line_addr=line_addr
        )
        try:
            self._finalize_impl(line_addr)
        finally:
            telemetry.end(span)

    def _finalize_impl(self, line_addr: int) -> None:
        if self._fast is not None:
            self._fast.finalize(line_addr)
            return
        entries = self._entries(line_addr)
        ranks = self._ranks()
        vol = build_vol(entries, ranks)
        rewrite_pointers(entries, vol)
        memory_stamps = self.memory_stamps_for(line_addr)
        # The T bit exists only from the EC design on (Figure 11);
        # earlier tiers have no stale bookkeeping to maintain.
        if self.system.features.stale_bit:
            refresh_stale_bits(entries, vol, memory_stamps)
        if self.system.config.check_invariants:
            check_invariants(
                entries,
                vol,
                ranks,
                memory_stamps,
                check_stale=self.system.features.stale_bit,
            )

    @staticmethod
    def _clear_supplier_exclusivity(
        entries: Dict[int, SVCLine],
        suppliers: Dict[int, Tuple[str, Optional[int]]],
    ) -> None:
        """A version that supplied data to a later task loses the X bit:
        its owner's next store to the line must go to the bus, where the
        invalidation window will find the new copy. Clean (architectural)
        supplies do not affect exclusivity — they copy memory's image,
        not the supplier's version — but the position-based revocation
        below covers the cases where the copy could go stale."""
        for source, cache_id in suppliers.values():
            if source == CACHE:
                entries[cache_id].exclusive = False

    @staticmethod
    def _revoke_other_exclusivity(
        entries: Dict[int, SVCLine], requestor: int
    ) -> None:
        """A new copy installed anywhere revokes every other entry's X
        bit — the E-state demotion of MESI. Not just *earlier* entries:
        with lazy commit, a copy ordered before the X holder can become
        a committed copy and later be silently reactivated by a task
        ordered *after* the holder (T-clear reuse needs no bus request),
        so the only install-time moment to revoke is now. Committed
        lines lose X too — a written-back passive line's X bit is what
        authorizes local reactivation."""
        for cache_id, line in entries.items():
            if cache_id != requestor:
                line.exclusive = False

    def _suppliers_architectural(
        self,
        suppliers: Dict[int, Tuple[str, Optional[int]]],
        entries: Dict[int, SVCLine],
        ranks: Dict[int, int],
    ) -> bool:
        """A-bit rule (section 3.5.1): a copy is architectural when main
        memory, a committed version or the head task supplied it. The A
        bit exists only from the ECS design on (Figure 16); earlier
        tiers never set it."""
        if not self.system.features.architectural_bit:
            return False
        head = self.system.head_rank()
        for source, cache_id in suppliers.values():
            if source in (MEMORY, CLEAN):
                continue
            line = entries[cache_id]
            if line.committed:
                continue
            if ranks.get(cache_id) == head:
                continue
            return False
        return True

    # -- BusRead -------------------------------------------------------------

    def bus_read(
        self, requestor: int, line_addr: int, now: int
    ) -> Tuple[SVCLine, BusOutcome]:
        system = self.system
        my_rank = system.task_rank(requestor)
        if my_rank is None:
            raise ProtocolError(f"cache {requestor} has no task for a BusRead")
        # Room first: a ReplacementStall must abort before side effects —
        # and before the transaction span opens, so a stalled (retried)
        # request leaves no span for a transaction that never happened.
        now = max(now, self._make_room(requestor, line_addr, now))
        telemetry = system.telemetry
        if telemetry is None:
            return self._bus_read_impl(requestor, line_addr, now, my_rank, None)
        span = telemetry.begin(
            BUS_TXN,
            f"BusRead {line_addr:#x}",
            request="read",
            requestor=requestor,
            line_addr=line_addr,
            rank=my_rank,
            cycle=now,
        )
        try:
            line, outcome = self._bus_read_impl(
                requestor, line_addr, now, my_rank, telemetry
            )
        finally:
            # Closes the span and any descendants a raise left open.
            telemetry.end(span)
        telemetry.end(
            span,
            from_memory=outcome.from_memory,
            cache_to_cache=outcome.cache_to_cache,
            flushes=outcome.flushes,
            snarfed=len(outcome.snarfed_caches),
            end_cycle=outcome.end_cycle,
        )
        return line, outcome

    def _bus_read_impl(
        self,
        requestor: int,
        line_addr: int,
        now: int,
        my_rank: int,
        telemetry,
    ) -> Tuple[SVCLine, BusOutcome]:
        system = self.system
        amap = system.amap
        full = amap.full_mask
        cache = system.caches[requestor]

        entries, ranks, vol = self._snoop(line_addr, telemetry)
        own = entries.get(requestor)
        own_active = own is not None and not own.committed

        if own_active:
            position = vol.index(requestor)
            keep_mask = own.valid_mask
        else:
            position = self._insertion_index(vol, entries, ranks, my_rank)
            keep_mask = 0
        need_mask = full & ~keep_mask

        data, suppliers, stamps = self._compose(
            line_addr, entries, vol, position, need_mask
        )
        from_memory = any(src == MEMORY for src, _ in suppliers.values())
        cache_to_cache = any(src in (CACHE, CLEAN) for src, _ in suppliers.values())
        architectural = self._suppliers_architectural(suppliers, entries, ranks)
        self._clear_supplier_exclusivity(entries, suppliers)
        self._revoke_other_exclusivity(entries, requestor)

        # EC design: a load supplied by a committed version writes it back
        # and invalidates the committed versions it covers (Figure 12).
        committed_supplied = any(
            src == CACHE and entries[cid].committed for src, cid in suppliers.values()
        )
        own_committed_dirty = own is not None and own.committed and own.dirty
        flushes = 0
        if own_committed_dirty:
            flushes += self._purge_committed(line_addr, retain_newest=False)
        elif committed_supplied:
            # Flush the newest committed version but retain the line
            # (the final design's passive-dirty retention, section
            # 3.8.1): once marked written-back it can be reused and even
            # reactivated locally, and purges skip the redundant flush.
            flushes += self._purge_committed(line_addr, retain_newest=True)

        # The requestor's stale/retained committed entry gives way to the
        # fresh active copy (one line per address per cache).
        own_now = cache.line_for(line_addr)
        if own_now is not None and own_now.committed:
            if own_now.dirty and not own_now.written_back:
                self._write_blocks(
                    line_addr, own_now, own_now.store_mask & own_now.valid_mask
                )
                flushes += 1
            cache.drop(line_addr)
            own_now = None

        supplier_seq = max(
            (entries[cid].version_seq for src, cid in suppliers.values() if src == CACHE),
            default=0,
        )

        if own_active:
            line = own
            vbs = amap.versioning_block_size
            for block in amap.blocks_in_mask(need_mask):
                start = block * vbs
                line.data[start : start + vbs] = data[start : start + vbs]
                line.block_content[block] = stamps[block]
            line.valid_mask = full
            line.architectural = line.architectural and architectural
        else:
            line = SVCLine(
                data=data,
                valid_mask=full,
                architectural=architectural,
                version_seq=supplier_seq,
                task_id=my_rank,
            )
            line.ensure_block_stamps(amap.blocks_per_line)
            for block, stamp in stamps.items():
                line.block_content[block] = stamp
            cache.install(line_addr, line)

        # Snarf only architectural (read-shared) fills: that is the
        # reference-spreading problem the HR design targets. Spreading
        # copies of migratory version data would only revoke the
        # writer's exclusivity and bounce the line harder.
        snarf_ok = system.features.snarfing and all(
            src != CACHE or entries[cid].committed
            for src, cid in suppliers.values()
        )
        snarfed = self._snarf(requestor, line_addr, line, ranks) if snarf_ok else []

        # Exclusive grant (the E-state analog of the X bit, section
        # 3.1): when the fill leaves the requestor as the only holder of
        # the line, a future store needs no invalidation window — any
        # later install revokes the grant before it could matter.
        if not snarfed and not line.committed:
            if self._fast is not None:
                if self._fast.is_sole_holder(line_addr, requestor):
                    line.exclusive = True
            elif set(self._entries(line_addr)) == {requestor}:
                line.exclusive = True

        # Repair before the bus event fires: observers of the "bus"
        # event (the invariant checker) must see post-repair state.
        self._finalize(line_addr)
        extra = system.bus.config.commit_flush_extra_cycles * flushes
        transaction = system.bus.reserve(
            now,
            BusRequestKind.READ,
            requestor,
            line_addr,
            cache_to_cache=cache_to_cache,
            extra_cycles=extra,
        )
        end = transaction.end_cycle
        if from_memory:
            end += system.config.miss_penalty_cycles
            system.stats.add("memory_supplies")

        outcome = BusOutcome(
            kind=BusRequestKind.READ,
            end_cycle=end,
            from_memory=from_memory,
            cache_to_cache=cache_to_cache,
            flushes=flushes,
            snarfed_caches=snarfed,
        )
        return line, outcome

    def _snarf(
        self,
        requestor: int,
        line_addr: int,
        new_line: SVCLine,
        ranks: Dict[int, int],
    ) -> List[int]:
        """HR design: other caches copy the bus data when they could use
        this same version and have a free way (section 3.6)."""
        if self._fast is not None:
            return self._fast.snarf(requestor, line_addr, new_line, ranks)
        system = self.system
        snarfed = []
        entries = self._entries(line_addr)
        vol = build_vol(entries, ranks)
        for cache in system.caches:
            cid = cache.cache_id
            if cid == requestor or cache.current_task is None:
                continue
            if cache.line_for(line_addr) is not None:
                continue
            if not cache.array.has_free_way(line_addr):
                continue
            position = self._insertion_index(vol, entries, ranks, ranks[cid])
            data, suppliers, stamps = self._compose(
                line_addr, entries, vol, position, system.amap.full_mask
            )
            if bytes(data) != bytes(new_line.data):
                continue
            self._clear_supplier_exclusivity(entries, suppliers)
            self._revoke_other_exclusivity(entries, cid)
            copy = SVCLine(
                data=bytearray(data),
                valid_mask=system.amap.full_mask,
                architectural=self._suppliers_architectural(suppliers, entries, ranks),
                version_seq=new_line.version_seq,
                task_id=ranks[cid],
            )
            copy.ensure_block_stamps(system.amap.blocks_per_line)
            for block, stamp in stamps.items():
                copy.block_content[block] = stamp
            cache.install(line_addr, copy)
            entries[cid] = copy
            vol = build_vol(entries, ranks)
            snarfed.append(cid)
            system.stats.add("snarfs")
        return snarfed

    # -- BusWrite ------------------------------------------------------------

    def bus_write(
        self,
        requestor: int,
        line_addr: int,
        addr: int,
        size: int,
        value: int,
        now: int,
    ) -> Tuple[SVCLine, BusOutcome]:
        system = self.system
        my_rank = system.task_rank(requestor)
        if my_rank is None:
            raise ProtocolError(f"cache {requestor} has no task for a BusWrite")
        # Room first: a ReplacementStall must abort before side effects —
        # and before the transaction span opens (see bus_read).
        now = max(now, self._make_room(requestor, line_addr, now))
        telemetry = system.telemetry
        if telemetry is None:
            return self._bus_write_impl(
                requestor, line_addr, addr, size, value, now, my_rank, None
            )
        span = telemetry.begin(
            BUS_TXN,
            f"BusWrite {line_addr:#x}",
            request="write",
            requestor=requestor,
            line_addr=line_addr,
            rank=my_rank,
            cycle=now,
        )
        try:
            line, outcome = self._bus_write_impl(
                requestor, line_addr, addr, size, value, now, my_rank, telemetry
            )
        finally:
            # Closes the span and any descendants a raise left open.
            telemetry.end(span)
        telemetry.end(
            span,
            from_memory=outcome.from_memory,
            cache_to_cache=outcome.cache_to_cache,
            flushes=outcome.flushes,
            invalidations=outcome.invalidations,
            updates=outcome.updates,
            squashed=len(outcome.squashed_ranks),
            end_cycle=outcome.end_cycle,
        )
        return line, outcome

    def _bus_write_impl(
        self,
        requestor: int,
        line_addr: int,
        addr: int,
        size: int,
        value: int,
        now: int,
        my_rank: int,
        telemetry,
    ) -> Tuple[SVCLine, BusOutcome]:
        system = self.system
        amap = system.amap
        full = amap.full_mask
        vbs = amap.versioning_block_size
        cache = system.caches[requestor]
        block_mask = amap.block_mask(addr, size)

        entries, ranks, vol = self._snoop(line_addr, telemetry)
        own = entries.get(requestor)
        own_active = own is not None and not own.committed

        # Blocks the store fully covers need no fill data.
        offset = amap.line_offset(addr)
        full_cover = 0
        for block in amap.blocks_in_mask(block_mask):
            start = block * vbs
            if offset <= start and offset + size >= start + vbs:
                full_cover |= 1 << block

        if own_active:
            position = vol.index(requestor)
            keep_mask = own.valid_mask
        else:
            position = self._insertion_index(vol, entries, ranks, my_rank)
            keep_mask = 0
        need_mask = full & ~keep_mask & ~full_cover

        data, suppliers, stamps = self._compose(
            line_addr, entries, vol, position, need_mask
        )
        from_memory = any(src == MEMORY for src, _ in suppliers.values())
        cache_to_cache = any(src in (CACHE, CLEAN) for src, _ in suppliers.values())
        self._clear_supplier_exclusivity(entries, suppliers)
        self._revoke_other_exclusivity(entries, requestor)

        # Projected content of the new version, used to patch copies
        # under the write-update policy.
        projected = bytearray(own.data) if own_active else bytearray(amap.line_size)
        for block in amap.blocks_in_mask(need_mask):
            start = block * vbs
            projected[start : start + vbs] = data[start : start + vbs]
        write_mask = (1 << (8 * size)) - 1
        projected[offset : offset + size] = (value & write_mask).to_bytes(
            size, "little"
        )

        # Invalidation window and violation detection (section 3.2.3,
        # per versioning block as in section 3.7). The walk visits every
        # later task's entry until each block meets the next version of
        # that block. The window spans the *whole line*: a later L bit
        # on a newly stored block is a violation; copies of every other
        # block are invalidated or updated so that, when nothing
        # downstream survives, the X bit can stand for "no later task
        # holds any piece of this line" and future stores to any block
        # complete locally.
        viol_mask = block_mask
        # The content stamp of the version state this store creates;
        # patched copies must carry the same stamp as the version.
        pending_content = system.next_content_seq()
        # Per-block stamps of the projected line: stored blocks carry
        # the new stamp, everything else keeps the stamp of the data it
        # actually holds (own blocks, fill suppliers, or memory). A
        # window patch must copy these per block — stamping an
        # unmodified block with the new version's stamp would make the
        # T machinery treat old bytes as the newest version.
        projected_stamps = (
            list(own.block_content)
            if own_active
            else [0] * amap.blocks_per_line
        )
        for block in amap.blocks_in_mask(need_mask):
            projected_stamps[block] = stamps[block]
        for block in amap.blocks_in_mask(block_mask):
            projected_stamps[block] = pending_content
        squashed_ranks: List[int] = []
        invalidations = 0
        updates = 0
        visited = 0
        exclusive_ok = True
        start_index = position + 1 if own_active else position
        blocks_remaining = full
        window_span = (
            telemetry.begin(
                VOL_WALK,
                "invalidation window",
                phase="window",
                start_index=start_index,
            )
            if telemetry is not None
            else None
        )
        for index in range(start_index, len(vol)):
            if not blocks_remaining:
                break
            cache_id = vol[index]
            visited += 1
            if cache_id == requestor:
                raise ProtocolError("requestor encountered in its own window")
            line = entries[cache_id]
            if line.committed:
                raise ProtocolError("committed entry after an active entry")
            overlap = blocks_remaining
            if line.load_mask & overlap & viol_mask:
                # Use-before-definition by a later task: memory
                # dependence violation; squash it and everything after.
                squashed_ranks = system.squash_from_rank(
                    ranks[cache_id], reason="violation"
                )
                break
            if line.load_mask & overlap:
                # A later task legitimately read a block we own or may
                # come to own; its recorded interest forbids silent
                # stores, which would bypass violation detection.
                exclusive_ok = False
            barrier = line.store_mask & overlap
            if line.store_mask or line.load_mask & ~overlap:
                # The entry survives the window (own version blocks, or
                # L state beyond our reach): the line is not exclusive.
                exclusive_ok = False
            patch = overlap & ~line.store_mask
            if patch:
                done_invalidate, done_update = self._apply_window_policy(
                    cache_id, line_addr, line, patch, projected, projected_stamps
                )
                invalidations += done_invalidate
                updates += done_update
                if done_update:
                    # Updated copies stay live downstream; every further
                    # store must go to the bus to re-patch them.
                    exclusive_ok = False
            blocks_remaining &= ~barrier
        if window_span is not None:
            telemetry.end(
                window_span,
                visited=visited,
                invalidations=invalidations,
                updates=updates,
                squashed=len(squashed_ranks),
            )

        # Committed versions are purged when the requestor's own cache
        # holds committed state — the new version needs the way, and the
        # figure-13 semantics order the writebacks. A store elsewhere
        # leaves committed versions resident (figure 12's pre-state).
        flushes = 0
        own_now = cache.line_for(line_addr)
        if own_now is not None and own_now.committed:
            if own_now.dirty:
                flushes += self._purge_committed(line_addr, retain_newest=False)
            own_now = cache.line_for(line_addr)
            if own_now is not None:
                cache.drop(line_addr)
            own_now = None

        if own_active:
            line = own
            for block in amap.blocks_in_mask(need_mask):
                start = block * vbs
                line.data[start : start + vbs] = data[start : start + vbs]
                line.block_content[block] = stamps[block]
            line.valid_mask |= need_mask | full_cover
        else:
            line = SVCLine(
                data=bytearray(amap.line_size),
                valid_mask=need_mask | full_cover,
                task_id=my_rank,
            )
            line.ensure_block_stamps(amap.blocks_per_line)
            for block in amap.blocks_in_mask(need_mask):
                start = block * vbs
                line.data[start : start + vbs] = data[start : start + vbs]
                line.block_content[block] = stamps[block]
            cache.install(line_addr, line)

        cache.apply_store(line, addr, size, value, block_mask)
        for block in amap.blocks_in_mask(block_mask):
            line.block_content[block] = pending_content
        # Version stamp: rank + 1, reserving 0 for copies of the
        # architectural (memory) image so a rank-0 version is
        # distinguishable from a pre-speculation memory copy.
        line.version_seq = my_rank + 1
        line.architectural = (
            system.features.architectural_bit and my_rank == system.head_rank()
        )
        line.written_back = False
        # The X grant additionally requires that no other cache holds
        # valid data for the line *anywhere* in the VOL — not just
        # downstream. A later silent store changes the tail-of-VOL with
        # no bus event to snoop, so an earlier entry's T bit would go
        # stale-while-clear and its eventual committed copy could be
        # wrongly reused (T-clear local reuse reads the old version).
        # Re-read residency: the window walk may have dropped copies.
        if self._fast is not None:
            line.exclusive = exclusive_ok and self._fast.others_all_invalid(
                line_addr, requestor
            )
        else:
            line.exclusive = exclusive_ok and all(
                other.valid_mask == 0
                for cid, other in self._entries(line_addr).items()
                if cid != requestor
            )

        # Repair before the bus event fires (see bus_read).
        self._finalize(line_addr)
        extra = system.bus.config.commit_flush_extra_cycles * flushes
        transaction = system.bus.reserve(
            now,
            BusRequestKind.WRITE,
            requestor,
            line_addr,
            store_mask=block_mask,
            cache_to_cache=cache_to_cache,
            extra_cycles=extra,
        )
        end = transaction.end_cycle
        if from_memory:
            end += system.config.miss_penalty_cycles
            system.stats.add("memory_supplies")

        outcome = BusOutcome(
            kind=BusRequestKind.WRITE,
            end_cycle=end,
            from_memory=from_memory,
            cache_to_cache=cache_to_cache,
            flushes=flushes,
            squashed_ranks=squashed_ranks,
            invalidations=invalidations,
            updates=updates,
        )
        return line, outcome

    def _apply_window_policy(
        self,
        cache_id: int,
        line_addr: int,
        line: SVCLine,
        patch: int,
        projected: bytearray,
        projected_stamps: List[int],
    ) -> Tuple[int, int]:
        """Invalidate or update the copy blocks a store made stale.

        Pure invalidate clears the valid bits (the whole line drops when
        nothing useful remains); pure update pushes the new version's
        bytes into the copy, each block keeping the stamp of the data
        it receives; hybrid (section 3.8) updates copies whose task has
        demonstrated interest (any L bit set) and invalidates the rest.
        """
        system = self.system
        policy = system.features.update_policy
        if policy == UpdatePolicy.HYBRID:
            policy = (
                UpdatePolicy.UPDATE if line.load_mask else UpdatePolicy.INVALIDATE
            )
        if policy == UpdatePolicy.UPDATE:
            vbs = system.amap.versioning_block_size
            for block in system.amap.blocks_in_mask(patch):
                start = block * vbs
                line.data[start : start + vbs] = projected[start : start + vbs]
                line.block_content[block] = projected_stamps[block]
            line.valid_mask |= patch
            # The copy now carries speculative data; it must not survive
            # a squash as "architectural".
            line.architectural = False
            system.stats.add("update_responses")
            return 0, 1
        line.valid_mask &= ~patch
        system.stats.add("invalidation_responses")
        if line.valid_mask == 0 and line.store_mask == 0 and line.load_mask == 0:
            system.caches[cache_id].drop(line_addr)
        return 1, 0

    # -- cast-outs and drain ---------------------------------------------------

    def cast_out(self, cache_id: int, line_addr: int, now: int) -> int:
        """Replace a resident line; dirty lines go over the bus.

        A committed dirty victim triggers a full committed purge of its
        address, which preserves the program-order of writebacks; an
        active dirty victim (legal only for the head task) writes its
        blocks back after any committed versions.
        """
        system = self.system
        cache = system.caches[cache_id]
        line = cache.line_for(line_addr)
        if line is None:
            return now
        if not line.dirty:
            cache.drop(line_addr)
            system.stats.add("silent_evictions")
            self._finalize(line_addr)
            return now

        telemetry = system.telemetry
        span = (
            telemetry.begin(
                BUS_TXN,
                f"wback {line_addr:#x}",
                request="wback",
                requestor=cache_id,
                line_addr=line_addr,
                cycle=now,
            )
            if telemetry is not None
            else None
        )
        try:
            flushes = 0
            if line.committed:
                flushes += self._purge_committed(line_addr, retain_newest=False)
            else:
                if system.task_rank(cache_id) != system.head_rank():
                    raise ProtocolError(
                        "only the head task may cast out an active dirty line"
                    )
                flushes += self._purge_committed(line_addr, retain_newest=False)
                self._write_blocks(
                    line_addr, line, line.store_mask & line.valid_mask
                )
                flushes += 1
                cache.drop(line_addr)
            # Repair before the bus event fires (see bus_read).
            self._finalize(line_addr)
            extra = system.bus.config.commit_flush_extra_cycles * max(
                0, flushes - 1
            )
            transaction = system.bus.reserve(
                now, BusRequestKind.WBACK, cache_id, line_addr, extra_cycles=extra
            )
            if span is not None:
                telemetry.end(
                    span, flushes=flushes, end_cycle=transaction.end_cycle
                )
            return transaction.end_cycle
        finally:
            if span is not None:
                # Idempotent when already ended; closes descendants a
                # raise left open.
                telemetry.end(span)

    def drain(self) -> None:
        """End-of-run flush of every committed version to memory."""
        addresses = set()
        for cache in self.system.caches:
            for line_addr, line in cache.lines():
                if line.dirty:
                    if not line.committed:
                        raise ProtocolError(
                            "drain with uncommitted speculative state on "
                            f"cache {cache.cache_id}, line {line_addr:#x}"
                        )
                    addresses.add(line_addr)
        for line_addr in sorted(addresses):
            self._purge_committed(line_addr, retain_newest=False)
        for cache in self.system.caches:
            cache.flash_invalidate_all()
