"""SVCSystem: the public face of the Speculative Versioning Cache.

One object owns the N private caches, the snooping bus, the Version
Control Logic and the next-level memory, and exposes:

* the PU request interface — :meth:`load` and :meth:`store`,
* the task lifecycle — :meth:`begin_task`, :meth:`commit_head`,
  :meth:`squash_from_rank`,
* end-of-run draining and inspection helpers used by tests and examples.

Tasks are identified by *ranks*: unique, strictly increasing integers in
program order (the paper's task sequence numbers). The head task is the
oldest currently-assigned rank; only it may commit, and a squash always
removes a suffix of the rank order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bus.requests import BusRequestKind
from repro.bus.snooping_bus import SnoopingBus
from repro.common.config import SVCConfig
from repro.common.errors import ProtocolError
from repro.common.events import EventLog, ProtocolEvent
from repro.common.stats import StatsRegistry
from repro.mem.main_memory import MainMemory
from repro.svc.cache import ProbeOutcome, SVCCache
from repro.svc.directory import VersionDirectory
from repro.svc.line import LineState, SVCLine
from repro.svc.vcl import VersionControlLogic
from repro.telemetry import COMMIT, SQUASH, TASK_BEGIN, WB_DRAIN, wired


@dataclass(slots=True)
class AccessResult:
    """Outcome of one PU load or store."""

    value: Optional[int]
    hit: bool
    end_cycle: int
    from_memory: bool = False
    cache_to_cache: bool = False
    squashed_ranks: List[int] = field(default_factory=list)


class SVCSystem:
    """A complete SVC memory system (Figure 5)."""

    #: Stats a ``ReplacementStall``-raising load/store probe bumps before
    #: the raise. The timing simulator's stall fast-forward replicates
    #: these when it skips a retry whose outcome cannot have changed
    #: (same commit/squash token, same ``bus.free_at``) — keep in sync
    #: with the pre-raise accounting in :meth:`load` / :meth:`store`.
    STALL_PROBE_COUNTERS = {
        "load": ("loads", "load_misses"),
        "store": ("stores", "store_misses"),
    }

    def __init__(
        self,
        config: Optional[SVCConfig] = None,
        memory: Optional[MainMemory] = None,
        event_log: Optional[EventLog] = None,
        checker=None,
        telemetry=None,
    ) -> None:
        self.config = config if config is not None else SVCConfig()
        self.features = self.config.features
        self.geometry = self.config.geometry
        self.amap = self.geometry.address_map
        self.stats = StatsRegistry()
        #: Opt-in tracing/metrics sink, normalized once at wiring time
        #: (None unless present *and* enabled), so every hot path pays
        #: a single ``is not None`` — never writes to stats/event_log.
        self.telemetry = wired(telemetry)
        if checker is not None and event_log is None:
            event_log = EventLog()
        self.event_log = event_log
        self.bus = SnoopingBus(
            self.config.bus,
            stats=self.stats,
            event_log=event_log,
            telemetry=self.telemetry,
        )
        self.memory = memory if memory is not None else MainMemory(
            self.config.miss_penalty_cycles
        )
        self.caches = [
            SVCCache(i, self.geometry, self.features)
            for i in range(self.config.n_caches)
        ]
        #: Line-granular residency index consulted by the VCL instead of
        #: scanning every cache; None runs the seed's brute-force snoops.
        self.directory = VersionDirectory() if self.config.use_directory else None
        if self.directory is not None:
            for cache in self.caches:
                cache.directory = self.directory
        self.vcl = VersionControlLogic(self)
        self._committed_through = -1
        self._content_counter = 0
        #: Incrementally maintained task maps (cache_id -> rank and the
        #: inverse), replacing the per-call rebuild over all caches.
        #: :meth:`verify` audits them against the caches' own state.
        self._active_ranks: Dict[int, int] = {}
        self._rank_to_cache: Dict[int, int] = {}
        #: True while a bus transaction is mutating distributed state.
        #: A violation squash fired mid-window is observable through the
        #: event log before the requestor's own line is final; full-state
        #: scans (the InvariantChecker) must skip those torn snapshots —
        #: the transaction's closing bus event audits the final state.
        self._in_transaction = False
        #: Hot-path accelerators: the registry's counter dict bound once,
        #: the address map's offset mask, and per-(offset, size) memos of
        #: the two mask computations every access repeats.
        self._counters = self.stats._counters
        self._offset_mask = self.amap._offset_mask
        self._hit_cycles = self.config.hit_cycles
        self._block_mask_memo: Dict[int, int] = {}
        self._full_cover_memo: Dict[int, int] = {}
        self.checker = checker
        if checker is not None:
            checker.bind(self)

    def next_content_seq(self) -> int:
        """Allocate a fresh, globally monotonic version-state stamp."""
        self._content_counter += 1
        return self._content_counter

    @property
    def n_units(self) -> int:
        """Number of processing units (one private cache each)."""
        return self.config.n_caches

    @property
    def mshrs_per_unit(self) -> int:
        return self.config.n_mshrs

    @property
    def mshr_combining(self) -> int:
        return self.config.mshr_combining

    # -- task bookkeeping -----------------------------------------------------

    def task_rank(self, cache_id: int) -> Optional[int]:
        return self.caches[cache_id].current_task

    def current_ranks(self) -> Dict[int, int]:
        return dict(self._active_ranks)

    def head_rank(self) -> Optional[int]:
        # min over at most n_caches keys; no rebuild over the caches.
        return min(self._rank_to_cache) if self._rank_to_cache else None

    def cache_of_rank(self, rank: int) -> Optional[int]:
        return self._rank_to_cache.get(rank)

    def begin_task(self, cache_id: int, rank: int) -> None:
        """Assign task ``rank`` to the PU behind ``cache_id``."""
        if rank <= self._committed_through:
            raise ProtocolError(
                f"task rank {rank} is not after the committed prefix "
                f"({self._committed_through})"
            )
        if rank in self._rank_to_cache:
            raise ProtocolError(f"task rank {rank} is already running")
        self.caches[cache_id].begin_task(rank)
        self._active_ranks[cache_id] = rank
        self._rank_to_cache[rank] = cache_id
        if self.telemetry is not None:
            self.telemetry.instant(
                TASK_BEGIN, f"task {rank} -> cache {cache_id}",
                cache=cache_id, rank=rank,
            )
        if self.event_log is not None:
            self.event_log.emit("begin_task", source="svc", cache=cache_id, rank=rank)

    def commit_head(self, cache_id: int, now: int = 0) -> int:
        """Commit the head task. EC designs flash-set the C bit in one
        cycle; the base design writes every dirty line back over the bus
        before invalidating the cache — the serial bottleneck the EC
        design removes (section 3.2.6). Returns the completion cycle."""
        cache = self.caches[cache_id]
        rank = cache.current_task
        if rank is None:
            raise ProtocolError(f"cache {cache_id} has no task to commit")
        if rank != self.head_rank():
            raise ProtocolError(
                f"task {rank} is not the head ({self.head_rank()}); "
                "commits must proceed in task order"
            )
        self.stats.add("commits")
        telemetry = self.telemetry
        span = None
        if telemetry is not None:
            span = telemetry.begin(
                COMMIT, f"commit rank {rank}", cache=cache_id, rank=rank, cycle=now
            )
        try:
            if self.features.lazy_commit:
                cache.flash_commit()
                end = now + 1
            else:
                end = now
                writebacks = 0
                drain = (
                    telemetry.begin(WB_DRAIN, "eager commit writebacks")
                    if telemetry is not None
                    else None
                )
                for line_addr, line in cache.dirty_active_lines():
                    transaction = self.bus.reserve(
                        end, BusRequestKind.WBACK, cache_id, line_addr
                    )
                    self.vcl._write_blocks(
                        line_addr, line, line.store_mask & line.valid_mask
                    )
                    end = transaction.end_cycle
                    writebacks += 1
                    self.stats.add("commit_writebacks")
                if drain is not None:
                    telemetry.end(drain, writebacks=writebacks)
                cache.flash_invalidate_all()
                cache.current_task = None
            del self._active_ranks[cache_id]
            del self._rank_to_cache[rank]
            self._committed_through = rank
            if self.event_log is not None:
                self.event_log.emit(
                    "commit", source="svc", cache=cache_id, rank=rank, end=end
                )
        finally:
            if span is not None:
                telemetry.end(span)
        return end

    def squash_from_rank(self, rank: int, reason: str = "misprediction") -> List[int]:
        """Squash task ``rank`` and every later task (the paper's simple
        squash model). Returns the squashed ranks, oldest first."""
        victims = sorted(
            (task, cache_id)
            for cache_id, task in self._active_ranks.items()
            if task >= rank
        )
        telemetry = self.telemetry
        span = None
        if telemetry is not None:
            span = telemetry.begin(
                SQUASH, f"squash from rank {rank}", rank=rank, reason=reason
            )
        try:
            for task, cache_id in victims:
                cache = self.caches[cache_id]
                if self.features.lazy_commit:
                    cache.flash_squash()
                else:
                    cache.flash_invalidate_all()
                    cache.current_task = None
                del self._active_ranks[cache_id]
                del self._rank_to_cache[task]
                self.stats.add(f"squashes_{reason}")
            # Emit after *all* victims are flashed: observers (the invariant
            # checker) must not see the half-squashed intermediate states.
            # The whole wave lands as one batched extend.
            if self.event_log is not None and victims:
                self.event_log.extend(
                    ProtocolEvent(
                        kind="squash",
                        source="svc",
                        detail={"cache": cache_id, "rank": task, "reason": reason},
                    )
                    for task, cache_id in victims
                )
        finally:
            if span is not None:
                telemetry.end(span, victims=[task for task, _ in victims])
        return [task for task, _ in victims]

    # -- PU requests -------------------------------------------------------------

    def load(self, cache_id: int, addr: int, size: int = 4, now: int = 0) -> AccessResult:
        """Execute a load for the task on ``cache_id``."""
        cache = self.caches[cache_id]
        if cache.current_task is None:
            raise ProtocolError(f"cache {cache_id} has no current task")
        offset = addr & self._offset_mask
        line_addr = addr - offset
        memo_key = (offset << 5) | size
        block_mask = self._block_mask_memo.get(memo_key)
        if block_mask is None:
            block_mask = self.amap.block_mask(addr, size)
            self._block_mask_memo[memo_key] = block_mask
        counters = self._counters
        counters["loads"] += 1

        outcome, line = cache.probe_load(line_addr, block_mask)
        if outcome == ProbeOutcome.HIT:
            # record_load inlined; probe_load's array lookup already
            # freshened the LRU position, so no second lookup is needed.
            line.load_mask |= block_mask & ~line.store_mask
            return AccessResult(
                value=line.read(offset, size),
                hit=True,
                end_cycle=now + self._hit_cycles,
            )
        counters["load_misses"] += 1
        self._in_transaction = True
        try:
            line, bus_outcome = self.vcl.bus_read(cache_id, line_addr, now)
        finally:
            self._in_transaction = False
        cache.record_load(line, block_mask)
        return AccessResult(
            value=line.read(offset, size),
            hit=False,
            end_cycle=bus_outcome.end_cycle,
            from_memory=bus_outcome.from_memory,
            cache_to_cache=bus_outcome.cache_to_cache,
        )

    def store(
        self, cache_id: int, addr: int, value: int, size: int = 4, now: int = 0
    ) -> AccessResult:
        """Execute a store for the task on ``cache_id``. A miss opens the
        invalidation window and may squash later tasks (returned in
        ``squashed_ranks``)."""
        cache = self.caches[cache_id]
        if cache.current_task is None:
            raise ProtocolError(f"cache {cache_id} has no current task")
        offset = addr & self._offset_mask
        line_addr = addr - offset
        memo_key = (offset << 5) | size
        block_mask = self._block_mask_memo.get(memo_key)
        if block_mask is None:
            block_mask = self.amap.block_mask(addr, size)
            self._block_mask_memo[memo_key] = block_mask
        counters = self._counters
        counters["stores"] += 1

        full_cover = self._full_cover_memo.get(memo_key)
        if full_cover is None:
            full_cover = self.amap.full_cover_mask(addr, size)
            self._full_cover_memo[memo_key] = full_cover
        outcome, line = cache.probe_store(line_addr, block_mask, full_cover)
        if outcome == ProbeOutcome.HIT:
            cache.apply_store(line, addr, size, value, block_mask)
            # A silent store creates a new version *state*; stamp it so
            # staleness checks and clean-supply matching stay exact.
            stamp = self.next_content_seq()
            for block in self.amap.blocks_in_mask(block_mask):
                line.block_content[block] = stamp
            # probe_store's array lookup already freshened the LRU
            # position; no second lookup is needed.
            return AccessResult(
                value=None, hit=True, end_cycle=now + self._hit_cycles
            )
        counters["store_misses"] += 1
        self._in_transaction = True
        try:
            line, bus_outcome = self.vcl.bus_write(
                cache_id, line_addr, addr, size, value, now
            )
        finally:
            self._in_transaction = False
        return AccessResult(
            value=None,
            hit=False,
            end_cycle=bus_outcome.end_cycle,
            from_memory=bus_outcome.from_memory,
            cache_to_cache=bus_outcome.cache_to_cache,
            squashed_ranks=bus_outcome.squashed_ranks,
        )

    # -- end of run ----------------------------------------------------------------

    def drain(self) -> None:
        """Flush all committed state to memory and empty the caches."""
        self.vcl.drain()

    # -- inspection (tests, examples) -------------------------------------------------

    def line_in(self, cache_id: int, addr: int) -> Optional[SVCLine]:
        line_addr = self.amap.line_address(addr)
        return self.caches[cache_id].line_for(line_addr)

    def states_of(self, addr: int) -> List[str]:
        line_addr = self.amap.line_address(addr)
        return [cache.state_of(line_addr) for cache in self.caches]

    def vol_of(self, addr: int) -> List[int]:
        """Current VOL (cache ids, oldest first) for the line of ``addr``."""
        from repro.svc.vol import build_vol

        line_addr = self.amap.line_address(addr)
        entries = self.vcl._entries(line_addr)
        return build_vol(entries, self.vcl._ranks())

    def describe_line(self, addr: int) -> str:
        """One-line snapshot of every cache's state for ``addr``,
        in the style of the paper's figures."""
        line_addr = self.amap.line_address(addr)
        parts = []
        for cache in self.caches:
            line = cache.line_for(line_addr)
            rank = cache.current_task
            label = f"{cache.cache_id}/{rank if rank is not None else '-'}"
            if line is None:
                parts.append(f"[{label}: empty]")
            else:
                parts.append(f"[{label}: {line.describe()} v={line.read(0, 4)}]")
        return " ".join(parts)

    def verify(self) -> None:
        """Audit every resident line against the protocol invariants.

        Pointer chains and T bits are repaired *lazily* — on each line's
        next bus request — so between requests a line may legitimately
        carry a dangling pointer or a conservatively-stale T bit. This
        method first completes those pending repairs (exactly what the
        next bus request would do; idempotent and
        semantics-preserving), then checks every invariant, raising
        :class:`repro.common.errors.ProtocolError` on the first
        violation. The same checks run automatically after each bus
        request when ``config.check_invariants`` is set.
        """
        from repro.svc.vol import (
            build_vol,
            check_invariants,
            refresh_stale_bits,
            rewrite_pointers,
        )

        # The accelerator structures are audited against the ground truth
        # (the cache arrays themselves) before anything trusts them: a
        # desynced directory or rank map is itself a protocol violation.
        self._audit_task_maps()
        if self.directory is not None:
            self.directory.audit(self.caches)
        if self.vcl._fast is not None:
            # Persistent columnar engine: every cached (entries, VOL)
            # snapshot must match a fresh reconstruction from the arrays.
            self.vcl._fast.audit()
        # Address collection stays brute-force on purpose: a line smuggled
        # into an array behind the directory's back must still be audited.
        addresses = set()
        for cache in self.caches:
            for line_addr, _line in cache.lines():
                addresses.add(line_addr)
        ranks = self.current_ranks()
        for line_addr in sorted(addresses):
            entries = self.vcl._entries(line_addr)
            vol = build_vol(entries, ranks)
            stamps = self.vcl.memory_stamps_for(line_addr)
            rewrite_pointers(entries, vol)
            if self.features.stale_bit:
                refresh_stale_bits(entries, vol, stamps)
            check_invariants(
                entries, vol, ranks, stamps, check_stale=self.features.stale_bit
            )

    def _audit_task_maps(self) -> None:
        """Cross-check the incremental rank maps against the caches."""
        actual = {
            cache.cache_id: cache.current_task
            for cache in self.caches
            if cache.current_task is not None
        }
        if actual != self._active_ranks:
            raise ProtocolError(
                f"task map desync: tracked {self._active_ranks} but the "
                f"caches report {actual}"
            )
        inverse = {rank: cache_id for cache_id, rank in actual.items()}
        if inverse != self._rank_to_cache:
            raise ProtocolError(
                f"rank map desync: tracked {self._rank_to_cache} but the "
                f"caches report {inverse}"
            )

    def miss_ratio(self) -> float:
        """Table-2 definition: accesses supplied by next-level memory
        over all accesses (cache-to-cache transfers are not misses)."""
        accesses = self.stats.get("loads") + self.stats.get("stores")
        if accesses == 0:
            return 0.0
        return self.stats.get("memory_supplies") / accesses


_ = LineState  # re-exported for convenience of importers
