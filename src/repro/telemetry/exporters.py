"""Telemetry exporters: Chrome trace JSON, metrics JSON, terminal summary.

All exporters consume *payloads* — the picklable dicts produced by
:meth:`repro.telemetry.Telemetry.snapshot`. A list of payloads merges
into one coherent artifact: each payload becomes one Chrome-trace
process (``pid``) named by its label, which is how a parallel
experiment run (one payload per worker point) lands in a single
Perfetto-loadable file.

Chrome ``trace_event`` mapping (the JSON Array/Object format both
Perfetto and ``chrome://tracing`` load):

* a span   -> one complete event   (``"ph": "X"``, ``ts``/``dur``)
* an instant -> one instant event  (``"ph": "i"``, ``"s": "t"``)
* each payload -> one ``process_name`` metadata event (``"ph": "M"``)

Timestamps are the tracer's deterministic logical ticks, written as
microseconds; simulated cycles are span args. Everything renders on one
thread track per process because the simulation is single-threaded —
nesting is by time containment, which logical ticks make exact.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.telemetry.metrics import merge_metric_snapshots

#: Span kinds whose spans carry ``level: error`` get this category
#: suffix so they can be filtered in trace viewers.
_ERROR_CATEGORY = "error"


# -- Chrome trace_event ------------------------------------------------------


def chrome_trace_events(payloads: Sequence[Dict]) -> List[Dict]:
    """Flatten payloads into a ``traceEvents`` list."""
    events: List[Dict] = []
    for pid, payload in enumerate(payloads):
        label = payload.get("label", f"worker-{pid}")
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
        )
        for span in payload.get("spans", []):
            start = span["start"]
            end = span["end"] if span["end"] is not None else start
            level = span.get("level", "info")
            category = span["kind"]
            if level == "error":
                category = f"{category},{_ERROR_CATEGORY}"
            args = dict(span.get("args", {}))
            args["level"] = level
            args["span_id"] = span["id"]
            if span.get("parent") is not None:
                args["parent_id"] = span["parent"]
            event = {
                "name": span["name"],
                "cat": category,
                "pid": pid,
                "tid": 0,
                "ts": start,
                "args": args,
            }
            if end == start:
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = end - start
            events.append(event)
    return events


def chrome_trace(payloads: Sequence[Dict], meta: Optional[Dict] = None) -> Dict:
    """The full Chrome-trace JSON object."""
    document = {
        "traceEvents": chrome_trace_events(payloads),
        "displayTimeUnit": "ms",
    }
    if meta:
        document["otherData"] = dict(meta)
    return document


def write_chrome_trace(
    path: str, payloads: Sequence[Dict], meta: Optional[Dict] = None
) -> str:
    with open(path, "w") as handle:
        json.dump(chrome_trace(payloads, meta), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def validate_chrome_trace(
    document: Dict, require_kinds: Sequence[str] = ()
) -> List[str]:
    """Structural validation; returns problems (empty = valid).

    Checks the properties trace viewers rely on: a ``traceEvents``
    list, known phases, complete events with non-negative ``ts``/
    ``dur``, and — per (pid, tid) track — proper nesting: events sorted
    by ``ts`` must strictly contain any event that begins before they
    end. ``require_kinds`` additionally demands at least one event of
    each named kind (CI uses this to prove the wiring is alive).
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    seen_kinds = set()
    tracks: Dict[tuple, List[Dict]] = {}
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            problems.append(f"event {i}: unsupported phase {phase!r}")
            continue
        if phase == "M":
            continue
        for key in ("name", "pid", "tid", "ts"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        if event.get("ts", 0) < 0:
            problems.append(f"event {i}: negative ts")
        seen_kinds.update(str(event.get("cat", "")).split(","))
        if phase == "X":
            if event.get("dur", -1) < 0:
                problems.append(f"event {i}: complete event without dur >= 0")
            tracks.setdefault((event.get("pid"), event.get("tid")), []).append(event)
    for (pid, tid), track in tracks.items():
        track.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
        open_ends: List[int] = []
        for event in track:
            start, end = event["ts"], event["ts"] + event.get("dur", 0)
            while open_ends and open_ends[-1] <= start:
                open_ends.pop()
            if open_ends and end > open_ends[-1]:
                problems.append(
                    f"track pid={pid} tid={tid}: event {event['name']!r} "
                    f"[{start}, {end}] straddles its enclosing span "
                    f"(ends {open_ends[-1]})"
                )
            open_ends.append(end)
    for kind in require_kinds:
        if kind not in seen_kinds:
            problems.append(f"no events of required kind {kind!r}")
    return problems


def validate_trace_file(path: str, require_kinds: Sequence[str] = ()) -> None:
    """Load + validate, raising ``ValueError`` with all problems."""
    with open(path) as handle:
        document = json.load(handle)
    problems = validate_chrome_trace(document, require_kinds)
    if problems:
        raise ValueError(
            f"{path}: invalid Chrome trace:\n  " + "\n  ".join(problems)
        )


# -- metrics JSON ------------------------------------------------------------


def metrics_document(
    payloads: Sequence[Dict], meta: Optional[Dict] = None
) -> Dict:
    """Metrics JSON: per-payload snapshots, a merged aggregate, and a
    flat ``{"counters.<name>": value}`` view for simple consumers
    (``tools/bench_perf.py`` reads the flat section)."""
    merged = merge_metric_snapshots(
        [payload.get("metrics", {}) for payload in payloads]
    )
    dropped = sum(payload.get("dropped_spans", 0) for payload in payloads)
    flat: Dict[str, float] = {}
    for name, data in merged["counters"].items():
        flat[f"counters.{name}"] = data["value"]
    for name, data in merged["gauges"].items():
        flat[f"gauges.{name}"] = data["value"]
    for name, data in merged["histograms"].items():
        flat[f"histograms.{name}.count"] = data["count"]
        flat[f"histograms.{name}.total"] = data["total"]
    flat["telemetry.dropped_spans"] = dropped
    return {
        "meta": dict(meta) if meta else {},
        "dropped_spans": dropped,
        "merged": merged,
        "flat": flat,
        "per_point": {
            payload.get("label", f"worker-{i}"): payload.get("metrics", {})
            for i, payload in enumerate(payloads)
        },
    }


def write_metrics_json(
    path: str, payloads: Sequence[Dict], meta: Optional[Dict] = None
) -> str:
    with open(path, "w") as handle:
        json.dump(metrics_document(payloads, meta), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# -- terminal summary --------------------------------------------------------


def render_summary(payloads: Sequence[Dict]) -> str:
    """Human-readable digest: span counts by kind, errors, ring-buffer
    drops, key metrics. Nonzero drops get an explicit WARNING line —
    a silently truncated trace looks identical to a complete one."""
    span_counts: Dict[str, int] = {}
    errors = 0
    dropped = 0
    for payload in payloads:
        dropped += payload.get("dropped_spans", 0)
        for span in payload.get("spans", []):
            span_counts[span["kind"]] = span_counts.get(span["kind"], 0) + 1
            if span.get("level") == "error":
                errors += 1
    merged = merge_metric_snapshots(
        [payload.get("metrics", {}) for payload in payloads]
    )
    lines = [f"telemetry: {len(payloads)} point(s)"]
    if span_counts:
        by_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(span_counts.items())
        )
        lines.append(f"  spans: {sum(span_counts.values())} ({by_kind})")
    else:
        lines.append("  spans: none")
    if dropped:
        lines.append(
            f"  WARNING: {dropped} span(s) dropped by the trace ring "
            "buffer (oldest evicted; raise the tracer capacity to keep "
            "them)"
        )
    if errors:
        lines.append(f"  ERROR-level spans: {errors}")
    for name, data in sorted(merged["counters"].items()):
        unit = f" {data['unit']}" if data.get("unit") else ""
        lines.append(f"  {name}: {data['value']}{unit}")
    for name, data in sorted(merged["histograms"].items()):
        if not data["count"]:
            continue
        mean = data["total"] / data["count"]
        unit = f" {data['unit']}" if data.get("unit") else ""
        lines.append(
            f"  {name}: n={data['count']} mean={mean:.2f} "
            f"min={data['min']} max={data['max']}{unit}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.telemetry.exporters trace.json [--require k,...]``

    Validates an emitted trace file; CI's telemetry-smoke job runs this
    against the expected top-level span kinds.
    """
    import argparse

    parser = argparse.ArgumentParser(description="Validate a Chrome trace file.")
    parser.add_argument("trace", help="path to a trace JSON file")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated span kinds that must appear at least once",
    )
    args = parser.parse_args(argv)
    kinds = tuple(kind for kind in args.require.split(",") if kind)
    try:
        validate_trace_file(args.trace, require_kinds=kinds)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"INVALID: {exc}")
        return 1
    print(f"{args.trace}: valid Chrome trace" + (f" with kinds {kinds}" if kinds else ""))
    return 0


__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "metrics_document",
    "render_summary",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
    "write_metrics_json",
]


if __name__ == "__main__":  # pragma: no cover - exercised in CI
    raise SystemExit(main())
