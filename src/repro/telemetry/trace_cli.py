"""``python -m repro trace <experiment>``: run an experiment traced.

Runs any experiment from the registry with telemetry enabled on every
point, merges the per-point (possibly per-worker-process) payloads, and
writes

* ``<out>/<experiment>.trace.json``   — Chrome trace (open in Perfetto
  at https://ui.perfetto.dev, or ``chrome://tracing``),
* ``<out>/<experiment>.metrics.json`` — flat + merged metrics,

then prints the terminal summary. Example::

    python -m repro trace fig19 --scale 0.02 --benchmarks compress
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS
from repro.telemetry.exporters import (
    render_summary,
    write_chrome_trace,
    write_metrics_json,
)
from repro.workloads.spec95 import BENCHMARKS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run an experiment with telemetry enabled and emit "
        "Chrome-trace + metrics JSON artifacts.",
    )
    parser.add_argument(
        "experiment",
        help=f"experiment id: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated SPEC95 benchmark subset "
        f"(all = {','.join(BENCHMARKS)})",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (default: REPRO_SCALE or 1.0)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-parallel fan-out width (0 = one per CPU; "
        "default: REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--output-dir",
        default="traces",
        help="directory for the emitted artifacts (default: traces/)",
    )
    return parser


def trace_main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; choose from "
            f"{sorted(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    kwargs = {"telemetry": True}
    if args.benchmarks:
        requested = tuple(name.strip() for name in args.benchmarks.split(","))
        unknown = [name for name in requested if name not in BENCHMARKS]
        if unknown:
            print(f"unknown benchmarks: {unknown}", file=sys.stderr)
            return 2
        kwargs["benchmarks"] = requested
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.workers is not None:
        kwargs["workers"] = args.workers

    started = time.time()
    result = EXPERIMENTS[args.experiment](**kwargs)
    elapsed = time.time() - started
    payloads = [point.telemetry for point in result.points if point.telemetry]
    if not payloads:
        print("experiment produced no telemetry payloads", file=sys.stderr)
        return 1

    os.makedirs(args.output_dir, exist_ok=True)
    meta = {
        "experiment": args.experiment,
        "points": len(result.points),
        "scale": args.scale,
        "benchmarks": list(kwargs.get("benchmarks", BENCHMARKS)),
    }
    trace_path = write_chrome_trace(
        os.path.join(args.output_dir, f"{args.experiment}.trace.json"),
        payloads,
        meta,
    )
    metrics_path = write_metrics_json(
        os.path.join(args.output_dir, f"{args.experiment}.metrics.json"),
        payloads,
        meta,
    )
    print(f"== trace {args.experiment} ({elapsed:.1f}s) ==")
    print(render_summary(payloads))
    print(f"trace:   {trace_path}  (load in https://ui.perfetto.dev)")
    print(f"metrics: {metrics_path}")
    return 0


__all__ = ["trace_main"]
