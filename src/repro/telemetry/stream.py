"""Campaign event stream: schema-versioned NDJSON + live progress.

The supervised engine (:mod:`repro.harness.supervisor`) already knows
everything interesting about a running campaign — which points are in
flight, which retried, which quarantined, how fast finished points
executed — but until now that knowledge died with the process unless
someone re-ran ``python -m repro trace`` afterwards. This module turns
it into a consumable **event stream**:

* every supervisor decision becomes one JSON object on one line
  (NDJSON), stamped with a schema version (``v``), a strictly
  increasing sequence number (``seq``) and seconds since campaign
  start (``t``), so external consumers (the future HTTP front-end,
  CI validators, ad-hoc ``jq``) can tail a file and reconstruct the
  campaign without parsing terminal output;
* the same events feed a live aggregate — points done/running/
  quarantined, retry count, per-tier events/sec, a wall-clock ETA —
  rendered by :class:`ProgressRenderer` when the CLI runs with
  ``--progress``;
* :func:`validate_stream_events` / :func:`validate_stream_file` check
  the stream the way :func:`repro.telemetry.exporters.validate_chrome_trace`
  checks traces: CI's ``report-smoke`` job validates every stream it
  produces (``python -m repro.telemetry.stream <file>``).

Event taxonomy (docs/OBSERVABILITY.md documents each field)::

    campaign_started   points, workers
    point_started      point, attempt, benchmark, machine
    point_finished     point, attempt, benchmark, machine, status,
                       wall_s, events, events_per_sec [+ metrics]
    point_retry        point, attempt, kind, delay_s [+ note]
    point_quarantined  point, attempts, note [+ flight_records]
    heartbeat          done, running, waiting, quarantined, retries
                       [+ eta_s, tiers]
    campaign_finished  counters [+ tiers, elapsed_s]

Timestamps here are wall-clock (observability of the *harness*, which
runs in real time), unlike the protocol tracer's logical ticks: two
runs of the same campaign emit the same event *sequence* but different
``t``/``wall_s`` values.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ReproError

#: Bump when an event gains/loses a *required* field; consumers refuse
#: streams from the future.
SCHEMA_VERSION = 1

#: Envelope fields present on every event.
ENVELOPE_FIELDS = ("v", "seq", "t", "event")

#: Required payload fields per event type. Optional fields (``note``,
#: ``metrics``, ``tiers``, ``eta_s``, ``flight_records``, ...) may ride
#: along; unknown *event types* are rejected.
EVENT_FIELDS: Dict[str, tuple] = {
    "campaign_started": ("points", "workers"),
    "point_started": ("point", "attempt", "benchmark", "machine"),
    "point_finished": (
        "point", "attempt", "benchmark", "machine", "status",
        "wall_s", "events", "events_per_sec",
    ),
    "point_retry": ("point", "attempt", "kind", "delay_s"),
    "point_quarantined": ("point", "attempts", "note"),
    "heartbeat": ("done", "running", "waiting", "quarantined", "retries"),
    "campaign_finished": ("counters",),
}

#: Fields that must be numbers (int or float) when present.
_NUMERIC_FIELDS = frozenset(
    (
        "points", "workers", "point", "attempt", "wall_s", "events",
        "events_per_sec", "delay_s", "attempts", "done", "running",
        "waiting", "quarantined", "retries", "eta_s", "elapsed_s",
        "flight_records", "t",
    )
)


def make_event(event: str, seq: int, t: float, **fields) -> Dict:
    """Build one schema-conformant event dict (raises on a malformed
    one — emitting garbage is a programming error, not bad input)."""
    if event not in EVENT_FIELDS:
        raise ReproError(f"unknown stream event type {event!r}")
    data = {"v": SCHEMA_VERSION, "seq": seq, "t": round(t, 6), "event": event}
    data.update(fields)
    missing = [key for key in EVENT_FIELDS[event] if data.get(key) is None]
    if missing:
        raise ReproError(f"stream event {event!r} missing fields {missing}")
    return data


# -- validation --------------------------------------------------------------


def validate_stream_events(
    events: Sequence[Dict], require_finished: bool = True
) -> List[str]:
    """Structural validation; returns problems (empty = valid).

    Checks what consumers rely on: the schema version, dense ``seq``
    numbering, non-decreasing timestamps, known event types with their
    required fields, numeric fields actually numeric, exactly one
    ``campaign_started`` first and (with ``require_finished``) one
    ``campaign_finished`` last.
    """
    problems: List[str] = []
    if not events:
        return ["stream is empty"]
    last_t = None
    finished_at = None
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not a JSON object")
            continue
        for key in ENVELOPE_FIELDS:
            if key not in event:
                problems.append(f"{where}: missing envelope field {key!r}")
        version = event.get("v")
        if version is not None and version != SCHEMA_VERSION:
            problems.append(
                f"{where}: schema version {version!r} "
                f"(this reader understands {SCHEMA_VERSION})"
            )
        if event.get("seq") != index:
            problems.append(
                f"{where}: seq {event.get('seq')!r}, expected {index}"
            )
        kind = event.get("event")
        if kind not in EVENT_FIELDS:
            problems.append(f"{where}: unknown event type {kind!r}")
            continue
        for key in EVENT_FIELDS[kind]:
            if event.get(key) is None:
                problems.append(f"{where} ({kind}): missing field {key!r}")
        for key, value in event.items():
            if key in _NUMERIC_FIELDS and value is not None:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    problems.append(
                        f"{where} ({kind}): field {key!r} must be a "
                        f"number, got {value!r}"
                    )
        t = event.get("t")
        if isinstance(t, (int, float)):
            if last_t is not None and t < last_t:
                problems.append(f"{where}: t went backwards ({last_t} -> {t})")
            last_t = t
        if kind == "campaign_started" and index != 0:
            problems.append(f"{where}: campaign_started not first")
        if kind == "campaign_finished":
            if finished_at is not None:
                problems.append(
                    f"{where}: second campaign_finished (first at {finished_at})"
                )
            finished_at = index
    first = events[0] if isinstance(events[0], dict) else {}
    if first.get("event") != "campaign_started":
        problems.append("first event is not campaign_started")
    if finished_at is not None and finished_at != len(events) - 1:
        problems.append(
            f"campaign_finished at {finished_at} is not the last event"
        )
    if require_finished and finished_at is None:
        problems.append("stream has no campaign_finished (truncated?)")
    return problems


def read_stream(path: str) -> List[Dict]:
    """Parse an NDJSON stream file into event dicts.

    Raises ``ValueError`` naming the first unparseable line — a
    half-written trailing line means the producer died mid-write, which
    is exactly what a validator must not paper over.
    """
    events: List[Dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
    return events


def validate_stream_file(path: str, require_finished: bool = True) -> List[str]:
    """Load + validate one NDJSON stream file; returns problems."""
    try:
        events = read_stream(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return validate_stream_events(events, require_finished=require_finished)


# -- live aggregation + emission ---------------------------------------------


class ProgressRenderer:
    """Terminal renderer for the campaign aggregate.

    On a TTY it repaints one status line in place (carriage return);
    piped to a file or CI log it prints a plain line per update so the
    log shows the campaign's shape without control characters.
    """

    def __init__(self, out=None) -> None:
        self.out = out if out is not None else sys.stderr
        self._tty = bool(getattr(self.out, "isatty", lambda: False)())
        self._last_width = 0

    def update(self, line: str) -> None:
        if self._tty:
            pad = " " * max(0, self._last_width - len(line))
            self.out.write(f"\r{line}{pad}")
            self._last_width = len(line)
        else:
            self.out.write(f"{line}\n")
        self.out.flush()

    def close(self) -> None:
        if self._tty and self._last_width:
            self.out.write("\n")
            self.out.flush()


class CampaignStream:
    """One campaign's event emitter + live aggregate.

    The supervised engine calls the semantic methods
    (:meth:`campaign_started` ... :meth:`campaign_finished`); each emits
    one validated NDJSON event to ``path`` (if given), forwards it to
    every listener callable, updates the aggregate, and repaints the
    progress renderer. Heartbeats are rate-limited to one per
    ``heartbeat_interval`` seconds (``0`` = every poll; the engine
    forces a final one so even sub-second campaigns ship at least one).

    The aggregate doubles as the data source for the run-report
    generator: :meth:`tier_stats` is where per-tier events/sec comes
    from (the result objects know events, only the stream saw walls).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        progress: bool = False,
        out=None,
        listeners: Sequence = (),
        heartbeat_interval: float = 1.0,
    ) -> None:
        self.path = path
        self._handle = None
        if path:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(path, "w")
        self._renderer = ProgressRenderer(out) if progress else None
        self._listeners = list(listeners)
        self.heartbeat_interval = heartbeat_interval
        self._last_heartbeat: Optional[float] = None
        self.events_emitted = 0
        self._start = time.monotonic()
        # -- aggregate state --
        self.points = 0
        self.workers = 1
        self.done = 0
        self.cached = 0
        self.quarantined = 0
        self.retries = 0
        self.running: set = set()
        self._fresh_walls: List[float] = []
        self._tiers: Dict[str, Dict[str, float]] = {}
        self.closed = False

    # -- plumbing ------------------------------------------------------------

    def _emit(self, event: str, **fields) -> Dict:
        data = make_event(
            event, self.events_emitted, time.monotonic() - self._start, **fields
        )
        self.events_emitted += 1
        if self._handle is not None:
            self._handle.write(json.dumps(data, sort_keys=True) + "\n")
            self._handle.flush()
        for listener in self._listeners:
            listener(data)
        if self._renderer is not None:
            self._renderer.update(self.progress_line())
        return data

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._renderer is not None:
            self._renderer.close()
        if self._handle is not None:
            self._handle.close()

    # -- derived state -------------------------------------------------------

    @property
    def remaining(self) -> int:
        return max(0, self.points - self.done - self.quarantined)

    def eta_seconds(self) -> Optional[float]:
        """Wall-clock estimate for the remaining points, from the mean
        fresh-point wall so far spread across the worker pool."""
        if not self._fresh_walls or not self.remaining:
            return None
        mean = sum(self._fresh_walls) / len(self._fresh_walls)
        return round(mean * self.remaining / max(1, self.workers), 3)

    def tier_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-machine aggregate: points, events, wall_s, events_per_sec
        (fresh executions only — cache hits have no meaningful wall)."""
        out = {}
        for machine, data in sorted(self._tiers.items()):
            eps = (
                round(data["events"] / data["wall_s"])
                if data["wall_s"] > 0
                else 0
            )
            out[machine] = {**data, "events_per_sec": eps}
        return out

    def progress_line(self) -> str:
        parts = [
            f"campaign: {self.done}/{self.points} done",
            f"{len(self.running)} running",
            f"{self.quarantined} quarantined",
            f"{self.retries} retries",
        ]
        if self.cached:
            parts[0] += f" ({self.cached} cached)"
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        line = ", ".join(parts)
        tiers = self.tier_stats()
        if tiers:
            shown = list(tiers.items())[:4]
            rates = ", ".join(
                f"{machine} {stats['events_per_sec'] / 1000:.0f}k ev/s"
                for machine, stats in shown
            )
            suffix = ", ..." if len(tiers) > len(shown) else ""
            line += f" | {rates}{suffix}"
        return line

    # -- semantic events (called by the supervisor) --------------------------

    def campaign_started(self, points: int, workers: int) -> None:
        self.points = points
        self.workers = max(1, workers)
        self._emit("campaign_started", points=points, workers=self.workers)

    def point_started(
        self, point: int, attempt: int, benchmark: str, machine: str
    ) -> None:
        self.running.add(point)
        self._emit(
            "point_started",
            point=point, attempt=attempt, benchmark=benchmark, machine=machine,
        )

    def point_finished(
        self,
        point: int,
        attempt: int,
        benchmark: str,
        machine: str,
        status: str,
        wall_s: float,
        events: Optional[int],
        metrics: Optional[Dict] = None,
    ) -> None:
        self.running.discard(point)
        self.done += 1
        if status == "cached":
            self.cached += 1
        elif wall_s > 0:
            self._fresh_walls.append(wall_s)
            if events:
                tier = self._tiers.setdefault(
                    machine, {"points": 0, "events": 0, "wall_s": 0.0}
                )
                tier["points"] += 1
                tier["events"] += events
                tier["wall_s"] = round(tier["wall_s"] + wall_s, 6)
        fields = {
            "point": point,
            "attempt": attempt,
            "benchmark": benchmark,
            "machine": machine,
            "status": status,
            "wall_s": round(wall_s, 6),
            "events": events if events is not None else 0,
            "events_per_sec": (
                round(events / wall_s) if events and wall_s > 0 else 0
            ),
        }
        if metrics:
            fields["metrics"] = metrics
        self._emit("point_finished", **fields)

    def point_retry(
        self, point: int, attempt: int, kind: str, delay_s: float, note: str = ""
    ) -> None:
        self.running.discard(point)
        self.retries += 1
        self._emit(
            "point_retry",
            point=point, attempt=attempt, kind=kind,
            delay_s=round(delay_s, 6), note=note,
        )

    def point_quarantined(
        self, point: int, attempts: int, note: str, flight_records: int = 0
    ) -> None:
        self.running.discard(point)
        self.quarantined += 1
        self._emit(
            "point_quarantined",
            point=point, attempts=attempts, note=note,
            flight_records=flight_records,
        )

    def heartbeat(self, waiting: int = 0, force: bool = False) -> bool:
        """Emit a heartbeat, rate-limited; returns whether one went out."""
        now = time.monotonic()
        if (
            not force
            and self._last_heartbeat is not None
            and now - self._last_heartbeat < self.heartbeat_interval
        ):
            return False
        self._last_heartbeat = now
        fields = {
            "done": self.done,
            "running": len(self.running),
            "waiting": waiting,
            "quarantined": self.quarantined,
            "retries": self.retries,
        }
        eta = self.eta_seconds()
        if eta is not None:
            fields["eta_s"] = eta
        tiers = self.tier_stats()
        if tiers:
            fields["tiers"] = {
                machine: stats["events_per_sec"]
                for machine, stats in tiers.items()
            }
        self._emit("heartbeat", **fields)
        return True

    def campaign_finished(self, counters: Dict[str, int]) -> None:
        fields = {
            "counters": dict(counters),
            "elapsed_s": round(time.monotonic() - self._start, 6),
        }
        tiers = self.tier_stats()
        if tiers:
            fields["tiers"] = {
                machine: stats["events_per_sec"]
                for machine, stats in tiers.items()
            }
        self._emit("campaign_finished", **fields)


# -- CLI validator (CI's report-smoke job) -----------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.telemetry.stream <file.ndjson> [--partial]``

    Validates a campaign event stream against the schema; ``--partial``
    accepts a stream without a ``campaign_finished`` terminator (a
    still-running or killed campaign).
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Validate a campaign NDJSON event stream."
    )
    parser.add_argument("stream", help="path to an NDJSON stream file")
    parser.add_argument(
        "--partial",
        action="store_true",
        help="accept a stream without a campaign_finished terminator",
    )
    args = parser.parse_args(argv)
    problems = validate_stream_file(
        args.stream, require_finished=not args.partial
    )
    if problems:
        print(f"INVALID: {args.stream}")
        for problem in problems:
            print(f"  {problem}")
        return 1
    events = read_stream(args.stream)
    print(
        f"{args.stream}: valid campaign stream "
        f"(v{SCHEMA_VERSION}, {len(events)} events)"
    )
    return 0


__all__ = [
    "CampaignStream",
    "EVENT_FIELDS",
    "ProgressRenderer",
    "SCHEMA_VERSION",
    "make_event",
    "read_stream",
    "validate_stream_events",
    "validate_stream_file",
]


if __name__ == "__main__":  # pragma: no cover - exercised in CI
    raise SystemExit(main())
