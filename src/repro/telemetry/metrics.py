"""Counters, gauges and bounded histograms for protocol metrics.

Deliberately separate from :class:`repro.common.stats.StatsRegistry`:
the stats registry is part of the *observable protocol surface* (the
differential harnesses and conformance fixtures pin its exact
contents), so telemetry must never write to it. These metrics live on
the opt-in :class:`repro.telemetry.Telemetry` object and add
distribution shape — histograms with fixed bucket edges — that flat
counters cannot express (snoop fan-out, VOL length at access, MSHR
occupancy, bus wait cycles).

Histograms are *bounded*: edges are fixed at creation, observation is
an O(log buckets) bisect into preallocated integer counts, and memory
never grows with the number of observations — safe to leave attached
to multi-million-event runs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ReproError

#: Default edges for small-cardinality distributions (snoop fan-out,
#: VOL length): one bucket per interesting value, then powers of two.
FANOUT_EDGES: Tuple[int, ...] = (0, 1, 2, 3, 4, 8, 16)

#: Default edges for cycle-valued distributions (bus wait, occupancy).
CYCLE_EDGES: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64)

#: Default edges for queue/buffer occupancy (MSHRs, writeback buffers).
OCCUPANCY_EDGES: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "unit", "value")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> Dict:
        return {"unit": self.unit, "value": self.value}


class Gauge:
    """Last-written value, with min/max/sample-count envelope."""

    __slots__ = ("name", "unit", "value", "vmin", "vmax", "samples")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.value = 0
        self.vmin = None
        self.vmax = None
        self.samples = 0

    def set(self, value) -> None:
        self.value = value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        self.samples += 1

    def to_dict(self) -> Dict:
        return {
            "unit": self.unit,
            "value": self.value,
            "min": self.vmin,
            "max": self.vmax,
            "samples": self.samples,
        }


class Histogram:
    """Bounded histogram with inclusive upper-bound bucket edges.

    ``edges = (a, b, c)`` yields buckets ``v <= a``, ``a < v <= b``,
    ``b < v <= c`` and an overflow bucket ``v > c`` — ``counts`` always
    has ``len(edges) + 1`` slots. Totals, min and max ride along so
    summaries can report a mean without keeping samples.
    """

    __slots__ = ("name", "unit", "edges", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, edges: Sequence[int], unit: str = "") -> None:
        edges = tuple(edges)
        if not edges:
            raise ReproError(f"histogram {name!r} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ReproError(
                f"histogram {name!r} edges must be strictly increasing: {edges}"
            )
        self.name = name
        self.unit = unit
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0
        self.vmin = None
        self.vmax = None

    def observe(self, value) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        vmin = self.vmin
        if vmin is None or value < vmin:
            self.vmin = value
        vmax = self.vmax
        if vmax is None or value > vmax:
            self.vmax = value

    def observe_many(self, value, count: int) -> None:
        """``count`` observations of ``value`` in one call — the flush
        side of batched hot-path accumulators (identical result to
        calling :meth:`observe` ``count`` times)."""
        if count <= 0:
            return
        self.counts[bisect_left(self.edges, value)] += count
        self.count += count
        self.total += value * count
        vmin = self.vmin
        if vmin is None or value < vmin:
            self.vmin = value
        vmax = self.vmax
        if vmax is None or value > vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {
            "unit": self.unit,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }


class MetricsRegistry:
    """Get-or-create registry keyed by metric name.

    A name is permanently bound to one metric type (and, for
    histograms, one edge tuple): a conflicting re-registration is a
    programming error and raises rather than silently splitting data.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is not None and not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str, unit: str = "") -> Counter:
        metric = self._get(name, Counter)
        if metric is None:
            metric = Counter(name, unit)
            self._metrics[name] = metric
        return metric

    def gauge(self, name: str, unit: str = "") -> Gauge:
        metric = self._get(name, Gauge)
        if metric is None:
            metric = Gauge(name, unit)
            self._metrics[name] = metric
        return metric

    def histogram(self, name: str, edges: Sequence[int], unit: str = "") -> Histogram:
        metric = self._get(name, Histogram)
        if metric is None:
            metric = Histogram(name, edges, unit)
            self._metrics[name] = metric
        elif metric.edges != tuple(edges):
            raise ReproError(
                f"histogram {name!r} already registered with edges "
                f"{metric.edges}, not {tuple(edges)}"
            )
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-safe dump, grouped by metric type, names sorted."""
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.to_dict()
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.to_dict()
            else:
                out["histograms"][name] = metric.to_dict()
        return out


def merge_metric_snapshots(snapshots: List[Dict]) -> Dict:
    """Combine per-worker metric snapshots into one aggregate.

    Counters and histogram counts/totals add; gauge and histogram
    min/max envelopes widen; histogram edges must agree (they come from
    the same wiring code, so a mismatch means incompatible payloads).
    Likewise a metric *name* must be the same kind in every snapshot —
    one worker's counter silently summing into another worker's gauge
    would corrupt both, so kind conflicts raise.
    """
    merged: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    kinds: Dict[str, str] = {}

    def claim(name: str, kind: str) -> None:
        previous = kinds.setdefault(name, kind)
        if previous != kind:
            raise ReproError(
                f"cannot merge metric {name!r}: registered as a "
                f"{previous[:-1]} in one snapshot and a {kind[:-1]} "
                "in another"
            )

    for snap in snapshots:
        for kind in ("counters", "gauges", "histograms"):
            for name in snap.get(kind, {}):
                claim(name, kind)
        for name, data in snap.get("counters", {}).items():
            entry = merged["counters"].setdefault(
                name, {"unit": data.get("unit", ""), "value": 0}
            )
            entry["value"] += data["value"]
        for name, data in snap.get("gauges", {}).items():
            entry = merged["gauges"].setdefault(
                name,
                {
                    "unit": data.get("unit", ""),
                    "value": data["value"],
                    "min": None,
                    "max": None,
                    "samples": 0,
                },
            )
            entry["value"] = data["value"]
            for key, pick in (("min", min), ("max", max)):
                if data.get(key) is not None:
                    entry[key] = (
                        data[key]
                        if entry[key] is None
                        else pick(entry[key], data[key])
                    )
            entry["samples"] += data.get("samples", 0)
        for name, data in snap.get("histograms", {}).items():
            entry = merged["histograms"].get(name)
            if entry is None:
                entry = {
                    "unit": data.get("unit", ""),
                    "edges": list(data["edges"]),
                    "counts": [0] * len(data["counts"]),
                    "count": 0,
                    "total": 0,
                    "min": None,
                    "max": None,
                }
                merged["histograms"][name] = entry
            if entry["edges"] != list(data["edges"]):
                raise ReproError(
                    f"cannot merge histogram {name!r}: edges "
                    f"{entry['edges']} vs {data['edges']}"
                )
            entry["counts"] = [
                a + b for a, b in zip(entry["counts"], data["counts"])
            ]
            entry["count"] += data["count"]
            entry["total"] += data["total"]
            for key, pick in (("min", min), ("max", max)):
                if data.get(key) is not None:
                    entry[key] = (
                        data[key]
                        if entry[key] is None
                        else pick(entry[key], data[key])
                    )
    return merged


__all__ = [
    "CYCLE_EDGES",
    "FANOUT_EDGES",
    "OCCUPANCY_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_metric_snapshots",
]
