"""Run-report generator: ``python -m repro report <experiment>``.

One command turns a campaign into a self-contained artifact a human (or
a dashboard) can read without re-running anything:

* runs the experiment under the supervised engine with telemetry
  enabled (honoring ``--resume``/``--store``, so a warm result store
  renders a report without recomputing a single point);
* watches its own campaign through an injected
  :class:`repro.telemetry.stream.CampaignStream` — that is where
  per-tier wall times, and therefore events/sec, come from (result
  objects know event counts; only the stream saw the clock) — and can
  simultaneously persist the NDJSON stream (``--stream``) and render
  live progress (``--progress``);
* writes ``<experiment>.report.md`` and ``<experiment>.report.html``
  (self-contained, inline CSS, no external assets): campaign counters,
  per-tier throughput, paper side-by-side (Table 2 / Table 3 goldens
  when the experiment carries them), VOL-length and bus-occupancy
  histograms, the supervisor's retry/chaos history, and the flight-
  recorder post-mortem of every quarantined point;
* writes ``metrics.prom`` — a Prometheus text exposition of the merged
  metrics registry plus the campaign counters, ready for a scraper
  once the service front-end lands.

Exit codes follow the repo convention: **0** complete campaign and
report written, **1** partial campaign (quarantined points — the report
is still written; that is when you need it most), **2** usage or
configuration error.
"""

from __future__ import annotations

import argparse
import html as html_module
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError, ReproError

#: Output formats the CLI accepts.
FORMATS = ("md", "html")

#: Histograms the report charts first, in this order, when present.
FEATURED_HISTOGRAMS = ("svc.vol_length", "bus.occupancy_cycles")

#: Fixed Prometheus exposition filename (ISSUE/service contract).
PROM_FILENAME = "metrics.prom"

#: Which measured metric the experiment's paper goldens refer to.
_PAPER_METRICS = {
    "table2": ("miss_ratio", "miss ratio"),
    "table3": ("bus_utilization", "bus utilization"),
}


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# -- structured collection ---------------------------------------------------


def collect_report(
    result, stream=None, meta: Optional[Dict] = None
) -> Dict:
    """Fold an ``ExperimentResult`` (+ optional campaign stream) into
    the plain-data structure both renderers consume."""
    from repro.telemetry.metrics import merge_metric_snapshots

    points = list(result.points)
    machines: List[str] = []
    for point in points:
        if point.machine not in machines:
            machines.append(point.machine)
    benchmarks: List[str] = []
    for point in points:
        if point.benchmark not in benchmarks:
            benchmarks.append(point.benchmark)

    counters: Dict[str, int] = {}
    for campaign in result.campaigns:
        for name, value in campaign.counters.items():
            counters[name] = counters.get(name, 0) + value

    tier_walls = stream.tier_stats() if stream is not None else {}
    tiers = []
    for machine in machines:
        rows = [p for p in points if p.machine == machine]
        walls = tier_walls.get(machine, {})
        tiers.append(
            {
                "machine": machine,
                "points": len(rows),
                "mean_ipc": round(_mean([p.ipc for p in rows]), 4),
                "mean_miss": round(_mean([p.miss_ratio for p in rows]), 4),
                "mean_bus_util": round(
                    _mean([p.bus_utilization for p in rows]), 4
                ),
                "events": sum(p.instructions for p in rows),
                "wall_s": round(walls.get("wall_s", 0.0), 3),
                "events_per_sec": walls.get("events_per_sec", 0),
            }
        )

    paper_rows = []
    metric_name, metric_label = _PAPER_METRICS.get(
        result.experiment, ("ipc", "IPC")
    )
    if result.paper:
        for benchmark in benchmarks:
            goldens = result.paper.get(benchmark, {})
            for machine in machines:
                golden = goldens.get(machine)
                if golden is None:
                    continue
                point = result.point(benchmark, machine)
                measured = (
                    getattr(point, metric_name) if point is not None else None
                )
                paper_rows.append(
                    {
                        "benchmark": benchmark,
                        "machine": machine,
                        "measured": (
                            round(measured, 4) if measured is not None else None
                        ),
                        "paper": golden,
                    }
                )

    payloads = [p.telemetry for p in points if p.telemetry]
    merged = merge_metric_snapshots(
        [payload.get("metrics", {}) for payload in payloads]
    )
    dropped = sum(payload.get("dropped_spans", 0) for payload in payloads)

    quarantined = []
    for campaign in result.campaigns:
        for outcome in campaign.quarantined:
            quarantined.append(
                {
                    "point": outcome.index,
                    "benchmark": getattr(outcome.spec, "benchmark", "?"),
                    "machine": getattr(outcome.spec, "machine", "?"),
                    "attempts": outcome.attempts,
                    "failures": list(outcome.failures),
                    "flight": outcome.flight or [],
                }
            )

    return {
        "meta": {
            "experiment": result.experiment,
            "generated": time.strftime("%Y-%m-%d %H:%M:%S"),
            "benchmarks": benchmarks,
            "machines": machines,
            "paper_metric": metric_label,
            **(meta or {}),
        },
        "counters": counters,
        "tiers": tiers,
        "paper": paper_rows,
        "metrics": merged,
        "dropped_spans": dropped,
        "quarantined": quarantined,
    }


# -- Prometheus text exposition ----------------------------------------------


def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    return f"repro_{cleaned}"


def prometheus_exposition(
    merged: Dict, campaign_counters: Optional[Dict[str, int]] = None
) -> str:
    """Prometheus text format (0.0.4) for a merged metrics snapshot.

    Histogram bucket edges are inclusive upper bounds on both sides, so
    our buckets map directly onto cumulative ``le`` buckets.
    """
    lines: List[str] = []
    for name, data in sorted(merged.get("counters", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {data['value']}")
    for name, data in sorted(merged.get("gauges", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {data['value']}")
    for name, data in sorted(merged.get("histograms", {}).items()):
        metric = _prom_name(name)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{edge}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{metric}_sum {data['total']}")
        lines.append(f"{metric}_count {data['count']}")
    for name, value in sorted((campaign_counters or {}).items()):
        metric = _prom_name(f"campaign_{name}")
        lines.append(f"# HELP {metric} supervisor campaign counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    return "\n".join(lines) + "\n"


# -- rendering helpers -------------------------------------------------------


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def _html_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    esc = html_module.escape
    head = "".join(f"<th>{esc(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{esc(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _histogram_rows(data: Dict) -> List:
    """(label, count) per bucket, including the overflow bucket."""
    rows = []
    for edge, count in zip(data["edges"], data["counts"]):
        rows.append((f"<= {edge}", count))
    rows.append((f"> {data['edges'][-1]}", data["counts"][-1]))
    return rows


def _histogram_order(merged: Dict) -> List[str]:
    names = [n for n in FEATURED_HISTOGRAMS if n in merged["histograms"]]
    names.extend(
        n for n in sorted(merged["histograms"]) if n not in names
    )
    return names


def _tier_table_rows(report: Dict) -> List[List]:
    rows = []
    for tier in report["tiers"]:
        rows.append(
            [
                tier["machine"],
                tier["points"],
                f"{tier['mean_ipc']:.3f}",
                f"{tier['mean_miss']:.3f}",
                f"{tier['mean_bus_util']:.3f}",
                tier["events"],
                f"{tier['wall_s']:.3f}" if tier["wall_s"] else "-",
                tier["events_per_sec"] or "-",
            ]
        )
    return rows


_TIER_HEADERS = (
    "machine", "points", "mean IPC", "mean miss", "mean bus util",
    "events", "wall (s)", "events/sec",
)


def render_markdown(report: Dict) -> str:
    meta = report["meta"]
    lines = [
        f"# Run report: {meta['experiment']}",
        "",
        f"Generated {meta['generated']} · "
        f"benchmarks: {', '.join(meta['benchmarks']) or '-'} · "
        f"machines: {', '.join(meta['machines']) or '-'}",
        "",
        "## Campaign",
        "",
    ]
    counters = report["counters"]
    if counters:
        lines.append(
            _md_table(
                ("counter", "value"),
                [(k, counters[k]) for k in sorted(counters)],
            )
        )
    else:
        lines.append("No campaign counters (no points executed).")
    lines += ["", "## Per-tier throughput", ""]
    lines.append(_md_table(_TIER_HEADERS, _tier_table_rows(report)))
    lines.append(
        "\n(events/sec comes from the campaign event stream; cached "
        "points contribute events but no wall time.)"
    )
    if report["paper"]:
        metric = meta["paper_metric"]
        lines += ["", f"## Paper comparison ({metric})", ""]
        lines.append(
            _md_table(
                ("benchmark", "machine", f"measured {metric}",
                 f"paper {metric}"),
                [
                    (
                        row["benchmark"],
                        row["machine"],
                        "-" if row["measured"] is None else row["measured"],
                        row["paper"],
                    )
                    for row in report["paper"]
                ],
            )
        )
    merged = report["metrics"]
    names = _histogram_order(merged)
    if names:
        lines += ["", "## Histograms", ""]
        for name in names:
            data = merged["histograms"][name]
            if not data["count"]:
                continue
            unit = f" {data['unit']}" if data.get("unit") else ""
            mean = data["total"] / data["count"]
            lines.append(
                f"### {name} (n={data['count']}, mean={mean:.2f}{unit})"
            )
            lines.append("")
            lines.append("```")
            peak = max(
                (count for _, count in _histogram_rows(data)), default=1
            )
            for label, count in _histogram_rows(data):
                bar = "#" * (round(40 * count / peak) if peak else 0)
                lines.append(f"{label:>8s}  {count:>10d}  {bar}")
            lines.append("```")
            lines.append("")
    if report["dropped_spans"]:
        lines.append(
            f"**WARNING:** {report['dropped_spans']} span(s) dropped by "
            "the trace ring buffer."
        )
    if report["quarantined"]:
        lines += ["", "## Quarantined points (flight recorder)", ""]
        for item in report["quarantined"]:
            lines.append(
                f"### point {item['point']}: {item['benchmark']}/"
                f"{item['machine']} ({item['attempts']} attempts, "
                f"{len(item['flight'])} flight record(s))"
            )
            for failure in item["failures"]:
                lines.append(f"- {failure}")
            for record in item["flight"]:
                lines.append(
                    f"- flight attempt {record.get('attempt')}: "
                    + ", ".join(
                        entry.get("kind", "?")
                        for entry in record.get("entries", [])
                    )
                )
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_CSS = (
    "body{font-family:system-ui,sans-serif;margin:2rem auto;max-width:60rem;"
    "padding:0 1rem;color:#1a1a2e}"
    "table{border-collapse:collapse;margin:1rem 0}"
    "th,td{border:1px solid #c8c8d8;padding:0.3rem 0.6rem;text-align:left}"
    "th{background:#eef}"
    ".bar{background:#4a6fa5;height:0.8rem;display:inline-block}"
    ".warn{color:#a33;font-weight:bold}"
    "h1,h2,h3{color:#16213e}"
)


def render_html(report: Dict) -> str:
    esc = html_module.escape
    meta = report["meta"]
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Run report: {esc(meta['experiment'])}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Run report: {esc(meta['experiment'])}</h1>",
        f"<p>Generated {esc(meta['generated'])} · benchmarks: "
        f"{esc(', '.join(meta['benchmarks']) or '-')} · machines: "
        f"{esc(', '.join(meta['machines']) or '-')}</p>",
        "<h2>Campaign</h2>",
    ]
    counters = report["counters"]
    if counters:
        parts.append(
            _html_table(
                ("counter", "value"),
                [(k, counters[k]) for k in sorted(counters)],
            )
        )
    else:
        parts.append("<p>No campaign counters (no points executed).</p>")
    parts.append("<h2>Per-tier throughput</h2>")
    parts.append(_html_table(_TIER_HEADERS, _tier_table_rows(report)))
    if report["paper"]:
        metric = meta["paper_metric"]
        parts.append(f"<h2>Paper comparison ({esc(metric)})</h2>")
        parts.append(
            _html_table(
                ("benchmark", "machine", f"measured {metric}",
                 f"paper {metric}"),
                [
                    (
                        row["benchmark"],
                        row["machine"],
                        "-" if row["measured"] is None else row["measured"],
                        row["paper"],
                    )
                    for row in report["paper"]
                ],
            )
        )
    merged = report["metrics"]
    names = _histogram_order(merged)
    if names:
        parts.append("<h2>Histograms</h2>")
        for name in names:
            data = merged["histograms"][name]
            if not data["count"]:
                continue
            unit = f" {data['unit']}" if data.get("unit") else ""
            mean = data["total"] / data["count"]
            parts.append(
                f"<h3>{esc(name)} (n={data['count']}, "
                f"mean={mean:.2f}{esc(unit)})</h3>"
            )
            rows = _histogram_rows(data)
            peak = max((count for _, count in rows), default=1) or 1
            bar_rows = [
                (
                    label,
                    count,
                    f"<span class='bar' "
                    f"style='width:{round(300 * count / peak)}px'></span>",
                )
                for label, count in rows
            ]
            head = "".join(
                f"<th>{esc(h)}</th>" for h in ("bucket", "count", "")
            )
            body = "".join(
                f"<tr><td>{esc(label)}</td><td>{count}</td><td>{bar}</td></tr>"
                for label, count, bar in bar_rows
            )
            parts.append(
                f"<table><thead><tr>{head}</tr></thead>"
                f"<tbody>{body}</tbody></table>"
            )
    if report["dropped_spans"]:
        parts.append(
            f"<p class='warn'>WARNING: {report['dropped_spans']} span(s) "
            "dropped by the trace ring buffer.</p>"
        )
    if report["quarantined"]:
        parts.append("<h2>Quarantined points (flight recorder)</h2>")
        for item in report["quarantined"]:
            parts.append(
                f"<h3>point {item['point']}: {esc(item['benchmark'])}/"
                f"{esc(item['machine'])} ({item['attempts']} attempts, "
                f"{len(item['flight'])} flight record(s))</h3>"
            )
            failures = "".join(
                f"<li>{esc(failure)}</li>" for failure in item["failures"]
            )
            flights = "".join(
                "<li>flight attempt "
                f"{record.get('attempt')}: "
                + esc(
                    ", ".join(
                        entry.get("kind", "?")
                        for entry in record.get("entries", [])
                    )
                )
                + "</li>"
                for record in item["flight"]
            )
            parts.append(f"<ul>{failures}{flights}</ul>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_report_files(
    report: Dict,
    output_dir: str,
    formats: Sequence[str] = FORMATS,
    campaign_counters: Optional[Dict[str, int]] = None,
) -> Dict[str, str]:
    """Write the requested renderings + the Prometheus exposition;
    returns ``{kind: path}``."""
    os.makedirs(output_dir, exist_ok=True)
    experiment = report["meta"]["experiment"]
    written: Dict[str, str] = {}
    if "md" in formats:
        path = os.path.join(output_dir, f"{experiment}.report.md")
        with open(path, "w") as handle:
            handle.write(render_markdown(report))
        written["md"] = path
    if "html" in formats:
        path = os.path.join(output_dir, f"{experiment}.report.html")
        with open(path, "w") as handle:
            handle.write(render_html(report))
        written["html"] = path
    prom_path = os.path.join(output_dir, PROM_FILENAME)
    with open(prom_path, "w") as handle:
        handle.write(
            prometheus_exposition(
                report["metrics"],
                campaign_counters
                if campaign_counters is not None
                else report["counters"],
            )
        )
    written["prom"] = prom_path
    return written


# -- CLI ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Run an experiment campaign and render an aggregated "
        "HTML/markdown run report plus a Prometheus metrics exposition.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id from the registry (see 'python -m repro list')",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated SPEC95 benchmark subset",
    )
    parser.add_argument(
        "--designs",
        default=None,
        help="comma-separated design tiers (ablation_designs only; "
        "e.g. base,ec,ecs,hr,rl,final)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (default: REPRO_SCALE or 1.0)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help="worker processes (0 = one per CPU; default: REPRO_WORKERS "
        "or serial)",
    )
    parser.add_argument(
        "--timeout",
        default=None,
        help="per-point wall-clock timeout in seconds",
    )
    parser.add_argument(
        "--retries",
        default=None,
        help="retry budget per failing point before quarantine",
    )
    parser.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a seeded chaos plan into the campaign",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve already-computed points from the result store",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="result-store root for --resume",
    )
    parser.add_argument(
        "--output-dir",
        default="reports",
        help="directory for the report artifacts (default: reports)",
    )
    parser.add_argument(
        "--format",
        default=",".join(FORMATS),
        help="comma-separated output formats: md,html (metrics.prom is "
        "always written)",
    )
    parser.add_argument(
        "--stream",
        default=None,
        metavar="FILE",
        help="also persist the campaign's NDJSON event stream to FILE",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live campaign progress on stderr",
    )
    return parser


def report_main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.harness.experiments import EXPERIMENTS
    from repro.workloads.spec95 import BENCHMARKS

    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            "see 'python -m repro list'",
            file=sys.stderr,
        )
        return 2

    formats = tuple(f for f in args.format.split(",") if f)
    unknown_formats = [f for f in formats if f not in FORMATS]
    if unknown_formats or not formats:
        print(
            f"unknown formats {unknown_formats or args.format!r}: "
            f"choose from {','.join(FORMATS)}",
            file=sys.stderr,
        )
        return 2

    kwargs = {}
    if args.benchmarks:
        requested = tuple(name.strip() for name in args.benchmarks.split(","))
        unknown = [name for name in requested if name not in BENCHMARKS]
        if unknown:
            print(f"unknown benchmarks: {unknown}", file=sys.stderr)
            return 2
        kwargs["benchmarks"] = requested
    if args.designs:
        if args.experiment != "ablation_designs":
            print(
                "--designs only applies to the ablation_designs experiment",
                file=sys.stderr,
            )
            return 2
        from repro.svc.designs import DESIGNS

        designs = tuple(name.strip() for name in args.designs.split(","))
        unknown = [name for name in designs if name not in DESIGNS]
        if unknown:
            print(
                f"unknown designs: {unknown} "
                f"(choose from {','.join(sorted(DESIGNS))})",
                file=sys.stderr,
            )
            return 2
        kwargs["designs"] = designs
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.resume:
        kwargs["resume"] = True
    # Telemetry on: the report's histograms and metrics.prom come from
    # the merged per-point snapshots.
    kwargs["telemetry"] = True

    from repro.harness.parallel import resolve_workers
    from repro.harness.supervisor import (
        SupervisorConfig,
        resolve_point_timeout,
        resolve_retries,
        set_default_supervisor,
    )
    from repro.telemetry.stream import CampaignStream

    stream = CampaignStream(path=args.stream, progress=args.progress)
    try:
        resolve_workers(args.workers)
        supervisor = SupervisorConfig(
            point_timeout=resolve_point_timeout(args.timeout),
            retries=resolve_retries(args.retries),
            chaos_seed=args.chaos,
            resume=args.resume,
            store_root=args.store,
            stream=stream,
        )
    except ConfigError as error:
        stream.close()
        print(f"config error: {error}", file=sys.stderr)
        return 2

    previous = set_default_supervisor(supervisor)
    try:
        result = EXPERIMENTS[args.experiment](**kwargs)
    except ConfigError as error:
        print(f"config error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"run failed: {error}", file=sys.stderr)
        return 1
    finally:
        set_default_supervisor(previous)
        stream.close()

    report = collect_report(result, stream=stream)
    written = write_report_files(report, args.output_dir, formats)
    for kind, path in sorted(written.items()):
        print(f"report[{kind}]: {path}")
    for campaign in result.campaigns:
        print(f"campaign: {campaign.summary()}", file=sys.stderr)
    quarantined = result.quarantined_count
    if quarantined:
        print(
            f"PARTIAL CAMPAIGN: {quarantined} point(s) quarantined; the "
            "report carries their flight-recorder post-mortems",
            file=sys.stderr,
        )
        return 1
    return 0


__all__ = [
    "FORMATS",
    "PROM_FILENAME",
    "build_parser",
    "collect_report",
    "prometheus_exposition",
    "render_html",
    "render_markdown",
    "report_main",
    "write_report_files",
]


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(report_main())
