"""Unified telemetry: span tracing, metrics, and trace/metrics export.

The observability substrate for the whole reproduction. One
:class:`Telemetry` object bundles

* a :class:`~repro.telemetry.tracer.Tracer` — nested spans with causal
  parent links around every protocol transaction (bus transactions,
  VCL snoop resolution, VOL walks and repairs, commit/squash waves,
  writeback drains), plus point-in-time instants, and
* a :class:`~repro.telemetry.metrics.MetricsRegistry` — counters,
  gauges and bounded histograms (snoop fan-out, VOL length at access,
  MSHR occupancy, bus wait cycles, ...).

Exporters (:mod:`repro.telemetry.exporters`) turn snapshots into Chrome
``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``), a
flat metrics JSON, and a terminal summary; ``python -m repro trace
<experiment>`` runs any experiment with tracing on and emits all three.

Cost model — near-zero when off, checked once at wiring time
------------------------------------------------------------

Components never test an ``enabled`` flag per event. They normalize at
construction::

    self.telemetry = wired(telemetry)   # None unless enabled

and every hot path then pays a single ``is not None`` test, exactly the
pattern the ``event_log=None`` plumbing already uses. A disabled
``Telemetry(enabled=False)`` wires to ``None``, so "telemetry compiled
in but off" and "no telemetry" are byte-identical code paths — which is
what lets ``tools/bench_perf.py`` assert the disabled-mode overhead.

Determinism
-----------

Span timestamps come from a logical tick clock (one tick per span
begin/end/instant), not wall time, so the same run always emits the
same trace and Perfetto's containment-based nesting is exact. Simulated
cycle numbers ride along as span args. Telemetry never writes to the
:class:`~repro.common.events.EventLog` or
:class:`~repro.common.stats.StatsRegistry`: event streams and stats are
bit-identical with telemetry on or off (enforced by the differential
tests across all six design tiers).
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.metrics import (
    CYCLE_EDGES,
    FANOUT_EDGES,
    OCCUPANCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracer import Span, Tracer

# -- span kind taxonomy (docs/OBSERVABILITY.md documents each) ---------------

#: One bus transaction: BusRead, BusWrite or a cast-out writeback.
BUS_TXN = "bus_txn"
#: VCL snoop resolution: holder snapshot + VOL reconstruction.
SNOOP = "snoop"
#: A walk along the VOL: version supply composition or the store's
#: invalidation window.
VOL_WALK = "vol_walk"
#: Post-transaction VOL repair (pointer rewrite, T-bit refresh, checks).
VOL_REPAIR = "vol_repair"
#: Committed-version purge: writebacks draining to next-level memory.
WB_DRAIN = "wb_drain"
#: One head-task commit wave.
COMMIT = "commit"
#: One squash wave (violation, misprediction, fault or ARB reclaim).
SQUASH = "squash"
#: One PU memory operation as seen by the timing simulator.
MEM_OP = "mem_op"
#: Whole-run envelope span (timing simulator / functional driver).
RUN = "run"
#: Instant: a task began on a cache/PU.
TASK_BEGIN = "task_begin"
#: Error-level instant: the runtime invariant checker tripped.
INVARIANT_VIOLATION = "invariant_violation"
#: One supervised campaign envelope (:mod:`repro.harness.supervisor`).
CAMPAIGN = "campaign"
#: One attempt at one experiment point under the supervisor.
POINT_ATTEMPT = "point_attempt"
#: Instant: a supervisor decision (retry, timeout, crash, quarantine).
SUPERVISOR_EVENT = "supervisor_event"


#: Ring capacity / sampling interval used by campaign runners
#: (:func:`repro.harness.experiments._point_telemetry`): keep the newest
#: ~64k spans and 1-in-128 per-memory-op subtrees. A plain
#: ``Telemetry()`` records everything — unit tests and the differential
#: harness depend on full traces.
PRODUCTION_TRACE_CAPACITY = 65536
PRODUCTION_SAMPLE_INTERVAL = 128


class Telemetry:
    """One run's tracer + metrics, with convenience passthroughs.

    ``capacity`` and ``sample_interval`` bound tracing cost for long
    campaigns (see :mod:`repro.telemetry.tracer`); sampling applies to
    :data:`MEM_OP` subtrees — the per-memory-operation envelopes that
    account for nearly all span volume — while commits, squashes and
    every warning/error instant are always recorded, and metrics stay
    exact regardless.
    """

    __slots__ = ("label", "enabled", "tracer", "metrics", "_flush_hooks")

    def __init__(
        self,
        label: str = "run",
        enabled: bool = True,
        capacity: Optional[int] = None,
        sample_interval: int = 1,
    ) -> None:
        self.label = label
        self.enabled = enabled
        self.tracer = Tracer(
            capacity=capacity,
            sample_interval=sample_interval,
            sample_kinds=(MEM_OP,),
        )
        self.metrics = MetricsRegistry()
        self._flush_hooks = []

    # -- batched observation hooks -------------------------------------------

    def on_snapshot(self, hook) -> None:
        """Register a flush callback run before every :meth:`snapshot`.

        Hot layers that batch metric observations in local accumulators
        (the timing simulator's per-op MSHR occupancy) register one so
        snapshots stay exact while the hot path pays a list increment
        instead of a histogram call per event. Hooks must be idempotent:
        flush-then-clear, safe to call any number of times.
        """
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Drain every registered batch accumulator into the metrics."""
        for hook in self._flush_hooks:
            hook()

    # -- tracing passthroughs ------------------------------------------------

    def begin(self, kind: str, name: Optional[str] = None, **args) -> Span:
        return self.tracer.begin(kind, name, **args)

    def end(self, span: Span, level: Optional[str] = None, **args) -> None:
        self.tracer.end(span, level=level, **args)

    def span(self, kind: str, name: Optional[str] = None, **args):
        return self.tracer.span(kind, name, **args)

    def instant(
        self, kind: str, name: Optional[str] = None, level: str = "info", **args
    ) -> Span:
        return self.tracer.instant(kind, name, level=level, **args)

    # -- metrics passthroughs ------------------------------------------------

    def counter(self, name: str, unit: str = "") -> Counter:
        return self.metrics.counter(name, unit)

    def gauge(self, name: str, unit: str = "") -> Gauge:
        return self.metrics.gauge(name, unit)

    def histogram(self, name: str, edges, unit: str = "") -> Histogram:
        return self.metrics.histogram(name, edges, unit)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable, JSON-safe payload: everything an exporter needs.

        This is what crosses process boundaries when experiments fan out
        over workers — the exporters merge a list of these into one
        coherent trace (one Chrome-trace process per payload).
        """
        self.flush()
        return {
            "label": self.label,
            "clock": self.tracer.clock,
            "spans": self.tracer.export_spans(),
            "dropped_spans": self.tracer.dropped,
            "sample_interval": self.tracer.sample_interval,
            "metrics": self.metrics.snapshot(),
        }


def wired(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalize a telemetry argument once, at component wiring time.

    Returns ``telemetry`` only when it is present *and* enabled, else
    ``None`` — so hot paths test a single ``is not None`` and a disabled
    sink costs exactly as much as no sink at all.
    """
    if telemetry is None or not telemetry.enabled:
        return None
    return telemetry


__all__ = [
    "BUS_TXN",
    "CAMPAIGN",
    "COMMIT",
    "CYCLE_EDGES",
    "FANOUT_EDGES",
    "INVARIANT_VIOLATION",
    "MEM_OP",
    "OCCUPANCY_EDGES",
    "POINT_ATTEMPT",
    "RUN",
    "SNOOP",
    "SQUASH",
    "SUPERVISOR_EVENT",
    "TASK_BEGIN",
    "VOL_REPAIR",
    "VOL_WALK",
    "WB_DRAIN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PRODUCTION_SAMPLE_INTERVAL",
    "PRODUCTION_TRACE_CAPACITY",
    "Span",
    "Telemetry",
    "Tracer",
    "wired",
]
