"""Flight recorder: per-attempt post-mortem breadcrumbs for campaigns.

The supervisor can SIGKILL a worker mid-point (wall-clock timeout) or
watch one die under chaos. At that moment the worker's in-memory state
— including any telemetry spans it accumulated — is gone; the parent
only knows *that* the point failed, not what it was doing. The flight
recorder closes that gap the way avionics recorders do: each attempt
keeps a **bounded ring of recent entries** and flushes it to disk at
the moments that matter (attempt start, exception, completion), using
atomic renames so a kill can never leave a half-written record. When a
point is quarantined, the parent collects every surviving dump for that
point and attaches it to the quarantine record — both on the
:class:`~repro.harness.supervisor.PointOutcome` and, when a result
store is in play, as a human-readable JSON post-mortem under the
store's ``quarantine/`` namespace.

What a dump can tell you, by failure mode:

* **timeout / SIGKILL** — the ``attempt_started`` breadcrumb (flushed
  before execution begins) survives: which point, which attempt, which
  pid, when it started. The absence of ``attempt_finished`` *is* the
  post-mortem.
* **exception / chaos raise** — an ``exception`` entry with the repr,
  flushed from the ``except`` path before the error propagates.
* **success on an earlier attempt of a later-quarantined point** —
  ``attempt_finished`` with the wall time and, when the point ran with
  telemetry enabled, a ``span_tail`` entry carrying the last spans of
  the point's trace ring.

Entries are plain JSON-safe dicts; the ring is bounded
(:data:`DEFAULT_CAPACITY`) with a ``dropped`` count, mirroring the
span tracer's ring-buffer contract.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from collections import deque
from typing import Dict, List, Optional

#: Schema stamp written into every dump file.
FLIGHT_SCHEMA_VERSION = 1

#: Max entries retained per attempt; oldest are evicted first.
DEFAULT_CAPACITY = 64

#: How many trailing spans :meth:`FlightRecorder.note_span_tail` keeps.
SPAN_TAIL = 16


def _point_dir(root: str, point: int) -> str:
    return os.path.join(root, f"point-{point:04d}")


def record_path(root: str, point: int, attempt: int) -> str:
    """Dump file path for one (point, attempt)."""
    return os.path.join(_point_dir(root, point), f"attempt-{attempt:02d}.json")


class FlightRecorder:
    """Bounded breadcrumb ring for one point attempt.

    Created inside the worker (or the serial loop) before a point
    executes. :meth:`note` appends an entry; :meth:`flush` persists the
    current ring atomically. Flush early, flush often — only flushed
    state survives a SIGKILL.
    """

    def __init__(
        self,
        root: str,
        point: int,
        attempt: int,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.root = root
        self.point = point
        self.attempt = attempt
        self.capacity = capacity
        self._entries: deque = deque(maxlen=capacity)
        self._appended = 0
        self._start = time.monotonic()

    @property
    def dropped(self) -> int:
        """Entries evicted from the ring (appended minus retained)."""
        return self._appended - len(self._entries)

    def note(self, kind: str, **fields) -> None:
        """Append one breadcrumb (fields must be JSON-safe)."""
        entry = {"kind": kind, "t": round(time.monotonic() - self._start, 6)}
        entry.update(fields)
        self._entries.append(entry)
        self._appended += 1

    def note_span_tail(self, payload: Optional[Dict]) -> None:
        """Record the tail of a telemetry snapshot's span list, if the
        point ran with telemetry enabled (one breadcrumb, bounded)."""
        if not payload:
            return
        spans = payload.get("spans") or []
        if spans:
            self.note(
                "span_tail",
                spans=spans[-SPAN_TAIL:],
                total_spans=len(spans),
                dropped_spans=payload.get("dropped_spans", 0),
            )

    def flush(self) -> str:
        """Atomically persist the current ring; returns the dump path."""
        path = record_path(self.root, self.point, self.attempt)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {
            "schema": FLIGHT_SCHEMA_VERSION,
            "point": self.point,
            "attempt": self.attempt,
            "pid": os.getpid(),
            "dropped": self.dropped,
            "entries": list(self._entries),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(tmp, path)
        return path


def load_point_records(root: str, point: int) -> List[Dict]:
    """Collect every surviving dump for one point, ordered by attempt.

    Called in the parent at quarantine time. Unreadable or
    half-formed files are skipped rather than failing the campaign —
    a post-mortem collector must not create new failures.
    """
    directory = _point_dir(root, point)
    records: List[Dict] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return records
    for name in names:
        if not (name.startswith("attempt-") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    records.sort(key=lambda record: record.get("attempt", 0))
    return records


def purge(root: str) -> None:
    """Remove a flight directory tree (campaign-end cleanup)."""
    shutil.rmtree(root, ignore_errors=True)


__all__ = [
    "DEFAULT_CAPACITY",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "load_point_records",
    "purge",
    "record_path",
]
