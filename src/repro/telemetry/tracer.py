"""Span-based tracer with causal parent links and a logical clock.

A :class:`Span` is one traced operation; spans nest by call structure.
The tracer keeps an explicit stack of open spans: ``begin`` links the
new span to the innermost open one (its causal parent) and pushes it,
``end`` pops it. Because every protocol layer in this repository runs
synchronously on one thread, the open-span stack *is* the causal call
chain — a VOL walk that runs inside a bus transaction gets that
transaction as its parent with no plumbing through intermediate
signatures.

Timestamps are **logical ticks**: a counter that advances by one at
every begin, end and instant. Two properties follow:

* determinism — the same run emits the same trace, byte for byte, so
  traces can be diffed and pinned in tests (wall clocks cannot), and
* strict containment — a child's ``[start, end]`` interval always nests
  strictly inside its parent's, which is exactly what Chrome-trace
  viewers use to reconstruct nesting per track.

Simulated cycle numbers are not timestamps here; layers attach them as
span args (``cycle=...``) where they are meaningful.

``end`` is robust to exception unwinding: ending a span closes any
still-open descendants first (innermost first), so a protocol error
thrown mid-transaction cannot leave the stack polluted and silently
reparent every later span.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Span severity levels, in increasing order.
LEVELS = ("info", "warning", "error")


@dataclass
class Span:
    """One traced operation (or instant, when ``end == start``)."""

    span_id: int
    parent_id: Optional[int]
    kind: str
    name: str
    start: int
    end: Optional[int] = None
    level: str = "info"
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_instant(self) -> bool:
        """Zero-duration marker: real spans always tick between begin
        and end, so only instants can have ``end == start``."""
        return self.end == self.start

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "level": self.level,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            span_id=data["id"],
            parent_id=data.get("parent"),
            kind=data["kind"],
            name=data["name"],
            start=data["start"],
            end=data.get("end"),
            level=data.get("level", "info"),
            args=dict(data.get("args", {})),
        )


class Tracer:
    """Collects spans for one run. Not thread-safe by design: the
    simulation is single-threaded and parallel experiment points each
    build their own system (and tracer) inside their worker process."""

    __slots__ = ("spans", "_stack", "_clock", "_next_id")

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._clock = 0
        self._next_id = 1

    @property
    def clock(self) -> int:
        return self._clock

    @property
    def depth(self) -> int:
        """Number of currently open spans (0 when quiescent)."""
        return len(self._stack)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- spans ---------------------------------------------------------------

    def begin(self, kind: str, name: Optional[str] = None, **args) -> Span:
        """Open a span; its parent is the innermost span still open."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            kind=kind,
            name=name if name is not None else kind,
            start=self._tick(),
            args=args,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, level: Optional[str] = None, **args) -> None:
        """Close ``span``, first closing any still-open descendants
        (an exception that unwound past their ``end`` calls). Ending a
        span that is already closed only merges args/level (idempotent).
        """
        if span in self._stack:
            while self._stack:
                top = self._stack.pop()
                if top.end is None:
                    top.end = self._tick()
                if top is span:
                    break
        elif span.end is None:
            # Orphaned begin (its ancestor was force-closed): stamp it.
            span.end = self._tick()
        if args:
            span.args.update(args)
        if level is not None:
            span.level = level

    @contextmanager
    def span(self, kind: str, name: Optional[str] = None, **args):
        """``with tracer.span(...) as s:`` — always-closed span."""
        opened = self.begin(kind, name, **args)
        try:
            yield opened
        finally:
            self.end(opened)

    def instant(
        self, kind: str, name: Optional[str] = None, level: str = "info", **args
    ) -> Span:
        """Record a point-in-time marker under the current open span."""
        parent = self._stack[-1].span_id if self._stack else None
        tick = self._tick()
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            kind=kind,
            name=name if name is not None else kind,
            start=tick,
            end=tick,
            level=level,
            args=args,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # -- queries (tests, summaries) ------------------------------------------

    def of_kind(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]


__all__ = ["LEVELS", "Span", "Tracer"]
