"""Span-based tracer with causal parent links and a logical clock.

A :class:`Span` is one traced operation; spans nest by call structure.
The tracer keeps an explicit stack of open spans: ``begin`` links the
new span to the innermost open one (its causal parent) and pushes it,
``end`` pops it. Because every protocol layer in this repository runs
synchronously on one thread, the open-span stack *is* the causal call
chain — a VOL walk that runs inside a bus transaction gets that
transaction as its parent with no plumbing through intermediate
signatures.

Timestamps are **logical ticks**: a counter that advances by one at
every begin, end and instant. Two properties follow:

* determinism — the same run emits the same trace, byte for byte, so
  traces can be diffed and pinned in tests (wall clocks cannot), and
* strict containment — a child's ``[start, end]`` interval always nests
  strictly inside its parent's, which is exactly what Chrome-trace
  viewers use to reconstruct nesting per track.

Simulated cycle numbers are not timestamps here; layers attach them as
span args (``cycle=...``) where they are meaningful.

``end`` is robust to exception unwinding: ending a span closes any
still-open descendants first (innermost first), so a protocol error
thrown mid-transaction cannot leave the stack polluted and silently
reparent every later span.

Bounded cost: ring buffer and root sampling
-------------------------------------------

Recording every span of a long campaign is what made enabled-mode
telemetry cost +71% wall time in the PR-4 measurements. Two knobs bound
the cost while keeping traces on:

* ``capacity`` — spans live in a preallocated ring
  (``collections.deque(maxlen=capacity)``): the newest ``capacity``
  spans are kept, the oldest are evicted, and :attr:`Tracer.dropped`
  counts the evictions so exporters can say "N earlier spans dropped"
  instead of silently truncating. Span *identity* is unaffected —
  ids keep incrementing — so causal links stay stable and
  :meth:`Tracer.export_spans` reparents a span whose parent was evicted
  to the root rather than to a wrong survivor.
* ``sample_interval`` — spans of a *sampled root kind* (the timing
  simulator's per-memory-op envelope, by default) are kept 1-in-N:
  the first root is always recorded, then every ``sample_interval``-th.
  A suppressed root suppresses its entire subtree — ``begin`` returns a
  cheap :class:`_SuppressedSpan` sentinel carrying only its depth, so
  the protocol layers' unconditional ``begin``/``end`` pairs cost an
  integer compare, not a dataclass, an args dict and two clock ticks.
  Error- and warning-level instants are recorded even while suppressed
  (a sampled trace must never hide a violation); metrics are *never*
  sampled — counters and histograms stay exact.

Both knobs default off (unbounded, record everything), which is what
the unit tests and the differential harness use; campaign runners opt
in via :class:`repro.telemetry.Telemetry`.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

#: Span severity levels, in increasing order.
LEVELS = ("info", "warning", "error")


class Span:
    """One traced operation (or instant, when ``end == start``).

    A plain ``__slots__`` class, not a dataclass: spans are built on
    the hot path (thousands per traced run) and dataclass ``__init__``
    overhead was a measurable slice of enabled-mode telemetry cost.
    """

    __slots__ = (
        "span_id", "parent_id", "kind", "name", "start", "end", "level", "args"
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        kind: str,
        name: str,
        start: int,
        end: Optional[int] = None,
        level: str = "info",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.start = start
        self.end = end
        self.level = level
        self.args = {} if args is None else args

    def __eq__(self, other) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return (
            self.span_id == other.span_id
            and self.parent_id == other.parent_id
            and self.kind == other.kind
            and self.name == other.name
            and self.start == other.start
            and self.end == other.end
            and self.level == other.level
            and self.args == other.args
        )

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{slot}={getattr(self, slot)!r}" for slot in self.__slots__
        )
        return f"Span({fields})"

    @property
    def is_instant(self) -> bool:
        """Zero-duration marker: real spans always tick between begin
        and end, so only instants can have ``end == start``."""
        return self.end == self.start

    @property
    def duration(self) -> Optional[int]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "level": self.level,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            span_id=data["id"],
            parent_id=data.get("parent"),
            kind=data["kind"],
            name=data["name"],
            start=data["start"],
            end=data.get("end"),
            level=data.get("level", "info"),
            args=dict(data.get("args", {})),
        )


class _SuppressedSpan:
    """Placeholder returned by ``begin`` inside a sampled-out subtree.

    Carries only the logical open-depth at which it was created, which
    is all ``end`` needs to unwind correctly — including through double
    ``end`` calls (several layers end spans defensively in ``finally``
    blocks) and exception unwinds that skipped descendant ends.
    """

    __slots__ = ("depth",)

    def __init__(self, depth: int) -> None:
        self.depth = depth


class Tracer:
    """Collects spans for one run. Not thread-safe by design: the
    simulation is single-threaded and parallel experiment points each
    build their own system (and tracer) inside their worker process.

    ``capacity`` bounds retained spans in a ring (``None`` = unbounded);
    ``sample_interval`` keeps 1-in-N subtrees rooted at a kind in
    ``sample_kinds`` (1 = record everything). See the module docstring.
    """

    __slots__ = (
        "spans",
        "_stack",
        "_clock",
        "_next_id",
        "_appended",
        "_sample_interval",
        "_sample_kinds",
        "_sample_seen",
        "_depth",
        "_suppress_from",
    )

    def __init__(
        self,
        capacity: Optional[int] = None,
        sample_interval: int = 1,
        sample_kinds: Iterable[str] = (),
    ) -> None:
        if capacity is None:
            self.spans: List[Span] = []
        else:
            self.spans = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._clock = 0
        self._next_id = 1
        #: Spans ever recorded; ``dropped`` = appended - len(spans).
        self._appended = 0
        self._sample_interval = max(1, int(sample_interval))
        self._sample_kinds = frozenset(sample_kinds)
        #: Sampled roots seen so far (kept + suppressed), per kind.
        self._sample_seen: Dict[str, int] = {}
        #: Open spans including suppressed ones; equals len(_stack)
        #: whenever no suppression is active.
        self._depth = 0
        #: Depth of the outermost suppressed span, or None.
        self._suppress_from: Optional[int] = None

    @property
    def clock(self) -> int:
        return self._clock

    @property
    def depth(self) -> int:
        """Number of currently open spans (0 when quiescent)."""
        return self._depth

    @property
    def capacity(self) -> Optional[int]:
        return getattr(self.spans, "maxlen", None)

    @property
    def sample_interval(self) -> int:
        return self._sample_interval

    @property
    def sample_kinds(self):
        """Root span kinds subject to 1-in-``sample_interval`` keeping."""
        return self._sample_kinds

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring (0 when unbounded)."""
        return self._appended - len(self.spans)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _record(self, span: Span) -> None:
        self._appended += 1
        self.spans.append(span)

    # -- cooperative root sampling -------------------------------------------

    def next_root_kept(self, kind: str) -> bool:
        """Peek: would a root span of ``kind`` begun now be recorded?

        Consumes nothing. A cooperating hot loop (the timing simulator)
        asks this *before* paying for span names and args; on ``False``
        it calls :meth:`skip_root` and bypasses telemetry for the whole
        subtree, which is much cheaper than threading sentinel spans
        through every protocol layer. Either route — ``begin`` or
        ``skip_root`` — consumes exactly one sampling slot, so the
        kept/suppressed cadence is identical to uncooperative callers
        that just call ``begin`` everywhere.
        """
        if self._suppress_from is not None:
            return False
        if self._sample_interval <= 1 or kind not in self._sample_kinds:
            return True
        return not (self._sample_seen.get(kind, 0) % self._sample_interval)

    def skip_root(self, kind: str) -> None:
        """Consume one sampling slot for a root the caller suppressed
        itself (after a ``False`` from :meth:`next_root_kept`)."""
        self._sample_seen[kind] = self._sample_seen.get(kind, 0) + 1

    def skip_roots(self, kind: str, count: int) -> None:
        """Consume ``count`` sampling slots at once.

        The cheapest cooperative protocol: a hot loop that caches
        :attr:`sample_interval` can run its own suppressed-root
        countdown — paying one integer decrement per suppressed root
        instead of any call here — and batch-sync the consumed slots
        just before the next root it keeps. Equivalent to ``count``
        :meth:`skip_root` calls.
        """
        if count > 0:
            self._sample_seen[kind] = self._sample_seen.get(kind, 0) + count

    def take_root(self, kind: str) -> bool:
        """Fused :meth:`next_root_kept` + :meth:`skip_root`: one call
        decides whether a root of ``kind`` begun now would be recorded
        and, when the answer is no, consumes the sampling slot itself.
        A ``True`` return consumes nothing — the subsequent ``begin``
        of the root does — so cadence is identical to both the
        two-call protocol and plain uncooperative ``begin`` loops.
        """
        if self._sample_interval <= 1 or kind not in self._sample_kinds:
            return self._suppress_from is None
        seen = self._sample_seen.get(kind, 0)
        if self._suppress_from is not None or seen % self._sample_interval:
            self._sample_seen[kind] = seen + 1
            return False
        return True

    # -- spans ---------------------------------------------------------------

    def begin(self, kind: str, name: Optional[str] = None, **args):
        """Open a span; its parent is the innermost span still open.

        Returns a :class:`_SuppressedSpan` sentinel instead when inside
        (or starting) a sampled-out subtree; pass it back to ``end`` as
        usual — every other operation on it is a no-op.
        """
        depth = self._depth + 1
        if self._suppress_from is not None:
            self._depth = depth
            return _SuppressedSpan(depth)
        if self._sample_interval > 1 and kind in self._sample_kinds:
            seen = self._sample_seen.get(kind, 0)
            self._sample_seen[kind] = seen + 1
            if seen % self._sample_interval:
                self._depth = depth
                self._suppress_from = depth
                return _SuppressedSpan(depth)
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            kind=kind,
            name=name if name is not None else kind,
            start=self._tick(),
            args=args,
        )
        self._next_id += 1
        self._record(span)
        self._stack.append(span)
        self._depth = depth
        return span

    def end(self, span, level: Optional[str] = None, **args) -> None:
        """Close ``span``, first closing any still-open descendants
        (an exception that unwound past their ``end`` calls). Ending a
        span that is already closed only merges args/level (idempotent).
        """
        if type(span) is _SuppressedSpan:
            # Unwind to just above the sentinel; a second end of the
            # same sentinel (depth > current) is a no-op, and closing
            # the outermost suppressed span re-enables recording.
            if self._depth >= span.depth:
                self._depth = span.depth - 1
                if (
                    self._suppress_from is not None
                    and self._depth < self._suppress_from
                ):
                    self._suppress_from = None
            return
        # Identity scan, not ``in``: Span has value equality (for
        # snapshot round-trips) and the hot path must not pay for it.
        if any(open_span is span for open_span in self._stack):
            while self._stack:
                top = self._stack.pop()
                if top.end is None:
                    top.end = self._tick()
                if top is span:
                    break
            # Closing a real span also closes any suppressed spans
            # opened above it (they can only nest deeper).
            self._depth = len(self._stack)
            if (
                self._suppress_from is not None
                and self._depth < self._suppress_from
            ):
                self._suppress_from = None
        elif span.end is None:
            # Orphaned begin (its ancestor was force-closed): stamp it.
            span.end = self._tick()
        if args:
            span.args.update(args)
        if level is not None:
            span.level = level

    @contextmanager
    def span(self, kind: str, name: Optional[str] = None, **args):
        """``with tracer.span(...) as s:`` — always-closed span."""
        opened = self.begin(kind, name, **args)
        try:
            yield opened
        finally:
            self.end(opened)

    def instant(
        self, kind: str, name: Optional[str] = None, level: str = "info", **args
    ) -> Span:
        """Record a point-in-time marker under the current open span.

        Inside a sampled-out subtree, ``info`` instants are dropped with
        the rest of the subtree, but ``warning``/``error`` instants are
        always recorded (parented to the innermost *recorded* span):
        sampling must never hide a violation or a fault.
        """
        if self._suppress_from is not None and level == "info":
            return _SuppressedSpan(self._depth)
        parent = self._stack[-1].span_id if self._stack else None
        tick = self._tick()
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            kind=kind,
            name=name if name is not None else kind,
            start=tick,
            end=tick,
            level=level,
            args=args,
        )
        self._next_id += 1
        self._record(span)
        return span

    # -- queries (tests, summaries) ------------------------------------------

    def of_kind(self, kind: str) -> List[Span]:
        return [span for span in self.spans if span.kind == kind]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def export_spans(self) -> List[Dict[str, Any]]:
        """Span dicts for a snapshot, with dangling parents healed.

        When the ring evicted a span whose children survive, the
        children's ``parent`` ids would point at nothing; exporters
        (and Perfetto) treat that as corruption, so evicted parents
        are rewritten to ``None`` (top-level) here.
        """
        present = {span.span_id for span in self.spans}
        out = []
        for span in self.spans:
            data = span.to_dict()
            if data["parent"] is not None and data["parent"] not in present:
                data["parent"] = None
            out.append(data)
        return out


__all__ = ["LEVELS", "Span", "Tracer"]
