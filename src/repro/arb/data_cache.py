"""Shared L1 data cache backing the ARB.

Direct-mapped (as in the paper's configuration), 16-byte lines, holding
only architectural data: committed stores drain into it; loads that the
ARB stages cannot satisfy read through it. Dirty lines write back to
main memory on eviction or drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.common.config import CacheGeometry
from repro.common.stats import StatsRegistry
from repro.mem.main_memory import MainMemory
from repro.mem.storage import SetAssociativeArray


@dataclass
class DataCacheLine:
    data: bytearray
    dirty: bool = False


class SharedDataCache:
    """The ARB's backing store for architectural data."""

    def __init__(
        self,
        geometry: CacheGeometry,
        memory: MainMemory,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.geometry = geometry
        self.amap = geometry.address_map
        self.memory = memory
        self.stats = stats if stats is not None else StatsRegistry()
        self.array: SetAssociativeArray[DataCacheLine] = SetAssociativeArray(geometry)

    def _fill(self, line_addr: int) -> DataCacheLine:
        """Fetch a line from memory, evicting (and writing back) if needed."""
        if self.array.set_is_full(line_addr):
            victim = self.array.choose_victim(line_addr)
            victim_addr, victim_line = victim
            self.array.remove(victim_addr)
            if victim_line.dirty:
                self.memory.write_line(victim_addr, bytes(victim_line.data))
                self.stats.add("dcache_writebacks")
        line = DataCacheLine(
            data=self.memory.read_line(line_addr, self.geometry.line_size)
        )
        self.array.insert(line_addr, line)
        return line

    def read(self, addr: int, size: int) -> Tuple[bytes, bool]:
        """Read bytes; returns (data, hit?)."""
        line_addr = self.amap.line_address(addr)
        line = self.array.lookup(line_addr)
        hit = line is not None
        if line is None:
            self.stats.add("dcache_misses")
            line = self._fill(line_addr)
        offset = self.amap.line_offset(addr)
        return bytes(line.data[offset : offset + size]), hit

    def write(self, addr: int, data: bytes) -> bool:
        """Write bytes (fetch-on-write-miss); returns hit?."""
        line_addr = self.amap.line_address(addr)
        line = self.array.lookup(line_addr)
        hit = line is not None
        if line is None:
            self.stats.add("dcache_misses")
            line = self._fill(line_addr)
        offset = self.amap.line_offset(addr)
        line.data[offset : offset + len(data)] = data
        line.dirty = True
        return hit

    def drain(self) -> None:
        """Write every dirty line back to memory."""
        for line_addr, line in self.array.lines():
            if line.dirty:
                self.memory.write_line(line_addr, bytes(line.data))
                line.dirty = False
