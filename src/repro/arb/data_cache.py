"""Shared L1 data cache backing the ARB.

Direct-mapped (as in the paper's configuration), 16-byte lines, holding
only architectural data: committed stores drain into it; loads that the
ARB stages cannot satisfy read through it. Dirty lines write back to
main memory on eviction or drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.common.config import CacheGeometry
from repro.common.stats import StatsRegistry
from repro.mem.main_memory import MainMemory
from repro.mem.storage import SetAssociativeArray


@dataclass(slots=True)
class DataCacheLine:
    data: bytearray
    dirty: bool = False


class SharedDataCache:
    """The ARB's backing store for architectural data."""

    def __init__(
        self,
        geometry: CacheGeometry,
        memory: MainMemory,
        stats: Optional[StatsRegistry] = None,
    ) -> None:
        self.geometry = geometry
        self.amap = geometry.address_map
        self.memory = memory
        self.stats = stats if stats is not None else StatsRegistry()
        self.array: SetAssociativeArray[DataCacheLine] = SetAssociativeArray(geometry)
        # Hot-path address math, precomputed once (read/write are on the
        # ARB's per-access critical path). The direct-mapped fast path
        # additionally indexes the backing array's sets inline.
        line_size = geometry.line_size
        self._offset_mask = line_size - 1 if line_size & (line_size - 1) == 0 else None
        array = self.array
        self._fast_sets = None
        if (
            self._offset_mask is not None
            and array._line_shift is not None
            and geometry.associativity == 1
        ):
            self._fast_sets = array._sets
            self._line_shift = array._line_shift
            self._set_mask = array._set_mask
        self._counters = self.stats._counters

    def _fill(self, line_addr: int) -> DataCacheLine:
        """Fetch a line from memory, evicting (and writing back) if needed."""
        if self.array.set_is_full(line_addr):
            victim = self.array.choose_victim(line_addr)
            victim_addr, victim_line = victim
            self.array.remove(victim_addr)
            if victim_line.dirty:
                self.memory.write_line(victim_addr, bytes(victim_line.data))
                self.stats.add("dcache_writebacks")
        line = DataCacheLine(
            data=self.memory.read_line(line_addr, self.geometry.line_size)
        )
        self.array.insert(line_addr, line)
        return line

    def read(self, addr: int, size: int) -> Tuple[bytes, bool]:
        """Read bytes; returns (data, hit?)."""
        fast_sets = self._fast_sets
        if fast_sets is not None:
            offset = addr & self._offset_mask
            line_addr = addr - offset
            line = fast_sets[(line_addr >> self._line_shift) & self._set_mask].get(
                line_addr
            )
        else:
            line_addr = self.amap.line_address(addr)
            offset = self.amap.line_offset(addr)
            line = self.array.lookup(line_addr)
        hit = line is not None
        if line is None:
            self._counters["dcache_misses"] += 1
            line = self._fill(line_addr)
        return bytes(line.data[offset : offset + size]), hit

    def read_value(self, addr: int, size: int) -> Tuple[int, bool]:
        """Read a little-endian integer; returns (value, hit?).

        Same lookup as :meth:`read` without materializing the
        intermediate ``bytes`` — the ARB's load path wants the integer.
        """
        fast_sets = self._fast_sets
        if fast_sets is not None:
            offset = addr & self._offset_mask
            line_addr = addr - offset
            line = fast_sets[(line_addr >> self._line_shift) & self._set_mask].get(
                line_addr
            )
        else:
            line_addr = self.amap.line_address(addr)
            offset = self.amap.line_offset(addr)
            line = self.array.lookup(line_addr)
        hit = line is not None
        if line is None:
            self._counters["dcache_misses"] += 1
            line = self._fill(line_addr)
        return int.from_bytes(line.data[offset : offset + size], "little"), hit

    def write(self, addr: int, data: bytes) -> bool:
        """Write bytes (fetch-on-write-miss); returns hit?."""
        fast_sets = self._fast_sets
        if fast_sets is not None:
            offset = addr & self._offset_mask
            line_addr = addr - offset
            line = fast_sets[(line_addr >> self._line_shift) & self._set_mask].get(
                line_addr
            )
        else:
            line_addr = self.amap.line_address(addr)
            offset = self.amap.line_offset(addr)
            line = self.array.lookup(line_addr)
        hit = line is not None
        if line is None:
            self._counters["dcache_misses"] += 1
            line = self._fill(line_addr)
        line.data[offset : offset + len(data)] = data
        line.dirty = True
        return hit

    def drain(self) -> None:
        """Write every dirty line back to memory."""
        for line_addr, line in self.array.lines():
            if line.dirty:
                self.memory.write_line(line_addr, bytes(line.data))
                line.dirty = False
