"""The Address Resolution Buffer proper: rows x stages of L/S/value.

Structure follows Franklin & Sohi's ARB as configured in the paper's
evaluation (section 4.2): a fully associative buffer of ``n_rows`` rows;
each row tracks one word of memory and holds, per task stage, a load
bit, a store bit and the buffered store data. Disambiguation is at byte
granularity ("disambiguation is performed at the byte-level"), so the
per-stage bits are byte masks within the row's word.

Stages are assigned to active tasks in sequence order; an extra stage
holding architectural data (mentioned in section 4) is modeled by the
backing shared data cache rather than as a literal sixth stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, ProtocolError

WORD_SIZE = 4


@dataclass(slots=True)
class ARBEntry:
    """One (row, stage) cell: byte-masked load/store state plus data."""

    load_mask: int = 0
    store_mask: int = 0
    data: bytearray = field(default_factory=lambda: bytearray(WORD_SIZE))

    @property
    def empty(self) -> bool:
        return self.load_mask == 0 and self.store_mask == 0


@dataclass(slots=True)
class ARBRow:
    """One fully-associative row: a word address and per-task entries.

    Entries are keyed by task rank, which plays the role of the paper's
    stage index; the sliding head/tail window over ranks is enforced by
    :class:`repro.arb.system.ARBSystem`.
    """

    word_addr: int
    entries: Dict[int, ARBEntry] = field(default_factory=dict)
    #: Allocation sequence stamp: rows_of_rank() iterates in this order,
    #: which is exactly the buffer dict's insertion order, so per-rank
    #: indexed walks drain stores in the same order a full scan would.
    seq: int = 0
    #: Owning buffer, when allocated through one; lets entry_for keep
    #: the buffer's rank -> rows index current. Standalone rows (tests)
    #: have no owner and need no index.
    owner: Optional["AddressResolutionBuffer"] = field(
        default=None, repr=False, compare=False
    )

    def entry_for(self, rank: int) -> ARBEntry:
        entry = self.entries.get(rank)
        if entry is None:
            entry = ARBEntry()
            self.entries[rank] = entry
            if self.owner is not None:
                self.owner._note_rank_row(rank, self.word_addr)
        return entry

    @property
    def empty(self) -> bool:
        for entry in self.entries.values():
            if entry.load_mask or entry.store_mask:
                return False
        return True


class AddressResolutionBuffer:
    """Fixed pool of fully-associative ARB rows."""

    def __init__(self, n_rows: int) -> None:
        if n_rows <= 0:
            raise ConfigError("ARB needs at least one row")
        self.n_rows = n_rows
        self._rows: Dict[int, ARBRow] = {}
        self._alloc_seq = 0
        #: rank -> word addresses of rows holding an entry for that rank.
        #: Lets commits and squashes visit only the rows a task touched
        #: instead of scanning the whole buffer.
        self._rank_rows: Dict[int, set] = {}

    def _note_rank_row(self, rank: int, word_addr: int) -> None:
        rows = self._rank_rows.get(rank)
        if rows is None:
            rows = set()
            self._rank_rows[rank] = rows
        rows.add(word_addr)

    def lookup(self, word_addr: int) -> Optional[ARBRow]:
        return self._rows.get(word_addr)

    def lookup_or_allocate(self, word_addr: int) -> Optional[ARBRow]:
        """The row for ``word_addr``, allocating if free space exists.
        Returns ``None`` when the buffer is full (the PU must stall)."""
        row = self._rows.get(word_addr)
        if row is not None:
            return row
        if len(self._rows) >= self.n_rows:
            return None
        row = ARBRow(word_addr=word_addr, seq=self._alloc_seq, owner=self)
        self._alloc_seq += 1
        self._rows[word_addr] = row
        return row

    def rows_of_rank(self, rank: int) -> List[ARBRow]:
        """Rows currently holding an entry for ``rank``, in allocation
        order (identical to the order a full :meth:`rows` scan yields)."""
        addrs = self._rank_rows.get(rank)
        if not addrs:
            return []
        rows = []
        for word_addr in addrs:
            row = self._rows.get(word_addr)
            if row is not None and rank in row.entries:
                rows.append(row)
        rows.sort(key=lambda row: row.seq)
        return rows

    def drop_rank_index(self, rank: int) -> None:
        """Forget the per-rank row index (the rank is fully retired)."""
        self._rank_rows.pop(rank, None)

    def release_if_empty(self, word_addr: int) -> None:
        row = self._rows.get(word_addr)
        if row is not None and row.empty:
            del self._rows[word_addr]

    def rows(self) -> List[ARBRow]:
        return list(self._rows.values())

    def occupancy(self) -> int:
        return len(self._rows)

    def clear_rank(self, rank: int) -> None:
        """Drop one task's entries from every row (squash epilogue)."""
        addrs = self._rank_rows.pop(rank, None)
        if not addrs:
            return
        for word_addr in addrs:
            row = self._rows.get(word_addr)
            if row is None:
                continue
            row.entries.pop(rank, None)
            if not row.entries:
                del self._rows[word_addr]

    def validate_window(self, active_ranks: List[int]) -> None:
        """Debug check: every entry belongs to an active task."""
        allowed = set(active_ranks)
        for row in self._rows.values():
            for rank in row.entries:
                if rank not in allowed:
                    raise ProtocolError(
                        f"ARB row {row.word_addr:#x} holds stale rank {rank}"
                    )
