"""ARBSystem: the shared-buffer memory system the SVC is compared to.

Implements the same duck-typed interface as
:class:`repro.svc.SVCSystem` (``begin_task`` / ``commit_head`` /
``squash_from_rank`` / ``load`` / ``store`` / ``drain`` / ``n_units``),
so every driver, test and benchmark runs over either system unchanged.

Timing model (paper section 4): every access crosses the PU-ARB
crossbar and pays ``hit_cycles`` (swept 1-4 in the experiments); a load
the ARB stages cannot satisfy reads the shared data cache, and a data
cache miss adds ``miss_penalty_cycles``. Bandwidth is unlimited — the
paper's ARB is modeled "without any bank contention" — which is exactly
the generosity the SVC still beats at 3+ cycle hit latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arb.buffer import WORD_SIZE, AddressResolutionBuffer, ARBEntry, ARBRow
from repro.arb.data_cache import SharedDataCache
from repro.common.config import ARBConfig
from repro.common.errors import ProtocolError, ReplacementStall
from repro.common.events import EventLog, ProtocolEvent
from repro.common.stats import StatsRegistry
from repro.mem.main_memory import MainMemory
from repro.svc.system import AccessResult
from repro.telemetry import COMMIT, OCCUPANCY_EDGES, SQUASH, wired


class ARBSystem:
    """A complete ARB + shared data cache memory system."""

    #: Stats a ``ReplacementStall``-raising load/store probe bumps before
    #: the raise (the full-buffer path counts the attempt in
    #: ``_row_for``). The timing simulator's stall fast-forward
    #: replicates these when it skips a deterministic retry — keep in
    #: sync with the pre-raise accounting in :meth:`load` /
    #: :meth:`store` / :meth:`_row_for`.
    STALL_PROBE_COUNTERS = {
        "load": ("loads", "arb_full_stalls"),
        "store": ("stores", "arb_full_stalls"),
    }

    def __init__(
        self,
        config: Optional[ARBConfig] = None,
        memory: Optional[MainMemory] = None,
        event_log: Optional[EventLog] = None,
        checker=None,
        telemetry=None,
    ) -> None:
        self.config = config if config is not None else ARBConfig()
        self.stats = StatsRegistry()
        #: The registry's counter dict, bound once: the per-access paths
        #: bump counters directly instead of paying a method call.
        self._counters = self.stats._counters
        self._hit_cycles = self.config.hit_cycles
        self._miss_penalty = self.config.miss_penalty_cycles
        if checker is not None and event_log is None:
            event_log = EventLog()
        self.event_log = event_log
        self.memory = memory if memory is not None else MainMemory(
            self.config.miss_penalty_cycles
        )
        self.buffer = AddressResolutionBuffer(self.config.n_rows)
        self.data_cache = SharedDataCache(
            self.config.cache_geometry, self.memory, self.stats
        )
        #: PU id -> rank of the task it is executing.
        self._task_of_unit: Dict[int, Optional[int]] = {
            unit: None for unit in range(self.n_units)
        }
        #: The same mapping without the idle units, maintained at task
        #: begin/commit/squash so the hot paths never filter Nones.
        self._active_ranks: Dict[int, int] = {}
        self._committed_through = -1
        #: None when absent or disabled (checked once here, so hot paths
        #: pay a single ``is not None``).
        self.telemetry = wired(telemetry)
        self._tel_rows = None
        if self.telemetry is not None:
            self._tel_rows = self.telemetry.histogram(
                "arb.rows_in_use", OCCUPANCY_EDGES, unit="rows"
            )
        self.checker = checker
        if checker is not None:
            checker.bind(self)

    @property
    def n_units(self) -> int:
        """One task stage per PU; the extra architectural stage is the
        data cache."""
        return self.config.n_stages - 1

    @property
    def amap(self):
        """Address map of the backing data cache (for MSHR line math)."""
        return self.config.cache_geometry.address_map

    @property
    def mshrs_per_unit(self) -> int:
        """The paper's 32 MSHRs are shared; model an even split."""
        return max(1, self.config.n_mshrs // self.n_units)

    @property
    def mshr_combining(self) -> int:
        return self.config.mshr_combining

    # -- task bookkeeping ----------------------------------------------------

    def current_ranks(self) -> Dict[int, int]:
        return dict(self._active_ranks)

    def head_rank(self) -> Optional[int]:
        active = self._active_ranks
        return min(active.values()) if active else None

    def task_rank(self, unit: int) -> Optional[int]:
        return self._task_of_unit[unit]

    def begin_task(self, unit: int, rank: int) -> None:
        if rank <= self._committed_through:
            raise ProtocolError(
                f"task rank {rank} is not after the committed prefix "
                f"({self._committed_through})"
            )
        if rank in self._active_ranks.values():
            raise ProtocolError(f"task rank {rank} is already running")
        if self._task_of_unit[unit] is not None:
            raise ProtocolError(f"unit {unit} already runs a task")
        self._task_of_unit[unit] = rank
        self._active_ranks[unit] = rank

    def commit_head(self, unit: int, now: int = 0) -> int:
        """Drain the head task's buffered stores into the data cache.

        This is the copy step whose burstiness the paper criticizes; the
        evaluation's "extra stage with architectural data" mitigation is
        modeled by charging a constant per-store drain cost off the
        critical path.
        """
        rank = self._task_of_unit[unit]
        if rank is None:
            raise ProtocolError(f"unit {unit} has no task to commit")
        if rank != self.head_rank():
            raise ProtocolError(
                f"task {rank} is not the head ({self.head_rank()})"
            )
        self.stats.add("commits")
        telemetry = self.telemetry
        span = None
        if telemetry is not None:
            self._tel_rows.observe(self.buffer.occupancy())
            span = telemetry.begin(
                COMMIT, f"commit rank {rank}", unit=unit, rank=rank, cycle=now
            )
        try:
            drained = 0
            # Indexed walk: only the rows this rank touched, in the same
            # allocation order a full buffer scan would visit them.
            for row in self.buffer.rows_of_rank(rank):
                entry = row.entries[rank]
                store_mask = entry.store_mask
                if store_mask:
                    # Drain contiguous byte runs in one write each; the
                    # per-line hit/miss accounting is unchanged because
                    # every run of one word lands in the same line.
                    data = entry.data
                    offset = 0
                    while offset < WORD_SIZE:
                        if not store_mask & (1 << offset):
                            offset += 1
                            continue
                        end = offset + 1
                        while end < WORD_SIZE and store_mask & (1 << end):
                            end += 1
                        self.data_cache.write(
                            row.word_addr + offset, bytes(data[offset:end])
                        )
                        offset = end
                    drained += 1
                row.entries.pop(rank, None)
                # Inline release_if_empty's common outcomes: an entryless
                # row frees immediately; remaining entries always carry a
                # mask bit (load/store set one at creation), so the full
                # emptiness scan only runs as a fallback.
                if not row.entries:
                    self.buffer._rows.pop(row.word_addr, None)
                else:
                    self.buffer.release_if_empty(row.word_addr)
            self.buffer.drop_rank_index(rank)
            self.stats.add("commit_stores_drained", drained)
            self._task_of_unit[unit] = None
            del self._active_ranks[unit]
            self._committed_through = rank
            if self.event_log is not None:
                self.event_log.emit("commit", source="arb", unit=unit, rank=rank)
            if span is not None:
                telemetry.end(span, drained=drained)
            return now + 1
        finally:
            if span is not None:
                # Idempotent when already ended; closes descendants a
                # raise left open.
                telemetry.end(span)

    def squash_from_rank(self, rank: int, reason: str = "misprediction") -> List[int]:
        victims = sorted(
            (task, unit)
            for unit, task in self._active_ranks.items()
            if task >= rank
        )
        telemetry = self.telemetry
        span = None
        if telemetry is not None:
            span = telemetry.begin(
                SQUASH, f"squash from rank {rank}", rank=rank, reason=reason
            )
        for task, unit in victims:
            self.buffer.clear_rank(task)
            self._task_of_unit[unit] = None
            del self._active_ranks[unit]
            self.stats.add(f"squashes_{reason}")
        # One batched extend after every victim is cleared, mirroring the
        # SVC's squash wave: observers see the wave whole, never a
        # half-squashed buffer.
        if self.event_log is not None and victims:
            self.event_log.extend(
                ProtocolEvent(
                    kind="squash",
                    source="arb",
                    detail={"unit": unit, "rank": task, "reason": reason},
                )
                for task, unit in victims
            )
        if span is not None:
            telemetry.end(span, victims=[task for task, _ in victims])
        return [task for task, _ in victims]

    # -- PU requests ------------------------------------------------------------

    def _row_for(self, unit: int, addr: int, rank: int, for_store: bool):
        """The (possibly fresh) row for ``addr``.

        A full buffer stalls a speculative task until commits free rows.
        The head task must not stall forever — rows only free on its own
        commit — so it reclaims capacity by squashing the youngest task,
        the standard ARB back-pressure recovery. A head *load* with no
        existing row needs no row at all: there is no older task whose
        store could violate it, so nothing needs recording.
        """
        word_addr = addr - (addr % WORD_SIZE)
        reclaim_squashed: List[int] = []
        row = self.buffer.lookup_or_allocate(word_addr)
        while row is None:
            if rank != self.head_rank():
                self.stats.add("arb_full_stalls")
                raise ReplacementStall(unit, word_addr)
            if not for_store:
                return None, reclaim_squashed
            youngest = max(
                (r for r in self._active_ranks.values() if r != rank),
                default=None,
            )
            if youngest is None:
                # Only the head remains and the buffer still cannot hold
                # its working set. The head is non-speculative and — with
                # no row — no later task has recorded a load here, so its
                # store may write through to the data cache directly.
                return None, reclaim_squashed
            reclaim_squashed = sorted(
                set(reclaim_squashed)
                | set(self.squash_from_rank(youngest, reason="arb_reclaim"))
            )
            row = self.buffer.lookup_or_allocate(word_addr)
        return row, reclaim_squashed

    def load(self, unit: int, addr: int, size: int = 4, now: int = 0) -> AccessResult:
        rank = self._task_of_unit[unit]
        if rank is None:
            raise ProtocolError(f"unit {unit} has no current task")
        offset = addr % WORD_SIZE
        if offset + size > WORD_SIZE:
            raise ProtocolError("ARB accesses must fall within one word")
        counters = self._counters
        counters["loads"] += 1
        # Row lookup/allocation inlined for the common case (resident
        # row, or free space); the full-buffer stall path stays in
        # _row_for.
        word_addr = addr - offset
        buffer = self.buffer
        rows = buffer._rows
        row = rows.get(word_addr)
        if row is None:
            if len(rows) < buffer.n_rows:
                row = ARBRow(word_addr=word_addr, seq=buffer._alloc_seq, owner=buffer)
                buffer._alloc_seq += 1
                rows[word_addr] = row
            else:
                row, _ = self._row_for(unit, addr, rank, for_store=False)
        from_memory = False
        if row is None:
            # Head-task load with a full buffer: nothing older can
            # violate it, so it reads the architectural data directly.
            value, hit = self.data_cache.read_value(addr, size)
            if not hit:
                from_memory = True
                counters["memory_supplies"] += 1
        else:
            mask = ((1 << size) - 1) << offset
            # Record use-before-definition for the bytes this task has
            # not itself stored, then compose each byte from the closest
            # previous stage store, falling back to the data cache.
            entries = row.entries
            entry = entries.get(rank)
            if entry is None:
                entry = ARBEntry()
                entries[rank] = entry
                rank_rows = buffer._rank_rows.get(rank)
                if rank_rows is None:
                    buffer._rank_rows[rank] = rank_rows = set()
                rank_rows.add(word_addr)
            entry.load_mask |= mask & ~entry.store_mask

            own_take = entry.store_mask & mask
            if own_take == mask:
                # Own entry fully covers the access: the closest
                # previous store of every byte is this task's own.
                value = int.from_bytes(entry.data[offset : offset + size], "little")
            elif own_take == 0 and len(entries) == 1:
                # No buffered bytes anywhere: the data cache supplies
                # the whole access.
                value, hit = self.data_cache.read_value(addr, size)
                if not hit:
                    from_memory = True
                    counters["memory_supplies"] += 1
            else:
                # Walk candidates newest-first; the first store of each
                # byte wins, exactly the closest-previous-stage rule.
                value_bytes = bytearray(size)
                missing_mask = mask
                if len(entries) == 1:
                    data = entry.data
                    for i in range(size):
                        if own_take & (1 << (offset + i)):
                            value_bytes[i] = data[offset + i]
                    missing_mask &= ~own_take
                else:
                    for r in sorted(entries, reverse=True):
                        if r > rank:
                            continue
                        candidate = entries[r]
                        take = candidate.store_mask & missing_mask
                        if take:
                            data = candidate.data
                            for i in range(size):
                                if take & (1 << (offset + i)):
                                    value_bytes[i] = data[offset + i]
                            missing_mask &= ~take
                            if not missing_mask:
                                break
                missing_mask >>= offset
                if missing_mask:
                    cached, hit = self.data_cache.read(addr, size)
                    for i in range(size):
                        if missing_mask & (1 << i):
                            value_bytes[i] = cached[i]
                    if not hit:
                        from_memory = True
                        counters["memory_supplies"] += 1
                value = int.from_bytes(bytes(value_bytes), "little")

        end = now + self._hit_cycles
        if from_memory:
            end += self._miss_penalty
        return AccessResult(
            value=value,
            hit=not from_memory,
            end_cycle=end,
            from_memory=from_memory,
        )

    def store(
        self, unit: int, addr: int, value: int, size: int = 4, now: int = 0
    ) -> AccessResult:
        rank = self._task_of_unit[unit]
        if rank is None:
            raise ProtocolError(f"unit {unit} has no current task")
        offset = addr % WORD_SIZE
        if offset + size > WORD_SIZE:
            raise ProtocolError("ARB accesses must fall within one word")
        self._counters["stores"] += 1
        # Row lookup/allocation inlined for the common case (see load).
        word_addr = addr - offset
        buffer = self.buffer
        rows = buffer._rows
        row = rows.get(word_addr)
        if row is not None:
            squashed: List[int] = []
        elif len(rows) < buffer.n_rows:
            row = ARBRow(word_addr=word_addr, seq=buffer._alloc_seq, owner=buffer)
            buffer._alloc_seq += 1
            rows[word_addr] = row
            squashed = []
        else:
            row, squashed = self._row_for(unit, addr, rank, for_store=True)
        mask = ((1 << size) - 1) << offset

        if row is None:
            # Head write-through: the buffer cannot hold the head's
            # working set even after reclaiming every younger task.
            payload = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            self.data_cache.write(addr, payload)
            self.stats.add("head_write_throughs")
            return AccessResult(
                value=None,
                hit=True,
                end_cycle=now + self.config.hit_cycles,
                squashed_ranks=squashed,
            )

        entries = row.entries
        entry = entries.get(rank)
        if entry is None:
            entry = ARBEntry()
            entries[rank] = entry
            buffer = self.buffer
            rank_rows = buffer._rank_rows.get(rank)
            if rank_rows is None:
                buffer._rank_rows[rank] = rank_rows = set()
            rank_rows.add(word_addr)
        entry.data[offset : offset + size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")
        entry.store_mask |= mask

        # Memory-dependence check: a later task that loaded any of these
        # bytes used a stale value — squash it and everything younger.
        # Walking later tasks in ascending rank lets the store shadow
        # (bytes redefined between the storer and the task under test)
        # accumulate incrementally instead of being recomputed per task.
        if len(entries) > 1:
            remaining = mask
            for r in sorted(entries):
                if r <= rank or not remaining:
                    continue
                later = entries[r]
                if later.load_mask & remaining:
                    squashed = sorted(
                        set(squashed)
                        | set(self.squash_from_rank(r, reason="violation"))
                    )
                    break
                remaining &= ~later.store_mask

        return AccessResult(
            value=None,
            hit=True,
            end_cycle=now + self._hit_cycles,
            squashed_ranks=squashed,
        )

    # -- end of run ----------------------------------------------------------------

    def drain(self) -> None:
        """Flush architectural state to memory (all tasks committed)."""
        for row in self.buffer.rows():
            for rank, entry in row.entries.items():
                if entry.store_mask:
                    raise ProtocolError(
                        f"drain with uncommitted store in row {row.word_addr:#x}"
                    )
        self.data_cache.drain()

    def miss_ratio(self) -> float:
        """Table-2 definition: accesses supplied by the next level of
        memory (below the ARB/data-cache pair) over all accesses."""
        accesses = self.stats.get("loads") + self.stats.get("stores")
        if accesses == 0:
            return 0.0
        return self.stats.get("memory_supplies") / accesses
