"""The Address Resolution Buffer baseline (Franklin & Sohi).

The ARB is the prior solution to speculative versioning for hierarchical
execution models and the comparison point of the paper's evaluation: a
*shared* fully-associative buffer, reached by every PU through an
interconnect, whose rows hold one entry per task stage (load bit, store
bit, value). A shared L1 data cache backs the buffer and holds
architectural data.

The two problems the SVC attacks are visible in this model by
construction: every access — hit or miss — pays the interconnect/ARB
``hit_cycles`` latency, and commits copy speculative state into the data
cache.

:class:`ARBSystem` offers the same duck-typed interface as
:class:`repro.svc.SVCSystem`, so the functional driver, the oracle tests
and the timing simulator run identically over both memory systems.
"""

from repro.arb.buffer import ARBEntry, ARBRow, AddressResolutionBuffer
from repro.arb.data_cache import SharedDataCache
from repro.arb.system import ARBSystem

__all__ = [
    "AddressResolutionBuffer",
    "ARBEntry",
    "ARBRow",
    "ARBSystem",
    "SharedDataCache",
]
