"""Writeback buffer: decouples dirty-line cast-outs from the miss path.

A fixed number of entries drain to the next level of memory in FIFO order;
a replacement that finds the buffer full stalls. Reads must snoop the
buffer so a line cast out but not yet drained is still visible.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.common.errors import ConfigError


class WritebackBuffer:
    """FIFO of (line address, data bytes) awaiting transfer to memory."""

    def __init__(self, n_entries: int) -> None:
        if n_entries <= 0:
            raise ConfigError("writeback buffer needs at least one entry")
        self.n_entries = n_entries
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()

    def is_full(self) -> bool:
        return len(self._entries) >= self.n_entries

    def push(self, line_addr: int, data: bytes) -> bool:
        """Queue a writeback; returns False (stall) when full.

        A second cast-out of the same line overwrites the queued data —
        the newer version supersedes the older one.
        """
        if line_addr in self._entries:
            self._entries[line_addr] = bytes(data)
            self._entries.move_to_end(line_addr)
            return True
        if self.is_full():
            return False
        self._entries[line_addr] = bytes(data)
        return True

    def snoop(self, line_addr: int) -> Optional[bytes]:
        """Data for ``line_addr`` if it is waiting to drain."""
        return self._entries.get(line_addr)

    def drain_one(self) -> Optional[Tuple[int, bytes]]:
        """Remove and return the oldest entry, or ``None`` when empty."""
        if not self._entries:
            return None
        line_addr, data = next(iter(self._entries.items()))
        del self._entries[line_addr]
        return line_addr, data

    def drain_all(self) -> List[Tuple[int, bytes]]:
        drained = list(self._entries.items())
        self._entries.clear()
        return drained

    def __len__(self) -> int:
        return len(self._entries)
