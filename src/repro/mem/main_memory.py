"""Architected storage: the next level of the memory hierarchy.

Byte-granular and sparse — only written pages are stored, unwritten bytes
read as zero. This is the single architectural image behind both the SVC
and the ARB, and the image the sequential oracle is compared against.

Storage is chunked into fixed-size pages of ``bytearray`` so the
line-granular helpers the caches hammer (``read_line`` on every fill,
``write_line`` on every writeback) are single slice operations instead
of per-byte dictionary probes. Pages are a multiple of every line size
in use (16/32/64), so a line never straddles two pages on those paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

_PAGE_SHIFT = 8
_PAGE_SIZE = 1 << _PAGE_SHIFT
_PAGE_MASK = _PAGE_SIZE - 1


class MainMemory:
    """Sparse byte-addressed memory with line-granular helpers."""

    def __init__(self, miss_penalty_cycles: int = 10) -> None:
        self.miss_penalty_cycles = miss_penalty_cycles
        self._pages: Dict[int, bytearray] = {}

    def read_byte(self, addr: int) -> int:
        page = self._pages.get(addr >> _PAGE_SHIFT)
        return page[addr & _PAGE_MASK] if page is not None else 0

    def write_byte(self, addr: int, value: int) -> None:
        pages = self._pages
        page_no = addr >> _PAGE_SHIFT
        page = pages.get(page_no)
        if page is None:
            page = pages[page_no] = bytearray(_PAGE_SIZE)
        page[addr & _PAGE_MASK] = value & 0xFF

    def read_bytes(self, addr: int, size: int) -> bytes:
        offset = addr & _PAGE_MASK
        if offset + size <= _PAGE_SIZE:
            page = self._pages.get(addr >> _PAGE_SHIFT)
            if page is None:
                return bytes(size)
            return bytes(page[offset : offset + size])
        # Page-straddling read (rare: only unaligned bulk reads).
        out = bytearray(size)
        pos = 0
        while pos < size:
            cur = addr + pos
            offset = cur & _PAGE_MASK
            take = min(size - pos, _PAGE_SIZE - offset)
            page = self._pages.get(cur >> _PAGE_SHIFT)
            if page is not None:
                out[pos : pos + take] = page[offset : offset + take]
            pos += take
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        pages = self._pages
        size = len(data)
        offset = addr & _PAGE_MASK
        if offset + size <= _PAGE_SIZE:
            page_no = addr >> _PAGE_SHIFT
            page = pages.get(page_no)
            if page is None:
                page = pages[page_no] = bytearray(_PAGE_SIZE)
            page[offset : offset + size] = data
            return
        pos = 0
        while pos < size:
            cur = addr + pos
            offset = cur & _PAGE_MASK
            take = min(size - pos, _PAGE_SIZE - offset)
            page_no = cur >> _PAGE_SHIFT
            page = pages.get(page_no)
            if page is None:
                page = pages[page_no] = bytearray(_PAGE_SIZE)
            page[offset : offset + take] = data[pos : pos + take]
            pos += take

    def read_int(self, addr: int, size: int) -> int:
        """Little-endian unsigned integer at ``addr``."""
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        mask = (1 << (8 * size)) - 1
        self.write_bytes(addr, (value & mask).to_bytes(size, "little"))

    def read_line(self, line_addr: int, line_size: int) -> bytearray:
        offset = line_addr & _PAGE_MASK
        if offset + line_size <= _PAGE_SIZE:
            page = self._pages.get(line_addr >> _PAGE_SHIFT)
            if page is None:
                return bytearray(line_size)
            return bytearray(page[offset : offset + line_size])
        return bytearray(self.read_bytes(line_addr, line_size))

    def write_line(self, line_addr: int, data: bytes) -> None:
        self.write_bytes(line_addr, data)

    def image(self) -> Dict[int, int]:
        """Copy of all non-zero bytes (for end-of-run comparisons)."""
        image: Dict[int, int] = {}
        for page_no, page in self._pages.items():
            base = page_no << _PAGE_SHIFT
            for offset, byte in enumerate(page):
                if byte:
                    image[base + offset] = byte
        return image

    def load_image(self, image: Iterable[Tuple[int, int]]) -> None:
        """Bulk-populate memory, e.g. to seed two machines identically."""
        for addr, byte in image:
            self.write_byte(addr, byte)
