"""Architected storage: the next level of the memory hierarchy.

Byte-granular and sparse — only written bytes are stored, unwritten bytes
read as zero. This is the single architectural image behind both the SVC
and the ARB, and the image the sequential oracle is compared against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple


class MainMemory:
    """Sparse byte-addressed memory with line-granular helpers."""

    def __init__(self, miss_penalty_cycles: int = 10) -> None:
        self.miss_penalty_cycles = miss_penalty_cycles
        self._bytes: Dict[int, int] = {}

    def read_byte(self, addr: int) -> int:
        return self._bytes.get(addr, 0)

    def write_byte(self, addr: int, value: int) -> None:
        self._bytes[addr] = value & 0xFF

    def read_bytes(self, addr: int, size: int) -> bytes:
        get = self._bytes.get
        return bytes([get(i, 0) for i in range(addr, addr + size)])

    def write_bytes(self, addr: int, data: bytes) -> None:
        store = self._bytes
        for i, byte in enumerate(data):
            store[addr + i] = byte

    def read_int(self, addr: int, size: int) -> int:
        """Little-endian unsigned integer at ``addr``."""
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        mask = (1 << (8 * size)) - 1
        self.write_bytes(addr, (value & mask).to_bytes(size, "little"))

    def read_line(self, line_addr: int, line_size: int) -> bytearray:
        return bytearray(self.read_bytes(line_addr, line_size))

    def write_line(self, line_addr: int, data: bytes) -> None:
        self.write_bytes(line_addr, data)

    def image(self) -> Dict[int, int]:
        """Copy of all non-zero bytes (for end-of-run comparisons)."""
        return {addr: b for addr, b in self._bytes.items() if b != 0}

    def load_image(self, image: Iterable[Tuple[int, int]]) -> None:
        """Bulk-populate memory, e.g. to seed two machines identically."""
        for addr, byte in image:
            self.write_byte(addr, byte)
