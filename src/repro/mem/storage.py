"""Set-associative storage array with LRU replacement and victim veto.

The array is generic over the line payload: the SMP controller stores
coherence lines, the SVC controller stores versioned lines. Replacement
policy is LRU, but the *caller* decides which resident lines are legal
victims — the SVC forbids replacing active speculative lines except by the
head task (paper section 3.2.5), which it expresses through the
``can_evict`` predicate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.common.config import CacheGeometry
from repro.common.errors import ProtocolError

LineT = TypeVar("LineT")


class SetAssociativeArray(Generic[LineT]):
    """``n_sets`` sets of ``associativity`` ways, keyed by line address.

    Each set is an :class:`OrderedDict` from line address to payload, kept
    in LRU order (least recently used first).
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: List["OrderedDict[int, LineT]"] = [
            OrderedDict() for _ in range(geometry.n_sets)
        ]
        # lookup() is the single hottest call in a timing sweep; when the
        # geometry allows (power-of-two set count and line size — every
        # paper configuration), index with shift+mask instead of div+mod.
        n_sets = geometry.n_sets
        line_size = geometry.line_size
        if n_sets & (n_sets - 1) == 0 and line_size & (line_size - 1) == 0:
            self._line_shift: Optional[int] = line_size.bit_length() - 1
            self._set_mask = n_sets - 1
        else:
            self._line_shift = None
            self._set_mask = 0
        # Direct-mapped arrays need no LRU maintenance: each set holds at
        # most one line, so recency can never influence victim choice.
        self._lru = geometry.associativity > 1

    def _set_for(self, line_addr: int) -> "OrderedDict[int, LineT]":
        if self._line_shift is not None:
            return self._sets[(line_addr >> self._line_shift) & self._set_mask]
        return self._sets[self.geometry.set_index(line_addr)]

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[LineT]:
        """The resident payload for ``line_addr``, updating LRU by default."""
        if self._line_shift is not None:
            way_set = self._sets[(line_addr >> self._line_shift) & self._set_mask]
        else:
            way_set = self._sets[self.geometry.set_index(line_addr)]
        line = way_set.get(line_addr)
        if line is not None and touch and self._lru:
            way_set.move_to_end(line_addr)
        return line

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._set_for(line_addr)

    def set_is_full(self, line_addr: int) -> bool:
        return len(self._set_for(line_addr)) >= self.geometry.associativity

    def has_free_way(self, line_addr: int) -> bool:
        """True when the set for ``line_addr`` has an empty way (snarfing)."""
        return not self.set_is_full(line_addr)

    def choose_victim(
        self,
        line_addr: int,
        can_evict: Optional[Callable[[int, LineT], bool]] = None,
    ) -> Optional[Tuple[int, LineT]]:
        """LRU-ordered victim for inserting ``line_addr``, or ``None``.

        Returns ``None`` either when no eviction is needed (free way) or
        when every resident line is vetoed by ``can_evict`` — callers that
        need to distinguish should check :meth:`set_is_full` first.
        """
        way_set = self._set_for(line_addr)
        if len(way_set) < self.geometry.associativity:
            return None
        for addr, line in way_set.items():  # LRU first
            if can_evict is None or can_evict(addr, line):
                return addr, line
        return None

    def victim_candidates(
        self,
        line_addr: int,
        can_evict: Optional[Callable[[int, LineT], bool]] = None,
    ) -> List[Tuple[int, LineT]]:
        """Every legal victim for ``line_addr`` in LRU order, or an empty
        list when no eviction is needed (free way) or none is legal —
        same ambiguity as :meth:`choose_victim`, and callers that biased
        replacement policies (fault injection) pick from this list."""
        way_set = self._set_for(line_addr)
        if len(way_set) < self.geometry.associativity:
            return []
        return [
            (addr, line)
            for addr, line in way_set.items()
            if can_evict is None or can_evict(addr, line)
        ]

    def insert(self, line_addr: int, line: LineT) -> None:
        """Insert into a set with a free way; caller evicts first if full."""
        way_set = self._set_for(line_addr)
        if line_addr in way_set:
            raise ProtocolError(f"line {line_addr:#x} already resident")
        if len(way_set) >= self.geometry.associativity:
            raise ProtocolError(
                f"set for {line_addr:#x} is full; evict before inserting"
            )
        way_set[line_addr] = line

    def remove(self, line_addr: int) -> LineT:
        way_set = self._set_for(line_addr)
        if line_addr not in way_set:
            raise ProtocolError(f"line {line_addr:#x} not resident")
        return way_set.pop(line_addr)

    def lines(self) -> Iterator[Tuple[int, LineT]]:
        """All resident (line address, payload) pairs."""
        for way_set in self._sets:
            yield from way_set.items()

    def resident_count(self) -> int:
        return sum(len(way_set) for way_set in self._sets)

    def clear(self) -> None:
        for way_set in self._sets:
            way_set.clear()
