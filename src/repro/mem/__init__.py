"""Cache storage substrate: arrays, MSHRs, writeback buffers, main memory."""

from repro.mem.main_memory import MainMemory
from repro.mem.mshr import MSHRFile
from repro.mem.storage import SetAssociativeArray
from repro.mem.writeback_buffer import WritebackBuffer

__all__ = [
    "MainMemory",
    "MSHRFile",
    "SetAssociativeArray",
    "WritebackBuffer",
]
