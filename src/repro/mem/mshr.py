"""Miss Status Holding Registers (Kroft / Sohi-Franklin style).

Both the SVC caches and the ARB/data cache are non-blocking: a miss
allocates an MSHR and later accesses to the same line combine into it, up
to a per-MSHR combining limit (paper section 4.2: 8 MSHRs combining 4 for
each SVC cache; 32 MSHRs combining 8 for the ARB and data cache).

The timing simulator asks :meth:`MSHRFile.allocate` on every miss; the
answer distinguishes a *primary* miss (starts a bus/memory transaction), a
*secondary* miss (combined, waits on the primary) and a structural stall
(file full or combining limit hit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError


@dataclass(slots=True)
class MSHR:
    """One in-flight line miss and the accesses combined into it."""

    line_addr: int
    ready_cycle: int
    waiter_ids: List[int] = field(default_factory=list)


class AllocationResult:
    """Outcome of an MSHR allocation attempt."""

    PRIMARY = "primary"
    SECONDARY = "secondary"
    STALL = "stall"


class MSHRFile:
    """Fixed pool of MSHRs with per-entry access combining."""

    def __init__(self, n_entries: int, combining: int) -> None:
        if n_entries <= 0 or combining <= 0:
            raise ConfigError("MSHR count and combining limit must be positive")
        self.n_entries = n_entries
        self.combining = combining
        self._entries: Dict[int, MSHR] = {}

    def lookup(self, line_addr: int) -> Optional[MSHR]:
        return self._entries.get(line_addr)

    def allocate(self, line_addr: int, waiter_id: int, ready_cycle: int) -> str:
        """Try to track a miss on ``line_addr`` for access ``waiter_id``.

        Returns one of the :class:`AllocationResult` verbs. For a secondary
        miss the existing entry's ready cycle is kept (the line arrives
        when the primary's transaction completes).
        """
        entry = self._entries.get(line_addr)
        if entry is not None:
            if len(entry.waiter_ids) >= self.combining:
                return AllocationResult.STALL
            entry.waiter_ids.append(waiter_id)
            return AllocationResult.SECONDARY
        if len(self._entries) >= self.n_entries:
            return AllocationResult.STALL
        self._entries[line_addr] = MSHR(
            line_addr=line_addr, ready_cycle=ready_cycle, waiter_ids=[waiter_id]
        )
        return AllocationResult.PRIMARY

    def pop_ready(self, now: int) -> List[MSHR]:
        """Remove and return every entry whose line has arrived by ``now``."""
        entries = self._entries
        if not entries:
            return []
        ready = [e for e in entries.values() if e.ready_cycle <= now]
        for entry in ready:
            del entries[entry.line_addr]
        return ready

    def earliest_ready(self) -> Optional[int]:
        """Cycle at which the first in-flight miss completes, if any."""
        if not self._entries:
            return None
        return min(entry.ready_cycle for entry in self._entries.values())

    def flush(self) -> List[MSHR]:
        """Drop all in-flight entries (task squash)."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries

    def in_flight(self) -> int:
        return len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.n_entries
