"""repro: a full reproduction of the Speculative Versioning Cache (HPCA 1998).

Public API highlights
---------------------
- :class:`repro.svc.SVCSystem` — the paper's contribution: private
  per-PU caches with a Multiple Reader Multiple Writer protocol.
- :class:`repro.arb.ARBSystem` — the Address Resolution Buffer baseline.
- :class:`repro.hier.SpeculativeExecutionDriver` — the hierarchical
  (multiscalar-style) task execution model driving either memory system.
- :mod:`repro.timing` — the cycle-level processor model used for the
  paper's IPC experiments.
- :mod:`repro.workloads` — synthetic SPEC95-like workload generators.
- :mod:`repro.harness` — experiment registry regenerating every table
  and figure of the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
