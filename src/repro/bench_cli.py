"""``python -m repro bench``: the performance benchmark as a subcommand.

A thin front end over ``tools/bench_perf.py`` — the wall-clock
benchmark with the regression gates (per-tier events/sec floors,
fastpath A/B, telemetry and supervisor overhead budgets) documented in
docs/PERFORMANCE.md. The subcommand defaults to the CI smoke settings
(``--quick``) so a bare invocation finishes in seconds::

    python -m repro bench
    python -m repro bench --scale 0.1 --repeats 5
    python -m repro bench --gate          # also gate vs committed BENCH_PERF.json
    python -m repro bench --full          # paper-scale, all benchmarks

Exit codes follow the CLI standard: **0** all gates pass, **1** a gate
tripped, **2** usage or configuration error.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import List, Optional

_TOOL_MODULE = "repro._bench_perf_tool"


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[2]


def _load_bench_tool():
    """Import ``tools/bench_perf.py`` by path (tools/ is not a package)."""
    cached = sys.modules.get(_TOOL_MODULE)
    if cached is not None:
        return cached
    path = _repo_root() / "tools" / "bench_perf.py"
    spec = importlib.util.spec_from_file_location(_TOOL_MODULE, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[_TOOL_MODULE] = module
    spec.loader.exec_module(module)
    return module


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the experiment harness (wraps "
        "tools/bench_perf.py): wall time, events/sec, per-tier floors, "
        "fastpath A/B, and overhead budgets.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload scale factor (default: the CI smoke scale)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="wall-time repeats per experiment, min-of-N",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="also compare against the committed BENCH_PERF.json "
        "baseline and fail on wall-time regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional wall-time regression for --gate "
        "(default 0.25)",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated SPEC95 benchmark subset "
        "(default: the CI smoke trio, or all with --full)",
    )
    parser.add_argument(
        "--experiments",
        default=None,
        help="comma-separated experiment names (default: fig19,fig20)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-parallel fan-out width (0 = one per CPU; "
        "default: REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_PERF.json",
        help="where to write the result payload "
        "(default: BENCH_PERF.json in the working directory)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale run over all benchmarks instead of the "
        "quick smoke settings",
    )
    parser.add_argument(
        "--experiments-only",
        action="store_true",
        help="time only the experiment sweeps; skip the tier-floor, "
        "telemetry and supervisor gates",
    )
    return parser


def bench_main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    tool = _load_bench_tool()

    forwarded: List[str] = []
    if not args.full:
        # Quick smoke by default; explicit --scale/--benchmarks flags
        # still win inside the tool's own precedence.
        forwarded.append("--quick")
    if args.scale is not None:
        forwarded += ["--scale", str(args.scale)]
    if args.repeats is not None:
        forwarded += ["--repeats", str(args.repeats)]
    if args.benchmarks:
        forwarded += ["--benchmarks", args.benchmarks]
    if args.experiments:
        forwarded += ["--experiments", args.experiments]
    if args.workers is not None:
        forwarded += ["--workers", str(args.workers)]
    forwarded += ["--output", args.output]
    if args.experiments_only:
        forwarded += ["--skip-telemetry", "--skip-supervisor", "--skip-tiers"]
    if args.gate:
        baseline = _repo_root() / "BENCH_PERF.json"
        if not baseline.is_file():
            print(
                f"config error: no committed baseline at {baseline}; "
                "run the benchmark once and commit BENCH_PERF.json "
                "before gating",
                file=sys.stderr,
            )
            return 2
        forwarded += [
            "--compare", str(baseline), "--threshold", str(args.threshold),
        ]
    return tool.main(forwarded)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(bench_main())
