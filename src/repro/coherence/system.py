"""Whole-SMP orchestration: caches + snooping bus + next-level memory.

Reproduces the behaviour walked through in the paper's Figure 4: a load
miss is served by another cache's dirty copy (flushed, both end clean); a
store miss invalidates all other copies; a replacement of a dirty line
casts it out to memory with BusWback.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bus.requests import BusRequestKind
from repro.bus.snooping_bus import SnoopingBus
from repro.coherence.protocol import CoherenceState, SMPCache
from repro.common.config import BusConfig, CacheGeometry
from repro.common.errors import ConfigError
from repro.common.events import EventLog
from repro.common.stats import StatsRegistry
from repro.mem.main_memory import MainMemory


class SMPSystem:
    """N private caches kept consistent by an invalidation MRSW protocol."""

    def __init__(
        self,
        n_caches: int = 4,
        geometry: Optional[CacheGeometry] = None,
        bus_config: Optional[BusConfig] = None,
        memory: Optional[MainMemory] = None,
        event_log: Optional[EventLog] = None,
        checker=None,
    ) -> None:
        if n_caches < 2:
            raise ConfigError("an SMP needs at least two caches")
        self.geometry = geometry if geometry is not None else CacheGeometry()
        self.stats = StatsRegistry()
        if checker is not None and event_log is None:
            event_log = EventLog()
        self.event_log = event_log
        self.bus = SnoopingBus(
            bus_config if bus_config is not None else BusConfig(),
            stats=self.stats,
            event_log=event_log,
        )
        self.memory = memory if memory is not None else MainMemory()
        self.caches: List[SMPCache] = [
            SMPCache(i, self.geometry) for i in range(n_caches)
        ]
        self._now = 0
        self.checker = checker
        if checker is not None:
            checker.bind(self)

    # -- processor interface -------------------------------------------------

    def load(self, cache_id: int, addr: int, size: int = 4) -> int:
        """Load ``size`` bytes at ``addr`` through cache ``cache_id``."""
        cache = self.caches[cache_id]
        line_addr = self.geometry.address_map.line_address(addr)
        self.stats.add("loads")
        line = cache.probe_load(line_addr)
        if line is None:
            self.stats.add("load_misses")
            line = self._handle_read_miss(cache, line_addr)
        offset = self.geometry.address_map.line_offset(addr)
        return int.from_bytes(bytes(line.data[offset : offset + size]), "little")

    def store(self, cache_id: int, addr: int, value: int, size: int = 4) -> None:
        """Store ``value`` (little-endian, ``size`` bytes) at ``addr``."""
        cache = self.caches[cache_id]
        line_addr = self.geometry.address_map.line_address(addr)
        self.stats.add("stores")
        line, hit = cache.probe_store(line_addr)
        if not hit:
            self.stats.add("store_misses")
            line = self._handle_write_miss(cache, line_addr)
        offset = self.geometry.address_map.line_offset(addr)
        mask = (1 << (8 * size)) - 1
        line.data[offset : offset + size] = (value & mask).to_bytes(size, "little")
        line.state = CoherenceState.DIRTY

    def replace(self, cache_id: int, addr: int) -> None:
        """Explicitly cast out the line holding ``addr`` (Figure 4 step 4)."""
        cache = self.caches[cache_id]
        line_addr = self.geometry.address_map.line_address(addr)
        line = cache.array.lookup(line_addr, touch=False)
        if line is None:
            return
        cache.array.remove(line_addr)
        if line.state == CoherenceState.DIRTY:
            self._writeback(cache.cache_id, line_addr, bytes(line.data))

    # -- bus-side orchestration ----------------------------------------------

    def _handle_read_miss(self, cache: SMPCache, line_addr: int):
        supplied = None
        for other in self.caches:
            if other is cache:
                continue
            flushed = other.snoop_read(line_addr)
            if flushed is not None:
                supplied = flushed
                # A flush updates memory as well: the line becomes clean.
                self.memory.write_line(line_addr, flushed)
        cache_to_cache = supplied is not None
        if supplied is None:
            supplied = bytes(self.memory.read_line(line_addr, self.geometry.line_size))
        transaction = self.bus.reserve(
            self._now,
            BusRequestKind.READ,
            cache.cache_id,
            line_addr,
            cache_to_cache=cache_to_cache,
        )
        self._now = transaction.end_cycle
        self._install(cache, line_addr, supplied, CoherenceState.CLEAN)
        return cache.array.lookup(line_addr, touch=False)

    def _handle_write_miss(self, cache: SMPCache, line_addr: int):
        # BusWrite: obtain the line with intent to modify; every other
        # copy is invalidated, a dirty one flushing its data to us.
        supplied = None
        for other in self.caches:
            if other is cache:
                continue
            flushed = other.snoop_write(line_addr)
            if flushed is not None:
                supplied = flushed
        existing = cache.array.lookup(line_addr, touch=False)
        if existing is not None:
            # Store to our own clean copy: upgrade in place.
            transaction = self.bus.reserve(
                self._now, BusRequestKind.WRITE, cache.cache_id, line_addr
            )
            self._now = transaction.end_cycle
            existing.state = CoherenceState.DIRTY
            return existing
        cache_to_cache = supplied is not None
        if supplied is None:
            supplied = bytes(self.memory.read_line(line_addr, self.geometry.line_size))
        transaction = self.bus.reserve(
            self._now,
            BusRequestKind.WRITE,
            cache.cache_id,
            line_addr,
            cache_to_cache=cache_to_cache,
        )
        self._now = transaction.end_cycle
        self._install(cache, line_addr, supplied, CoherenceState.DIRTY)
        return cache.array.lookup(line_addr, touch=False)

    def _install(self, cache: SMPCache, line_addr: int, data: bytes, state: str) -> None:
        victim = cache.fill(line_addr, data, state)
        if victim is not None:
            victim_addr, victim_line = victim
            if victim_line.state == CoherenceState.DIRTY:
                self._writeback(cache.cache_id, victim_addr, bytes(victim_line.data))

    def _writeback(self, cache_id: int, line_addr: int, data: bytes) -> None:
        transaction = self.bus.reserve(
            self._now, BusRequestKind.WBACK, cache_id, line_addr
        )
        self._now = transaction.end_cycle
        self.memory.write_line(line_addr, data)
        self.stats.add("writebacks")

    # -- inspection ------------------------------------------------------------

    def states_of(self, addr: int) -> List[str]:
        """Per-cache states for the line holding ``addr`` (test helper)."""
        line_addr = self.geometry.address_map.line_address(addr)
        return [cache.state_of(line_addr) for cache in self.caches]

    def drain(self) -> None:
        """Flush every dirty line to memory (end-of-run checks)."""
        for cache in self.caches:
            for line_addr, line in list(cache.array.lines()):
                if line.state == CoherenceState.DIRTY:
                    self.memory.write_line(line_addr, bytes(line.data))
                    line.state = CoherenceState.CLEAN
