"""Per-cache state and FSM of the invalidation-based MRSW protocol.

Figure 3 of the paper, verbatim: each line is Invalid, Clean or Dirty;
loads hit on valid lines, stores hit on dirty lines; a store to a
clean/invalid line issues BusWrite which invalidates all other copies; a
dirty line flushes on BusRead and casts out with BusWback on replacement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import ProtocolError
from repro.mem.storage import SetAssociativeArray


class CoherenceState:
    """The three stable states of Figure 3."""

    INVALID = "Invalid"
    CLEAN = "Clean"
    DIRTY = "Dirty"


@dataclass
class CoherenceLine:
    """One resident line: state bits V/S of Figure 2 plus the data."""

    state: str
    data: bytearray = field(default_factory=bytearray)

    @property
    def dirty(self) -> bool:
        return self.state == CoherenceState.DIRTY


class SMPCache:
    """One private L1 cache: processor side and snoop side.

    The cache implements only *local* decisions; the bus-level outcome of
    a miss (who supplies data, who invalidates) is orchestrated by
    :class:`repro.coherence.system.SMPSystem`, mirroring how the paper
    splits controller FSMs from the bus protocol.
    """

    def __init__(self, cache_id: int, geometry: CacheGeometry) -> None:
        self.cache_id = cache_id
        self.geometry = geometry
        self.array: SetAssociativeArray[CoherenceLine] = SetAssociativeArray(geometry)

    # -- processor side ----------------------------------------------------

    def probe_load(self, line_addr: int) -> Optional[CoherenceLine]:
        """The line if a load would hit (any valid state), else ``None``."""
        return self.array.lookup(line_addr)

    def probe_store(self, line_addr: int) -> Tuple[Optional[CoherenceLine], bool]:
        """(line, hit?) for a store: only a dirty line is a store hit."""
        line = self.array.lookup(line_addr)
        if line is None:
            return None, False
        return line, line.state == CoherenceState.DIRTY

    def fill(self, line_addr: int, data: bytes, state: str) -> Optional[Tuple[int, CoherenceLine]]:
        """Install a line, evicting LRU if needed; returns the victim."""
        victim = None
        if self.array.set_is_full(line_addr):
            choice = self.array.choose_victim(line_addr)
            if choice is None:
                raise ProtocolError("SMP cache could not choose a victim")
            victim_addr, victim_line = choice
            self.array.remove(victim_addr)
            victim = (victim_addr, victim_line)
        self.array.insert(line_addr, CoherenceLine(state=state, data=bytearray(data)))
        return victim

    # -- snoop side ---------------------------------------------------------

    def snoop_read(self, line_addr: int) -> Optional[bytes]:
        """BusRead snoop: a dirty copy flushes and becomes clean."""
        line = self.array.lookup(line_addr, touch=False)
        if line is None:
            return None
        if line.state == CoherenceState.DIRTY:
            line.state = CoherenceState.CLEAN
            return bytes(line.data)
        return None

    def snoop_write(self, line_addr: int) -> Optional[bytes]:
        """BusWrite snoop: any copy invalidates; a dirty one flushes first."""
        line = self.array.lookup(line_addr, touch=False)
        if line is None:
            return None
        data = bytes(line.data) if line.state == CoherenceState.DIRTY else None
        self.array.remove(line_addr)
        return data

    def state_of(self, line_addr: int) -> str:
        line = self.array.lookup(line_addr, touch=False)
        return CoherenceState.INVALID if line is None else line.state
