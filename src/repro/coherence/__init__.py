"""Snooping-bus MRSW cache coherence (paper section 3.1, Figures 2-4).

This is the Symmetric Multiprocessor substrate the SVC is built by
analogy to: a three-state (Invalid / Clean / Dirty) invalidation protocol
over private L1 caches. It serves three roles in the repository:

1. a validated substrate exercising the storage/bus plumbing,
2. the non-speculative reference the SVC must degenerate to when tasks
   run one at a time, and
3. the executable form of the paper's Figure 4 worked example.
"""

from repro.coherence.protocol import CoherenceLine, CoherenceState, SMPCache
from repro.coherence.system import SMPSystem

__all__ = ["CoherenceLine", "CoherenceState", "SMPCache", "SMPSystem"]
