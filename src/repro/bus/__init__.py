"""Split-transaction snooping bus shared by all private-cache systems."""

from repro.bus.requests import BusRequestKind, BusTransaction
from repro.bus.snooping_bus import SnoopingBus

__all__ = ["BusRequestKind", "BusTransaction", "SnoopingBus"]
