"""Timing and accounting model of the split-transaction snooping bus.

The functional protocol layers (SMP coherence, SVC) broadcast snoops by
direct method call — the *ordering* a real bus provides is supplied by the
simulator's one-transaction-at-a-time discipline. This class models the
other two things a bus contributes: **occupancy** (a typical transaction
holds the bus for 3 processor cycles; flushing a committed version to the
next level takes one extra cycle — paper section 4.2 and footnote 7) and
**utilization statistics** (Table 3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bus.requests import BusTransaction
from repro.common.config import BusConfig
from repro.common.events import EventLog
from repro.common.stats import StatsRegistry
from repro.telemetry import CYCLE_EDGES, wired


class SnoopingBus:
    """Arbiter + occupancy tracker for one snooping bus."""

    def __init__(
        self,
        config: BusConfig,
        stats: Optional[StatsRegistry] = None,
        event_log: Optional[EventLog] = None,
        keep_history: bool = False,
        telemetry=None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatsRegistry()
        self.event_log = event_log
        self.keep_history = keep_history
        self.history: List[BusTransaction] = []
        self._free_at = 0
        #: Fault injection (repro.faults): extra occupancy per request
        #: kind, e.g. ``{"wback": 2}`` models a slow next-level path.
        self.fault_extra_cycles: dict = {}
        #: Telemetry histograms, resolved once at wiring time so
        #: :meth:`reserve` pays only an ``is not None`` when disabled.
        telemetry = wired(telemetry)
        self._tel_wait = self._tel_occupancy = None
        self._wait_batch = self._occupancy_batch = None
        if telemetry is not None:
            self._tel_wait = telemetry.histogram(
                "bus.wait_cycles", CYCLE_EDGES, unit="cycles"
            )
            self._tel_occupancy = telemetry.histogram(
                "bus.occupancy_cycles", CYCLE_EDGES, unit="cycles"
            )
            #: Batched per-transaction observations (value -> count):
            #: :meth:`reserve` pays two dict increments instead of two
            #: histogram calls; the flush hook drains before every
            #: snapshot, so the metrics stay exact.
            self._wait_batch = {}
            self._occupancy_batch = {}
            telemetry.on_snapshot(self._flush_cycle_batches)

    def _flush_cycle_batches(self) -> None:
        """Drain batched wait/occupancy counts into the histograms
        (idempotent: batches are cleared as they flush)."""
        for batch, hist in (
            (self._wait_batch, self._tel_wait),
            (self._occupancy_batch, self._tel_occupancy),
        ):
            if batch:
                for value, count in batch.items():
                    hist.observe_many(value, count)
                batch.clear()

    def reserve(
        self,
        now: int,
        kind: str,
        requester: Optional[int],
        line_addr: int,
        store_mask: int = 0,
        cache_to_cache: bool = False,
        extra_cycles: int = 0,
    ) -> BusTransaction:
        """Arbitrate and occupy the bus for one transaction.

        The transaction starts at the later of ``now`` and the cycle the
        bus frees up, and runs for the configured transaction length plus
        ``extra_cycles``. Returns the scheduled transaction; the caller
        reads ``end_cycle`` for the completion time.
        """
        start = max(now, self._free_at)
        cycles = self.config.transaction_cycles + extra_cycles
        if self.fault_extra_cycles:
            cycles += self.fault_extra_cycles.get(kind, 0)
        end = start + cycles
        self._free_at = end

        self.stats.add("bus_transactions")
        self.stats.add(f"bus_{kind}")
        self.stats.add("bus_busy_cycles", cycles)
        self.stats.add("bus_wait_cycles", start - now)
        if cache_to_cache:
            self.stats.add("bus_cache_to_cache")
        batch = self._wait_batch
        if batch is not None:
            wait = start - now
            batch[wait] = batch.get(wait, 0) + 1
            occupancy = self._occupancy_batch
            occupancy[cycles] = occupancy.get(cycles, 0) + 1

        transaction = BusTransaction(
            kind=kind,
            requester=requester,
            line_addr=line_addr,
            start_cycle=start,
            end_cycle=end,
            store_mask=store_mask,
            cache_to_cache=cache_to_cache,
        )
        if self.keep_history:
            self.history.append(transaction)
        if self.event_log is not None:
            self.event_log.emit(
                "bus",
                source="bus",
                request=kind,
                requester=requester,
                line_addr=line_addr,
                start=start,
                end=end,
            )
        return transaction

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the bus was occupied (Table 3)."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.get("bus_busy_cycles") / total_cycles)

    @property
    def free_at(self) -> int:
        """First cycle at which a new transaction could start."""
        return self._free_at
