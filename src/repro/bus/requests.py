"""Bus request vocabulary shared by the SMP and SVC protocols.

The three request kinds come straight from the paper's Figures 3 and 10:
``BusRead`` on a load miss, ``BusWrite`` on a store miss (or store to a
non-exclusive line), ``BusWback`` to cast out a dirty line. The SVC adds a
store mask to BusWrite (section 3.7: masks indicate the versioning blocks
modified by the store that caused the request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class BusRequestKind:
    """String constants naming the snooping-bus request types."""

    READ = "BusRead"
    WRITE = "BusWrite"
    WBACK = "BusWback"

    ALL = (READ, WRITE, WBACK)


@dataclass(frozen=True)
class BusTransaction:
    """One completed bus transaction, for accounting and event replay.

    ``requester`` is a cache identifier, or ``None`` when the next level
    of memory initiated the action. ``store_mask`` is the versioning-block
    mask of a BusWrite (0 for other kinds). ``cache_to_cache`` records
    whether data moved between L1 caches without a memory access.
    """

    kind: str
    requester: Optional[int]
    line_addr: int
    start_cycle: int
    end_cycle: int
    store_mask: int = 0
    cache_to_cache: bool = False

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle
