"""Shared plumbing for the reproduction benchmarks.

Each bench module accumulates its measured points in the registry; at
session end the paper-style tables/series are printed and written to
``benchmarks/results/``. ``REPRO_SCALE`` (default 0.35 here) scales the
synthetic workloads; raise it toward 1.0+ for steadier statistics.
``REPRO_WORKERS`` fans each experiment's points across that many worker
processes (``0`` = one per CPU) — results are identical to serial runs,
see :mod:`repro.harness.parallel`.
"""

import os
from pathlib import Path

from repro.harness.experiments import ExperimentResult

#: Workload scale used by every bench module.
SCALE = float(os.environ.get("REPRO_SCALE", "0.35"))

_RESULTS = {}


def record(result: ExperimentResult) -> None:
    """Merge one experiment's points into the session registry."""
    existing = _RESULTS.setdefault(
        result.experiment,
        ExperimentResult(experiment=result.experiment, paper=result.paper),
    )
    existing.points.extend(result.points)


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    from repro.harness.reporting import format_series, format_table

    out_dir = Path(__file__).parent / "results"
    out_dir.mkdir(exist_ok=True)
    sections = []
    for name, result in sorted(_RESULTS.items()):
        if name == "table2":
            text = format_table(
                result, ["arb_32k", "svc_4x8k"], lambda p: p.miss_ratio, "miss"
            )
            title = "Table 2 - miss ratios (ARB 32KB vs SVC 4x8KB)"
        elif name == "table3":
            text = format_table(
                result,
                ["svc_4x8k", "svc_4x16k"],
                lambda p: p.bus_utilization,
                "util",
            )
            title = "Table 3 - SVC snooping bus utilization"
        elif name in ("fig19", "fig20"):
            text = format_series(
                result,
                ["svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c"],
                lambda p: p.ipc,
                "IPC",
                highlight="svc_1c",
            )
            size = "32KB" if name == "fig19" else "64KB"
            title = f"Figure {19 if name == 'fig19' else 20} - SPEC95 IPCs ({size} total)"
        else:
            machines = sorted({p.machine for p in result.points})
            text = format_series(result, machines, lambda p: p.ipc, "IPC")
            text += "\n\n" + format_series(
                result, machines, lambda p: p.miss_ratio, "miss"
            )
            title = f"Ablation - {name}"
        section = f"== {title} (scale={SCALE}) ==\n{text}\n"
        sections.append(section)
        (out_dir / f"{name}.txt").write_text(section)
    print("\n\n" + "\n".join(sections))
