"""Ablation: versioning-block size (RL design, section 3.7).

Coarser versioning blocks save state bits but surface false sharing:
a store to one word of a block invalidates copies of (and may squash
loads to) unrelated words sharing the block. Finer blocks approach the
paper's byte-level disambiguation.
"""

import pytest

from conftest import SCALE, record
from repro.harness.experiments import run_ablation_linesize

BENCHES = ("compress", "ijpeg")
BLOCKS = (4, 8, 16)


@pytest.mark.parametrize("bench", BENCHES)
def test_versioning_block_size(benchmark, bench):
    result = benchmark.pedantic(
        run_ablation_linesize,
        kwargs={"benchmarks": (bench,), "block_sizes": BLOCKS, "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    squashes = {}
    for vbs in BLOCKS:
        point = result.point(bench, f"svc_vb{vbs}")
        squashes[vbs] = point.violation_squashes
        benchmark.extra_info[f"vb{vbs}_ipc"] = round(point.ipc, 3)
        benchmark.extra_info[f"vb{vbs}_squashes"] = point.violation_squashes
    # Coarser versioning blocks can only add (false-sharing) squashes.
    assert squashes[16] >= squashes[4] or squashes[16] == 0
