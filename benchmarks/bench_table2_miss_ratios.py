"""Table 2: miss ratios for ARB (32KB) and SVC (4x8KB) on SPEC95.

Paper row shape: one miss ratio per (benchmark, machine). The paper
counts an access as a miss only when the *next level of memory* supplies
the data — cache-to-cache transfers are not misses — and this harness
uses the same definition.
"""

import pytest

from conftest import SCALE, record
from repro.harness.experiments import run_table2
from repro.workloads.spec95 import BENCHMARKS


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_table2_point(benchmark, bench):
    result = benchmark.pedantic(
        run_table2, kwargs={"benchmarks": (bench,), "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    arb = result.point(bench, "arb_32k")
    svc = result.point(bench, "svc_4x8k")
    benchmark.extra_info["arb_miss"] = round(arb.miss_ratio, 4)
    benchmark.extra_info["svc_miss"] = round(svc.miss_ratio, 4)
    # Shape check from the paper: distributing the storage gives the SVC
    # a higher miss ratio than the shared ARB organization.
    assert svc.miss_ratio > 0
    assert arb.miss_ratio > 0
