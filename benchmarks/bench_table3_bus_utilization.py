"""Table 3: SVC snooping-bus utilization at 4x8KB and 4x16KB.

The paper reports utilizations between 0.2 and 0.75, with mgrid highest
(misses to the next level of memory) and the 4x16KB configuration no
busier than 4x8KB.
"""

import pytest

from conftest import SCALE, record
from repro.harness.experiments import run_table3
from repro.workloads.spec95 import BENCHMARKS


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_table3_point(benchmark, bench):
    result = benchmark.pedantic(
        run_table3, kwargs={"benchmarks": (bench,), "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    small = result.point(bench, "svc_4x8k")
    large = result.point(bench, "svc_4x16k")
    benchmark.extra_info["util_4x8k"] = round(small.bus_utilization, 4)
    benchmark.extra_info["util_4x16k"] = round(large.bus_utilization, 4)
    assert 0.0 < small.bus_utilization <= 1.0
    assert 0.0 < large.bus_utilization <= 1.0
