"""Ablation: invalidate vs update vs hybrid coherence (section 3.8).

The paper motivates the hybrid: write-update shortens the inter-task
communication latency through memory; write-invalidate spends less bus
bandwidth. The hybrid selects per request (here: update copies whose
task has demonstrated interest, invalidate the rest).
"""

import pytest

from conftest import SCALE, record
from repro.common.config import UpdatePolicy
from repro.harness.experiments import run_ablation_update_policy

BENCHES = ("compress", "gcc", "mgrid")


@pytest.mark.parametrize("bench", BENCHES)
def test_update_policy(benchmark, bench):
    result = benchmark.pedantic(
        run_ablation_update_policy,
        kwargs={"benchmarks": (bench,), "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    for policy in UpdatePolicy.ALL:
        point = result.point(bench, f"svc_{policy}")
        benchmark.extra_info[policy] = round(point.ipc, 3)
        assert point.ipc > 0
