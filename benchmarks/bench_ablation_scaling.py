"""Ablation (extension): PU-count scaling of SVC vs ARB organizations.

Not a paper artifact — the natural follow-on question the paper's
conclusion raises ("feasible memory system for proposed next generation
multiprocessors"): what happens to each organization as PUs multiply?
The SVC scales task-level parallelism at the cost of bus pressure; the
2-cycle ARB scales stages but every access still crosses the
interconnect.
"""

import pytest

from conftest import SCALE, record
from repro.harness.experiments import run_ablation_scaling

BENCHES = ("compress", "mgrid")
PUS = (2, 4, 8)


@pytest.mark.parametrize("bench", BENCHES)
def test_pu_scaling(benchmark, bench):
    result = benchmark.pedantic(
        run_ablation_scaling,
        kwargs={"benchmarks": (bench,), "pu_counts": PUS, "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    for n_pus in PUS:
        svc = result.point(bench, f"svc_{n_pus}pu")
        arb = result.point(bench, f"arb2c_{n_pus}pu")
        benchmark.extra_info[f"svc_{n_pus}pu"] = round(svc.ipc, 3)
        benchmark.extra_info[f"arb2c_{n_pus}pu"] = round(arb.ipc, 3)
        assert svc.ipc > 0 and arb.ipc > 0
    # More PUs must not make the contention-free ARB slower.
    assert (
        result.point(bench, "arb2c_8pu").ipc
        >= result.point(bench, "arb2c_2pu").ipc * 0.95
    )
