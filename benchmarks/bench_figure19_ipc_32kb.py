"""Figure 19: SPEC95 IPCs for ARB (1-4 cycle hit) and SVC - 32KB total.

Paper series shape: ARB IPC falls as its hit latency rises from 1 to 4
cycles; the 1-cycle-hit SVC overtakes the contention-free ARB once the
ARB pays 3 or more cycles per hit.
"""

import pytest

from conftest import SCALE, record
from repro.harness.experiments import run_figure19
from repro.workloads.spec95 import BENCHMARKS


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_figure19_series(benchmark, bench):
    result = benchmark.pedantic(
        run_figure19, kwargs={"benchmarks": (bench,), "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    ipcs = {
        machine: result.point(bench, machine).ipc
        for machine in ("svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c")
    }
    benchmark.extra_info.update({k: round(v, 3) for k, v in ipcs.items()})
    # ARB IPC must be monotonically non-increasing in hit latency.
    assert ipcs["arb_1c"] >= ipcs["arb_2c"] >= ipcs["arb_3c"] >= ipcs["arb_4c"]
    # The private-cache SVC must beat the 4-cycle-hit shared ARB.
    assert ipcs["svc_1c"] > ipcs["arb_4c"]
