"""Ablation: the section-3 design progression (BASE -> EC -> ECS -> HR -> FINAL).

What each step buys, on the workloads that stress it:

* BASE pays eager commit writebacks (bursty bus traffic) and cold caches
  after every commit and squash;
* EC adds the C/T bits: one-cycle commits, retained read-only data;
* ECS adds the A bit: architectural data survives squashes (visible on
  gcc, the workload with the highest task-misprediction rate);
* HR adds snarfing against reference spreading;
* FINAL adds realistic 16-byte lines with per-block L/S, the hybrid
  update-invalidate protocol and passive-dirty retention.
"""

import pytest

from conftest import SCALE, record
from repro.harness.experiments import run_ablation_designs

BENCHES = ("compress", "gcc", "mgrid")
DESIGNS = ("base", "ec", "ecs", "hr", "final")


@pytest.mark.parametrize("bench", BENCHES)
def test_design_progression(benchmark, bench):
    result = benchmark.pedantic(
        run_ablation_designs,
        kwargs={"benchmarks": (bench,), "designs": DESIGNS, "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    ipc = {d: result.point(bench, f"svc_{d}").ipc for d in DESIGNS}
    benchmark.extra_info.update({d: round(v, 3) for d, v in ipc.items()})
    # The headline of section 3: lazy commits (EC) must clearly beat the
    # base design's writeback bursts, and the final design must be the
    # best (or tied-best) of the progression.
    assert ipc["ec"] > ipc["base"]
    assert ipc["final"] >= max(ipc["base"], ipc["ec"]) * 0.95
