"""Figure 20: SPEC95 IPCs for ARB (1-4 cycle hit) and SVC - 64KB total.

Same series as Figure 19 with doubled storage. The paper's headline:
for 64KB total, the SVC outperforms the 2-cycle-hit ARB by as much as
8% (mgrid).
"""

import pytest

from conftest import SCALE, record
from repro.harness.experiments import run_figure20
from repro.workloads.spec95 import BENCHMARKS


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_figure20_series(benchmark, bench):
    result = benchmark.pedantic(
        run_figure20, kwargs={"benchmarks": (bench,), "scale": SCALE},
        rounds=1, iterations=1,
    )
    record(result)
    ipcs = {
        machine: result.point(bench, machine).ipc
        for machine in ("svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c")
    }
    benchmark.extra_info.update({k: round(v, 3) for k, v in ipcs.items()})
    assert ipcs["arb_1c"] >= ipcs["arb_2c"] >= ipcs["arb_3c"] >= ipcs["arb_4c"]
    assert ipcs["svc_1c"] > ipcs["arb_4c"]
