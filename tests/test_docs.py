"""The docs stay wired to reality: links resolve, quoted commands parse.

tools/check_docs.py is CI's docs gate; these tests pin its extraction
rules (fences vs. inline code, continuations, placeholders, prose
mentions) and run the real gate over the repository so a doc rot
regression fails the suite, not just the docs CI job.
"""

import importlib.util
import os
import sys

import pytest

TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools")


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", os.path.join(TOOLS, "check_docs.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExtraction:
    def test_fence_command_with_continuation(self, check_docs):
        text = (
            "```\n"
            "python -m repro fig19 --workers 4 \\\n"
            "    --retries 2\n"
            "```\n"
        )
        commands = [c for _, c in check_docs.extract_commands(text)]
        assert commands == ["python -m repro fig19 --workers 4 --retries 2"]

    def test_fence_mention_in_diagram_is_not_a_command(self, check_docs):
        text = "```\nrepro.cli   python -m repro — the experiment CLI\n```\n"
        assert list(check_docs.extract_commands(text)) == []

    def test_inline_code_spanning_lines(self, check_docs):
        text = "see `python -m repro modelcheck\n--pus 2` for details"
        commands = [c for _, c in check_docs.extract_commands(text)]
        assert commands == ["python -m repro modelcheck --pus 2"]

    def test_inline_scan_does_not_cross_fences(self, check_docs):
        text = "```\noutput text\n```\nprose\n```\nmore output\n```\n"
        assert list(check_docs.extract_commands(text)) == []

    def test_module_paths_are_not_matched(self, check_docs):
        text = "`python -m repro.telemetry.exporters trace.json`"
        assert list(check_docs.extract_commands(text)) == []


class TestValidation:
    def test_valid_commands(self, check_docs):
        for command in (
            "python -m repro fig19 --workers 4 --chaos 7",
            "python -m repro replay <capture.json> --shrink",
            "python -m repro modelcheck --pus 2 --ops 3 --lines 2",
            "python -m repro trace fig19 --scale 0.02",
            "python -m repro",  # bare module reference in prose
        ):
            assert check_docs.check_command(command) is None, command

    def test_unknown_flag_and_experiment_fail(self, check_docs):
        assert check_docs.check_command("python -m repro fig19 --bogus")
        assert check_docs.check_command("python -m repro notanexperiment")
        assert check_docs.check_command("python -m repro modelcheck --bogus")

    def test_broken_link_detected(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("[dangling](missing.md) [ok](page.md)")
        findings = list(check_docs.check_links(str(page), page.read_text()))
        assert len(findings) == 1
        assert "missing.md" in findings[0]


class TestLiveRepo:
    def test_repository_docs_are_clean(self, check_docs, capsys):
        assert check_docs.main() == 0
        assert "0 findings" in capsys.readouterr().out
