"""StatsRegistry counters and ratio helpers."""

from repro.common.stats import StatsRegistry


def test_counters_default_zero():
    stats = StatsRegistry()
    assert stats.get("anything") == 0


def test_add_and_get():
    stats = StatsRegistry()
    stats.add("loads")
    stats.add("loads", 4)
    assert stats.get("loads") == 5


def test_set_overwrites():
    stats = StatsRegistry()
    stats.add("x", 10)
    stats.set("x", 3)
    assert stats.get("x") == 3


def test_ratio():
    stats = StatsRegistry()
    stats.add("misses", 1)
    stats.add("accesses", 4)
    assert stats.ratio("misses", "accesses") == 0.25


def test_ratio_zero_denominator():
    assert StatsRegistry().ratio("a", "b") == 0.0


def test_snapshot_is_a_copy():
    stats = StatsRegistry()
    stats.add("a")
    snap = stats.snapshot()
    snap["a"] = 99
    assert stats.get("a") == 1


def test_merge_with_prefix():
    a, b = StatsRegistry(), StatsRegistry()
    b.add("hits", 7)
    a.merge(b, prefix="l1_")
    assert a.get("l1_hits") == 7


def test_reset():
    stats = StatsRegistry()
    stats.add("a")
    stats.reset()
    assert stats.get("a") == 0
    assert list(stats.names()) == []
