"""Hypothesis properties of the substrate data structures."""

from hypothesis import given, strategies as st

from repro.common.addresses import AddressMap
from repro.mem.main_memory import MainMemory
from repro.mem.storage import SetAssociativeArray
from repro.common.config import CacheGeometry

POWERS = [4, 8, 16, 32]


class TestAddressMapProperties:
    @given(
        line_size=st.sampled_from(POWERS),
        addr=st.integers(0, 2**24),
    )
    def test_line_address_idempotent_and_aligned(self, line_size, addr):
        amap = AddressMap(line_size=line_size, versioning_block_size=4)
        line = amap.line_address(addr)
        assert line % line_size == 0
        assert amap.line_address(line) == line
        assert line <= addr < line + line_size

    @given(addr=st.integers(0, 2**24))
    def test_offset_plus_line_reconstructs(self, addr):
        amap = AddressMap()
        assert amap.line_address(addr) + amap.line_offset(addr) == addr

    @given(
        addr=st.integers(0, 2**20),
        size=st.sampled_from([1, 2, 4]),
    )
    def test_block_mask_covers_every_byte(self, addr, size):
        amap = AddressMap()
        addr -= addr % size  # aligned accesses
        mask = amap.block_mask(addr, size)
        for byte in range(size):
            assert mask & (1 << amap.block_index(addr + byte))

    @given(addr=st.integers(0, 2**20), size=st.sampled_from([1, 2, 4]))
    def test_full_cover_is_subset_of_block_mask(self, addr, size):
        amap = AddressMap()
        addr -= addr % size
        full = amap.full_cover_mask(addr, size)
        mask = amap.block_mask(addr, size)
        assert full & ~mask == 0


class TestMainMemoryProperties:
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 255), st.sampled_from([1, 2, 4]),
                      st.integers(0, 2**32 - 1)),
            max_size=30,
        )
    )
    def test_matches_flat_dict(self, writes):
        memory = MainMemory()
        reference = {}
        for slot, size, value in writes:
            addr = 0x1000 + slot * 4
            memory.write_int(addr, size, value)
            for i, byte in enumerate(
                (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            ):
                reference[addr + i] = byte
        for addr, byte in reference.items():
            assert memory.read_byte(addr) == byte
        assert memory.image() == {a: b for a, b in reference.items() if b}


class TestLRUProperties:
    @given(
        accesses=st.lists(st.integers(0, 5), min_size=1, max_size=40),
    )
    def test_occupancy_never_exceeds_ways(self, accesses):
        geometry = CacheGeometry(size_bytes=64, associativity=2, line_size=16)
        array = SetAssociativeArray(geometry)
        for slot in accesses:
            # All addresses land in the same set (stride = n_sets*line).
            addr = slot * geometry.n_sets * geometry.line_size
            if addr in array:
                array.lookup(addr)
                continue
            if array.set_is_full(addr):
                victim_addr, _ = array.choose_victim(addr)
                array.remove(victim_addr)
            array.insert(addr, slot)
        assert array.resident_count() <= geometry.associativity

    @given(accesses=st.lists(st.integers(0, 4), min_size=3, max_size=40))
    def test_most_recent_access_never_evicted(self, accesses):
        geometry = CacheGeometry(size_bytes=64, associativity=2, line_size=16)
        array = SetAssociativeArray(geometry)
        last = None
        for slot in accesses:
            addr = slot * geometry.n_sets * geometry.line_size
            if addr in array:
                array.lookup(addr)
            else:
                if array.set_is_full(addr):
                    victim_addr, _ = array.choose_victim(addr)
                    assert victim_addr != last  # LRU: never the MRU line
                    array.remove(victim_addr)
                array.insert(addr, slot)
            last = addr
