"""AddressMap: line/block math used by every cache in the repository."""

import pytest

from repro.common.addresses import AddressMap
from repro.common.errors import ConfigError


class TestConstruction:
    def test_defaults(self):
        amap = AddressMap()
        assert amap.line_size == 16
        assert amap.versioning_block_size == 4
        assert amap.blocks_per_line == 4
        assert amap.full_mask == 0b1111

    def test_single_block_line(self):
        amap = AddressMap(line_size=4, versioning_block_size=4)
        assert amap.blocks_per_line == 1
        assert amap.full_mask == 0b1

    def test_byte_blocks(self):
        amap = AddressMap(line_size=16, versioning_block_size=1)
        assert amap.blocks_per_line == 16

    @pytest.mark.parametrize("line_size", [0, 3, 12, -16])
    def test_rejects_non_power_of_two_line(self, line_size):
        with pytest.raises(ConfigError):
            AddressMap(line_size=line_size)

    def test_rejects_block_larger_than_line(self):
        with pytest.raises(ConfigError):
            AddressMap(line_size=4, versioning_block_size=8)


class TestLineMath:
    def test_line_address(self):
        amap = AddressMap()
        assert amap.line_address(0x1234) == 0x1230
        assert amap.line_address(0x1230) == 0x1230
        assert amap.line_address(0x123F) == 0x1230

    def test_line_offset(self):
        amap = AddressMap()
        assert amap.line_offset(0x1234) == 4
        assert amap.line_offset(0x1230) == 0

    def test_block_index(self):
        amap = AddressMap()
        assert amap.block_index(0x1230) == 0
        assert amap.block_index(0x1234) == 1
        assert amap.block_index(0x123C) == 3


class TestMasks:
    def test_word_access_mask(self):
        amap = AddressMap()
        assert amap.block_mask(0x1234, 4) == 0b0010

    def test_multi_block_access(self):
        amap = AddressMap()
        assert amap.block_mask(0x1234, 8) == 0b0110

    def test_byte_access(self):
        amap = AddressMap()
        assert amap.block_mask(0x1235, 1) == 0b0010

    def test_straddling_access_rejected(self):
        amap = AddressMap()
        with pytest.raises(ConfigError):
            amap.block_mask(0x123C, 8)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            AddressMap().block_mask(0x1230, 0)

    def test_full_cover_word(self):
        amap = AddressMap()
        assert amap.full_cover_mask(0x1234, 4) == 0b0010

    def test_full_cover_partial_is_empty(self):
        amap = AddressMap()
        assert amap.full_cover_mask(0x1235, 1) == 0
        assert amap.full_cover_mask(0x1234, 2) == 0

    def test_full_cover_two_blocks(self):
        amap = AddressMap()
        assert amap.full_cover_mask(0x1230, 8) == 0b0011

    def test_blocks_in_mask(self):
        amap = AddressMap()
        assert amap.blocks_in_mask(0b1010) == [1, 3]
        assert amap.blocks_in_mask(0) == []

    def test_byte_range_of_block(self):
        amap = AddressMap()
        assert list(amap.byte_range_of_block(0x1230, 1)) == [
            0x1234, 0x1235, 0x1236, 0x1237
        ]
