"""EventLog: the protocol trace consumed by figure tests and examples."""

from repro.common.events import EventLog


def test_emit_and_query():
    log = EventLog()
    log.emit("squash", source="svc", cache=2, rank=5)
    log.emit("commit", source="svc", cache=0, rank=0)
    assert len(log) == 2
    assert len(log.of_kind("squash")) == 1
    assert log.last().kind == "commit"
    assert log.last("squash").detail["rank"] == 5


def test_last_missing_kind_is_none():
    assert EventLog().last("nothing") is None


def test_describe_renders_all_events():
    log = EventLog()
    log.emit("bus", source="bus", request="BusRead", line_addr=0x100)
    text = log.describe()
    assert "BusRead" in text
    assert "[bus]" in text


def test_clear():
    log = EventLog()
    log.emit("x", source="y")
    log.clear()
    assert len(log) == 0


def test_clear_invalidates_per_kind_index():
    """clear() must drop the by-kind index with the event list — a stale
    index would keep serving pre-clear events from of_kind()/last()."""
    log = EventLog()
    log.emit("squash", source="svc", rank=1)
    log.emit("commit", source="svc", rank=0)
    log.clear()
    assert log.of_kind("squash") == []
    assert log.last("squash") is None
    assert log.last("commit") is None
    assert log.last() is None


def test_emit_after_clear_reflects_only_new_events():
    log = EventLog()
    log.emit("squash", source="svc", rank=1)
    log.clear()
    log.emit("squash", source="svc", rank=7)
    assert len(log) == 1
    assert [e.detail["rank"] for e in log.of_kind("squash")] == [7]
    assert log.last("squash").detail["rank"] == 7


def test_clear_keeps_observers_attached():
    log = EventLog()
    seen = []
    log.attach(seen.append)
    log.emit("a", source="s")
    log.clear()
    log.emit("b", source="s")
    assert [e.kind for e in seen] == ["a", "b"]
