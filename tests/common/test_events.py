"""EventLog: the protocol trace consumed by figure tests and examples."""

from repro.common.events import EventLog


def test_emit_and_query():
    log = EventLog()
    log.emit("squash", source="svc", cache=2, rank=5)
    log.emit("commit", source="svc", cache=0, rank=0)
    assert len(log) == 2
    assert len(log.of_kind("squash")) == 1
    assert log.last().kind == "commit"
    assert log.last("squash").detail["rank"] == 5


def test_last_missing_kind_is_none():
    assert EventLog().last("nothing") is None


def test_describe_renders_all_events():
    log = EventLog()
    log.emit("bus", source="bus", request="BusRead", line_addr=0x100)
    text = log.describe()
    assert "BusRead" in text
    assert "[bus]" in text


def test_clear():
    log = EventLog()
    log.emit("x", source="y")
    log.clear()
    assert len(log) == 0
