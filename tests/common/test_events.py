"""EventLog: the protocol trace consumed by figure tests and examples."""

from repro.common.events import EventLog, ProtocolEvent


def test_emit_and_query():
    log = EventLog()
    log.emit("squash", source="svc", cache=2, rank=5)
    log.emit("commit", source="svc", cache=0, rank=0)
    assert len(log) == 2
    assert len(log.of_kind("squash")) == 1
    assert log.last().kind == "commit"
    assert log.last("squash").detail["rank"] == 5


def test_last_missing_kind_is_none():
    assert EventLog().last("nothing") is None


def test_describe_renders_all_events():
    log = EventLog()
    log.emit("bus", source="bus", request="BusRead", line_addr=0x100)
    text = log.describe()
    assert "BusRead" in text
    assert "[bus]" in text


def test_clear():
    log = EventLog()
    log.emit("x", source="y")
    log.clear()
    assert len(log) == 0


def test_clear_invalidates_per_kind_index():
    """clear() must drop the by-kind index with the event list — a stale
    index would keep serving pre-clear events from of_kind()/last()."""
    log = EventLog()
    log.emit("squash", source="svc", rank=1)
    log.emit("commit", source="svc", rank=0)
    log.clear()
    assert log.of_kind("squash") == []
    assert log.last("squash") is None
    assert log.last("commit") is None
    assert log.last() is None


def test_emit_after_clear_reflects_only_new_events():
    log = EventLog()
    log.emit("squash", source="svc", rank=1)
    log.clear()
    log.emit("squash", source="svc", rank=7)
    assert len(log) == 1
    assert [e.detail["rank"] for e in log.of_kind("squash")] == [7]
    assert log.last("squash").detail["rank"] == 7


def test_clear_keeps_observers_attached():
    log = EventLog()
    seen = []
    log.attach(seen.append)
    log.emit("a", source="s")
    log.clear()
    log.emit("b", source="s")
    assert [e.kind for e in seen] == ["a", "b"]


def test_extend_appends_batch_in_order():
    log = EventLog()
    log.emit("commit", source="svc", rank=0)
    log.extend(
        ProtocolEvent(kind="squash", source="svc", detail={"rank": r})
        for r in (3, 2, 1)
    )
    assert [e.kind for e in log] == ["commit", "squash", "squash", "squash"]
    assert [e.detail["rank"] for e in log.of_kind("squash")] == [3, 2, 1]
    assert log.last("squash").detail["rank"] == 1
    assert log.last().detail["rank"] == 1


def test_extend_notifies_observers_per_event_in_order():
    log = EventLog()
    seen = []
    log.attach(seen.append)
    log.extend(
        [
            ProtocolEvent(kind="a", source="s", detail={}),
            ProtocolEvent(kind="b", source="s", detail={}),
        ]
    )
    assert [e.kind for e in seen] == ["a", "b"]


def test_lazy_index_catches_up_across_interleaved_queries():
    """Per-kind index updates are deferred to query time; interleaving
    emits, batched extends, and queries must never lose or double-count
    events."""
    log = EventLog()
    log.emit("squash", source="svc", rank=1)
    assert len(log.of_kind("squash")) == 1  # index built at watermark 1
    log.emit("squash", source="svc", rank=2)
    log.extend([ProtocolEvent(kind="squash", source="svc", detail={"rank": 3})])
    assert [e.detail["rank"] for e in log.of_kind("squash")] == [1, 2, 3]
    assert [e.detail["rank"] for e in log.of_kind("squash")] == [1, 2, 3]


def test_clear_resets_lazy_index_watermark():
    log = EventLog()
    log.emit("squash", source="svc", rank=1)
    assert log.last("squash") is not None  # force index build
    log.clear()
    log.emit("squash", source="svc", rank=9)
    assert [e.detail["rank"] for e in log.of_kind("squash")] == [9]
