"""Configuration dataclasses: validation and the paper's presets."""

import pytest

from repro.common.config import (
    ARBConfig,
    CacheGeometry,
    ProcessorConfig,
    SVCConfig,
    SVCFeatures,
    UpdatePolicy,
)
from repro.common.errors import ConfigError


class TestCacheGeometry:
    def test_paper_8kb(self):
        geometry = CacheGeometry(size_bytes=8 * 1024, associativity=4, line_size=16)
        assert geometry.n_sets == 128

    def test_direct_mapped_32kb(self):
        geometry = CacheGeometry(size_bytes=32 * 1024, associativity=1, line_size=16)
        assert geometry.n_sets == 2048

    def test_rejects_fractional_sets(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1000, associativity=3, line_size=16)

    def test_set_index_wraps(self):
        geometry = CacheGeometry(size_bytes=256, associativity=2, line_size=16)
        assert geometry.n_sets == 8
        assert geometry.set_index(0x0) == geometry.set_index(8 * 16)


class TestSVCFeatures:
    def test_design_progression_flags(self):
        assert not SVCFeatures.base().lazy_commit
        assert SVCFeatures.ec().lazy_commit
        assert SVCFeatures.ec().stale_bit
        assert not SVCFeatures.ec().architectural_bit
        assert SVCFeatures.ecs().architectural_bit
        assert SVCFeatures.hr().snarfing
        assert SVCFeatures.final().retain_passive_dirty

    def test_final_default_policy_is_hybrid(self):
        assert SVCFeatures.final().update_policy == UpdatePolicy.HYBRID

    def test_a_bit_requires_c_bit(self):
        with pytest.raises(ConfigError):
            SVCFeatures(architectural_bit=True)

    def test_stale_bit_requires_lazy_commit(self):
        with pytest.raises(ConfigError):
            SVCFeatures(stale_bit=True)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            SVCFeatures(update_policy="write-through")


class TestSVCConfig:
    def test_paper_presets(self):
        small = SVCConfig.paper_32kb()
        large = SVCConfig.paper_64kb()
        assert small.n_caches == 4
        assert small.geometry.size_bytes == 8 * 1024
        assert large.geometry.size_bytes == 16 * 1024
        assert small.bus.transaction_cycles == 3
        assert small.hit_cycles == 1
        assert small.miss_penalty_cycles == 10

    def test_needs_two_caches(self):
        with pytest.raises(ConfigError):
            SVCConfig(n_caches=1)


class TestARBConfig:
    def test_paper_preset(self):
        config = ARBConfig.paper_32kb(hit_cycles=3)
        assert config.n_rows == 256
        assert config.n_stages == 5
        assert config.hit_cycles == 3
        assert config.cache_geometry.associativity == 1

    def test_64kb_preset(self):
        config = ARBConfig.paper_64kb()
        assert config.cache_geometry.size_bytes == 64 * 1024


class TestProcessorConfig:
    def test_paper_defaults(self):
        config = ProcessorConfig()
        assert config.n_pus == 4
        assert config.issue_width == 2

    def test_rejects_zero_pus(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(n_pus=0)
