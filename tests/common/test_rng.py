"""Deterministic RNG streams."""

from repro.common.rng import make_rng


def test_same_seed_same_sequence():
    a = make_rng(42, "addresses")
    b = make_rng(42, "addresses")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent():
    a = make_rng(42, "addresses")
    b = make_rng(42, "branches")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = make_rng(1, "s")
    b = make_rng(2, "s")
    assert a.random() != b.random()
