"""Externally supplied programs ride the explorer unchanged.

The enumerator's symmetry canonicalization (line renaming, word
swapping) is sound only for *its own* programs; hand-built programs —
litmus shapes, trace fragments — must be explored exactly as given.
These tests pin that: ``run_modelcheck(programs=...)`` accepts foreign
task lists, never rewrites them, and the per-outcome witness schedules
replay to the outcomes they claim.
"""

import pytest

from repro.common.errors import ConfigError
from repro.hier.task import MemOp, TaskProgram
from repro.litmus.shapes import LITMUS_SHAPES, compile_shape
from repro.modelcheck.executor import ScheduleExecutor
from repro.modelcheck.explorer import explore_case
from repro.modelcheck.programs import (
    Bounds,
    bound_geometry,
    bounds_for_programs,
)
from repro.modelcheck.runner import run_modelcheck
from repro.replay import Case, build_system


def _snapshot(tasks):
    return [
        (task.name, task.mispredicted, list(task.ops)) for task in tasks
    ]


def test_bounds_for_programs_measures_the_programs():
    programs = [compile_shape(LITMUS_SHAPES["iriw"])]
    bounds = bounds_for_programs(programs, pus=4)
    assert bounds.pus == 4
    assert bounds.ops == 6  # 2 stores + 4 loads
    assert bounds.lines == 2  # x and y
    assert bounds.n_tasks == 4


def test_bounds_for_programs_covers_arbitrary_addresses():
    # Addresses far outside the enumerator's canonical locations: the
    # derived geometry must still be replacement-free (count, not value).
    program = (
        TaskProgram(ops=[MemOp.store(0x10_0000, 1, 4)]),
        TaskProgram(ops=[MemOp.load(0x20_0010, 4)]),
    )
    bounds = bounds_for_programs([program])
    assert bounds.lines == 2
    geometry = bound_geometry(bounds)
    assert geometry.associativity >= 2 * bounds.lines


def test_bounds_for_programs_rejects_degenerate_input():
    with pytest.raises(ConfigError, match="at least one program"):
        bounds_for_programs([])
    with pytest.raises(ConfigError, match="empty program"):
        bounds_for_programs([()])


def test_iriw_round_trips_the_explorer_unchanged():
    """The satellite's acceptance test: a hand-built IRIW program goes
    through the full runner without canonicalization — the task objects
    are untouched and the outcome uses the original addresses."""
    tasks = compile_shape(LITMUS_SHAPES["iriw"])
    before = _snapshot(tasks)
    bounds = bounds_for_programs([tasks], pus=4)
    report = run_modelcheck(
        bounds,
        designs=("final", "arb"),
        programs=[tasks],
    )
    assert report.ok, report.describe()
    assert report.programs == 1
    assert _snapshot(tasks) == before
    for design in ("final", "arb"):
        stats = report.per_design[design]
        assert stats.programs == 1
        assert stats.counterexamples == 0
        assert stats.truncated_programs == 0


def test_external_program_outcome_keeps_original_addresses():
    # x lives at line 0, y at line 1 (16-byte lines): the final image
    # must show the stores at *those* addresses, proving no renaming.
    tasks = compile_shape(LITMUS_SHAPES["sb"])
    bounds = bounds_for_programs([tasks])
    case = Case(
        design="final",
        tasks=tasks,
        geometry=bound_geometry(bounds),
        schedule="script",
        checker=True,
        check_invariants=True,
        n_caches=bounds.pus,
    )
    result = explore_case(case)
    assert result.ok
    ((_, image),) = result.outcomes
    assert dict(image)[0] == 1  # x = 1 at byte 0
    assert dict(image)[16] == 1  # y = 1 at byte 16


def test_witness_schedules_replay_to_their_outcomes():
    tasks = compile_shape(LITMUS_SHAPES["mp"])
    bounds = bounds_for_programs([tasks])
    case = Case(
        design="final",
        tasks=tasks,
        geometry=bound_geometry(bounds),
        schedule="script",
        checker=True,
        check_invariants=True,
        n_caches=bounds.pus,
    )
    result = explore_case(case)
    assert result.ok
    assert set(result.witnesses) == result.outcomes
    for outcome, script in result.witnesses.items():
        system = build_system(case)
        executor = ScheduleExecutor(system, case.tasks)
        for action in script:
            executor.apply(action)
        assert executor.terminal
        report = executor.finish()
        replayed = (
            tuple(tuple(values) for values in report.load_values),
            tuple(sorted(system.memory.image().items())),
        )
        assert replayed == outcome


def test_default_enumeration_still_used_without_programs():
    report = run_modelcheck(
        Bounds(pus=2, ops=1, lines=1, tasks=2), designs=("final",)
    )
    assert report.ok
    assert report.programs > 1  # the enumerator ran, not a single program
