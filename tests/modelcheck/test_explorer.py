"""Exploration smoke tests: clean protocols pass, mutations are caught."""

import dataclasses

import pytest

from repro.common.errors import SimulationError
from repro.faults import FaultPlan
from repro.hier.task import MemOp, TaskProgram
from repro.modelcheck.explorer import explore_case
from repro.modelcheck.programs import Bounds, bound_geometry
from repro.replay import Case, run_case


def _case(tasks, design="final", pus=2, **overrides):
    return Case(
        design=design,
        tasks=tuple(tasks),
        geometry=bound_geometry(Bounds(pus=pus)),
        schedule="script",
        checker=True,
        check_invariants=True,
        n_caches=pus,
        **overrides,
    )


RACY = (
    TaskProgram(ops=[MemOp.store(0, 42, 4)]),
    TaskProgram(ops=[MemOp.load(0, 4)]),
)


@pytest.mark.parametrize("design", ["base", "final", "arb"])
def test_clean_racy_program_explores_without_counterexamples(design):
    result = explore_case(_case(RACY, design=design))
    assert result.ok
    # Both orders (store-first, load-first) are covered, though pruning
    # may collapse converging prefixes before they terminate.
    assert result.schedules >= 1
    assert result.schedules + result.fp_pruned + result.sleep_pruned >= 2
    # Violation squashes make every interleaving converge on one outcome.
    assert len(result.outcomes) == 1
    ((loads, memory),) = result.outcomes
    assert loads == ((), (42,))


def test_independent_loads_get_pruned():
    tasks = (
        TaskProgram(ops=[MemOp.load(0, 4)]),
        TaskProgram(ops=[MemOp.load(16, 4)]),  # a different line
    )
    result = explore_case(_case(tasks))
    assert result.ok
    assert result.sleep_pruned + result.fp_pruned > 0


def test_node_budget_marks_truncation():
    result = explore_case(_case(RACY), max_nodes=2)
    assert result.truncated
    assert not result.ok


def test_mutation_produces_a_replayable_counterexample():
    case = _case(RACY, mutation="no_violation_squash")
    result = explore_case(case)
    assert len(result.counterexamples) == 1
    failing, failure = result.counterexamples[0]
    assert not failure.ok
    assert failing.script  # the schedule that exposed it
    # The captured case replays to a failure on its own.
    assert not run_case(failing).ok


def test_explorer_rejects_fault_plans():
    case = dataclasses.replace(
        _case(RACY), fault_plan=FaultPlan(squash_at=((0, 1),))
    )
    with pytest.raises(SimulationError):
        explore_case(case)
