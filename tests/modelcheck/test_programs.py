"""Unit tests for the exploration bound and program enumeration."""

import pytest

from repro.common.errors import ConfigError
from repro.hier.task import OpKind
from repro.modelcheck.programs import (
    Bounds,
    bound_geometry,
    count_programs,
    enumerate_programs,
    location_address,
    store_value,
)


def test_bounds_defaults_exercise_pu_reuse():
    bounds = Bounds()
    assert bounds.pus == 2
    # One more task than PUs, so some PU always runs two tasks.
    assert bounds.n_tasks == 3
    assert bounds.n_locations == bounds.lines * 2


def test_bounds_tasks_override():
    assert Bounds(tasks=2).n_tasks == 2


@pytest.mark.parametrize(
    "kwargs",
    [dict(pus=1), dict(ops=0), dict(lines=0), dict(tasks=0)],
)
def test_bounds_rejects_degenerate_values(kwargs):
    with pytest.raises(ConfigError):
        Bounds(**kwargs)


def test_location_addresses_are_word_slots_of_lines():
    # Two 4-byte word slots per 16-byte line.
    assert [location_address(i) for i in range(4)] == [0, 4, 16, 20]


@pytest.mark.parametrize("lines", [1, 2, 3])
def test_bound_geometry_is_replacement_free(lines):
    """Every distinct line of the bound fits one way of its set in every
    cache — the soundness precondition of the symmetry reductions."""
    bounds = Bounds(lines=lines)
    geometry = bound_geometry(bounds)
    # Worst case: all of the bound's lines land in a single set.
    assert geometry.associativity >= bounds.lines
    n_sets = geometry.size_bytes // (geometry.line_size * geometry.associativity)
    assert n_sets * geometry.associativity >= bounds.lines
    assert geometry.versioning_block_size == 4


def test_store_values_are_distinct_labels():
    values = {
        store_value(rank, position)
        for rank in range(4)
        for position in range(4)
    }
    assert len(values) == 16


def test_enumeration_count_is_stable():
    """Pinned size of the canonical space at the smallest useful bound;
    a change here means the enumeration (or a reduction) changed."""
    bounds = Bounds(pus=2, ops=2, lines=1)
    programs = list(enumerate_programs(bounds))
    assert len(programs) == 54
    assert count_programs(bounds) == 54


def test_single_op_programs_are_canonical_only():
    """With one op the only canonical location is line 0, word 0 — the
    line-renaming and word-swap orbits collapse everything else onto it."""
    bounds = Bounds(pus=2, ops=1, lines=2)
    programs = list(enumerate_programs(bounds))
    # 3 task slots x {load, store} at the single canonical location.
    assert len(programs) == 6
    for program in programs:
        ops = [op for task in program for op in task.ops]
        assert len(ops) == 1
        assert ops[0].addr == 0


def test_programs_respect_the_op_budget_and_task_count():
    bounds = Bounds(pus=2, ops=3, lines=1)
    for program in enumerate_programs(bounds):
        assert len(program) == bounds.n_tasks
        total = sum(len(task.memory_ops) for task in program)
        assert 1 <= total <= bounds.ops
        for task in program:
            for op in task.ops:
                assert op.kind in (OpKind.LOAD, OpKind.STORE)
                assert op.addr in {location_address(i) for i in range(2)}


def test_first_use_order_is_ascending():
    """Canonical representatives use new lines, and new words within a
    line, in ascending first-use order."""
    bounds = Bounds(pus=2, ops=3, lines=2)
    for program in enumerate_programs(bounds):
        flat = [op.addr for task in program for op in task.memory_ops]
        lines_seen = []
        words_seen = {}
        for addr in flat:
            line, word = addr // 16, (addr % 16) // 4
            if line not in lines_seen:
                assert line == len(lines_seen)
                lines_seen.append(line)
            seen = words_seen.setdefault(line, [])
            if word not in seen:
                assert word == len(seen)
                seen.append(word)
