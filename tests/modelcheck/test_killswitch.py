"""The kill switch: every tier's known-bad mutation must be caught.

An exhaustive checker that reports zero violations proves nothing unless
it demonstrably *would* report one. For each design tier we plant the
mutation that breaks that tier's signature machinery and assert the
model checker finds a counterexample within the mutation's own bound —
and that the saved capture replays to a failure from the JSON alone.
"""

import glob
import os

import pytest

from repro.modelcheck.mutations import MUTATIONS, TIER_KILL_SWITCH
from repro.modelcheck.runner import run_modelcheck
from repro.replay import FailureCapture, run_case
from repro.svc.designs import DESIGNS


def test_every_tier_has_a_kill_switch():
    assert set(TIER_KILL_SWITCH) == set(DESIGNS)
    for tier, name in TIER_KILL_SWITCH.items():
        assert tier in MUTATIONS[name].tiers


@pytest.mark.parametrize("tier", DESIGNS)
def test_kill_switch_finds_a_replayable_counterexample(tier, tmp_path):
    name = TIER_KILL_SWITCH[tier]
    spec = MUTATIONS[name]
    report = run_modelcheck(
        spec.bounds,
        designs=(tier,),
        mutation=name,
        captures_dir=str(tmp_path),
    )
    assert report.per_design[tier].counterexamples > 0, (
        f"mutation {name!r} went undetected on {tier} within {spec.bounds}"
    )
    captures = sorted(glob.glob(os.path.join(str(tmp_path), "*.json")))
    assert captures
    # The capture must reproduce the failure from the file alone: the
    # mutation name rides in the case and is re-applied at build time.
    capture = FailureCapture.load(captures[0])
    assert capture.case.mutation == name
    assert capture.case.script
    assert not run_case(capture.case).ok
