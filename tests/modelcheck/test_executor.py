"""Unit tests for the action-at-a-time schedule executor."""

import pytest

from repro.common.errors import SimulationError
from repro.hier.task import MemOp, TaskProgram
from repro.modelcheck.executor import ScheduleExecutor, run_script
from repro.modelcheck.programs import Bounds, bound_geometry
from repro.oracle.sequential import SequentialOracle, verify_run
from repro.replay import Case, build_system


def _case(tasks, design="final", pus=2):
    return Case(
        design=design,
        tasks=tuple(tasks),
        geometry=bound_geometry(Bounds(pus=pus)),
        schedule="script",
        checker=True,
        check_invariants=True,
        n_caches=pus,
    )


def _executor(tasks, design="final", pus=2):
    system = build_system(_case(tasks, design, pus))
    return system, ScheduleExecutor(system, tasks)


def _store(addr, value):
    return TaskProgram(ops=[MemOp.store(addr, value, 4)])


def _load(addr):
    return TaskProgram(ops=[MemOp.load(addr, 4)])


def test_initial_dispatch_fills_pus_in_rank_order():
    tasks = [_store(0, 1), _load(0), _load(4)]
    _, executor = _executor(tasks)
    # Two PUs, three tasks: ranks 0 and 1 active, rank 2 waiting.
    assert executor.enabled() == [("op", 0), ("op", 1)]


def test_strict_apply_rejects_disabled_actions():
    _, executor = _executor([_store(0, 1), _load(0)])
    with pytest.raises(SimulationError):
        executor.apply(("commit", 0))  # rank 0 has not finished its ops
    with pytest.raises(SimulationError):
        executor.apply(("op", 5))


def test_lenient_apply_skips_disabled_actions():
    _, executor = _executor([_store(0, 1), _load(0)])
    assert executor.apply(("commit", 0), lenient=True) is False
    assert executor.apply(("op", 0), lenient=True) is True


def test_commit_is_head_only_and_frees_the_pu():
    tasks = [_store(0, 7), _load(0), _load(4)]
    _, executor = _executor(tasks)
    executor.apply(("op", 1))  # rank 1 finishes first...
    assert ("commit", 1) not in executor.enabled()  # ...but is not head
    executor.apply(("op", 0))
    assert ("commit", 0) in executor.enabled()
    executor.apply(("commit", 0))
    # Rank 0's PU is recycled to the waiting rank 2.
    assert ("op", 2) in executor.enabled()


def test_violation_squash_resets_the_reader():
    tasks = [_store(0, 42), _load(0)]
    _, executor = _executor(tasks)
    executor.apply(("op", 1))  # premature load: use before definition
    assert executor.progress[1].op_index == 1
    executor.apply(("op", 0))  # the store detects the violation
    state = executor.progress[1]
    assert state.op_index == 0  # squashed back to the start
    assert state.executions == 2
    assert state.observed_loads == []


def test_terminal_run_matches_the_sequential_oracle():
    tasks = [_store(0, 42), _load(0)]
    system, executor = _executor(tasks)
    for action in [("op", 1), ("op", 0), ("commit", 0), ("op", 1), ("commit", 1)]:
        executor.apply(action)
    assert executor.terminal
    report = executor.finish()
    assert report.load_values == [[], [42]]
    assert report.violation_squashes == 1
    oracle = SequentialOracle().run(tasks)
    assert verify_run(report, oracle, system.memory) == []


def test_run_script_completes_partial_schedules():
    tasks = [_store(0, 42), _load(0)]
    system = build_system(_case(tasks))
    # Only the premature load is scripted; completion is oldest-first.
    report = run_script(system, tasks, [("op", 1)])
    assert report.load_values == [[], [42]]
    oracle = SequentialOracle().run(tasks)
    assert verify_run(report, oracle, system.memory) == []


def test_run_script_drives_the_arb_baseline_too():
    tasks = [_store(0, 9), _load(0)]
    system = build_system(_case(tasks, design="arb"))
    report = run_script(system, tasks, [("op", 0), ("op", 1)])
    assert report.load_values == [[], [9]]
