"""Paper Figure 4: the four snapshots of the SMP coherence example.

The 4-PU SMP with caches X, Y, Z, W (here 0, 1, 2, 3):

1. cache X holds address A dirty (it stored earlier);
2. PU Z loads A: BusRead, X flushes, both end Clean;
3. PU Y stores A: BusWrite invalidates the copies in X and Z, Y Dirty;
4. cache Y replaces the line: BusWback, only memory holds the data.
"""

from repro.bus.requests import BusRequestKind
from repro.coherence.protocol import CoherenceState as S
from repro.coherence.system import SMPSystem

A = 0x100
X, Y, Z, W = 0, 1, 2, 3


def test_figure4_timeline():
    smp = SMPSystem(n_caches=4)
    smp.bus.keep_history = True

    # Snapshot 1: X has a dirty copy (value from a prior store).
    smp.store(X, A, 0x99)
    assert smp.states_of(A) == [S.DIRTY, S.INVALID, S.INVALID, S.INVALID]

    # Snapshot 2: Z loads A; X flushes on the BusRead; both clean.
    value = smp.load(Z, A)
    assert value == 0x99
    assert smp.states_of(A) == [S.CLEAN, S.INVALID, S.CLEAN, S.INVALID]
    assert smp.bus.history[-1].kind == BusRequestKind.READ
    assert smp.bus.history[-1].cache_to_cache
    # The flush updates memory as well.
    assert smp.memory.read_int(A, 4) == 0x99

    # Snapshot 3: Y stores A; BusWrite invalidates X's and Z's copies.
    smp.store(Y, A, 0x42)
    assert smp.states_of(A) == [S.INVALID, S.DIRTY, S.INVALID, S.INVALID]
    assert smp.bus.history[-1].kind == BusRequestKind.WRITE

    # Snapshot 4: Y casts the line out; only memory has a valid copy.
    smp.replace(Y, A)
    assert smp.states_of(A) == [S.INVALID] * 4
    assert smp.bus.history[-1].kind == BusRequestKind.WBACK
    assert smp.memory.read_int(A, 4) == 0x42


def test_at_most_one_dirty_copy_ever():
    smp = SMPSystem(n_caches=4)
    smp.store(0, A, 1)
    smp.store(1, A, 2)
    smp.store(2, A, 3)
    states = smp.states_of(A)
    assert states.count(S.DIRTY) == 1
    assert smp.load(3, A) == 3
