"""MRSW protocol FSM (paper Figure 3): per-cache transitions."""

from repro.common.config import CacheGeometry
from repro.coherence.protocol import CoherenceState, SMPCache


def make_cache():
    return SMPCache(0, CacheGeometry(size_bytes=256, associativity=2, line_size=16))


def test_initially_invalid():
    cache = make_cache()
    assert cache.state_of(0x100) == CoherenceState.INVALID
    assert cache.probe_load(0x100) is None


def test_load_hits_clean_and_dirty():
    cache = make_cache()
    cache.fill(0x100, bytes(16), CoherenceState.CLEAN)
    assert cache.probe_load(0x100) is not None
    cache.fill(0x200, bytes(16), CoherenceState.DIRTY)
    assert cache.probe_load(0x200) is not None


def test_store_hits_only_dirty():
    cache = make_cache()
    cache.fill(0x100, bytes(16), CoherenceState.CLEAN)
    _line, hit = cache.probe_store(0x100)
    assert not hit
    cache.fill(0x200, bytes(16), CoherenceState.DIRTY)
    _line, hit = cache.probe_store(0x200)
    assert hit


def test_snoop_read_flushes_dirty_to_clean():
    cache = make_cache()
    cache.fill(0x100, bytes([7] * 16), CoherenceState.DIRTY)
    flushed = cache.snoop_read(0x100)
    assert flushed == bytes([7] * 16)
    assert cache.state_of(0x100) == CoherenceState.CLEAN


def test_snoop_read_ignores_clean():
    cache = make_cache()
    cache.fill(0x100, bytes(16), CoherenceState.CLEAN)
    assert cache.snoop_read(0x100) is None
    assert cache.state_of(0x100) == CoherenceState.CLEAN


def test_snoop_write_invalidates_and_flushes_dirty():
    cache = make_cache()
    cache.fill(0x100, bytes([9] * 16), CoherenceState.DIRTY)
    flushed = cache.snoop_write(0x100)
    assert flushed == bytes([9] * 16)
    assert cache.state_of(0x100) == CoherenceState.INVALID


def test_snoop_write_invalidates_clean_silently():
    cache = make_cache()
    cache.fill(0x100, bytes(16), CoherenceState.CLEAN)
    assert cache.snoop_write(0x100) is None
    assert cache.state_of(0x100) == CoherenceState.INVALID


def test_fill_evicts_lru():
    cache = make_cache()
    # 2-way: three lines in set 0 (set stride is 8 lines of 16B).
    cache.fill(0x000, bytes(16), CoherenceState.CLEAN)
    cache.fill(0x080, bytes(16), CoherenceState.DIRTY)
    victim = cache.fill(0x100, bytes(16), CoherenceState.CLEAN)
    assert victim is not None
    victim_addr, victim_line = victim
    assert victim_addr == 0x000
