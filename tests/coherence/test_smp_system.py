"""SMP system end-to-end: consistency against a flat reference memory."""

import random

from repro.coherence.system import SMPSystem


def test_read_your_own_write():
    smp = SMPSystem()
    smp.store(0, 0x100, 7)
    assert smp.load(0, 0x100) == 7


def test_write_propagates_to_all_readers():
    smp = SMPSystem()
    smp.store(2, 0x100, 13)
    assert all(smp.load(i, 0x100) == 13 for i in range(4))


def test_last_writer_wins():
    smp = SMPSystem()
    for i in range(4):
        smp.store(i, 0x100, i + 1)
    assert smp.load(0, 0x100) == 4


def test_sub_line_stores_merge():
    smp = SMPSystem()
    smp.store(0, 0x100, 0xAA, size=1)
    smp.store(1, 0x101, 0xBB, size=1)
    assert smp.load(2, 0x100, size=2) == 0xBBAA


def test_random_trace_matches_flat_memory():
    """Any interleaving of loads/stores across caches must behave like a
    single flat memory (MRSW: there is only ever one version)."""
    rng = random.Random(7)
    smp = SMPSystem()
    reference = {}
    addrs = [0x1000 + 4 * i for i in range(64)]  # spans sets, forces evictions
    for step in range(2000):
        cache_id = rng.randrange(4)
        addr = rng.choice(addrs)
        if rng.random() < 0.5:
            value = rng.randrange(1 << 32)
            smp.store(cache_id, addr, value)
            reference[addr] = value
        else:
            assert smp.load(cache_id, addr) == reference.get(addr, 0)
    smp.drain()
    for addr, value in reference.items():
        assert smp.memory.read_int(addr, 4) == value


def test_writeback_on_eviction_preserves_data():
    smp = SMPSystem()
    # More dirty lines in one set than ways: evictions must write back.
    n_sets = smp.geometry.n_sets
    addrs = [0x0 + i * n_sets * 16 for i in range(6)]
    for i, addr in enumerate(addrs):
        smp.store(0, addr, i + 100)
    for i, addr in enumerate(addrs):
        assert smp.load(1, addr) == i + 100
