"""Unit tests for the ASCII bar-chart renderer."""

import pytest

from repro.harness.charts import render_grouped_bars
from repro.harness.experiments import BenchmarkResult, ExperimentResult


def _point(benchmark, machine, ipc):
    return BenchmarkResult(
        benchmark=benchmark,
        machine=machine,
        ipc=ipc,
        miss_ratio=0.1,
        bus_utilization=0.2,
        cycles=1000,
        instructions=int(1000 * ipc),
        violation_squashes=0,
        misprediction_squashes=0,
    )


def _result(points):
    return ExperimentResult(experiment="test", points=points)


IPC = lambda point: point.ipc  # noqa: E731


def test_renders_header_with_scale():
    result = _result([_point("compress", "svc", 2.0)])
    text = render_grouped_bars(result, ["svc"], IPC, "IPC", width=40)
    assert text.splitlines()[0] == "IPC (bar = 0.050 per char)"


def test_peak_bar_spans_full_width_and_scales_others():
    result = _result(
        [_point("compress", "svc", 2.0), _point("compress", "arb", 1.0)]
    )
    text = render_grouped_bars(result, ["svc", "arb"], IPC, "IPC", width=40)
    lines = text.splitlines()
    assert lines[1] == "compress:"
    svc_line = next(l for l in lines if l.lstrip().startswith("svc"))
    arb_line = next(l for l in lines if l.lstrip().startswith("arb"))
    assert svc_line.count("#") == 40
    assert arb_line.count("#") == 20
    assert svc_line.endswith("2.00")
    assert arb_line.endswith("1.00")


def test_benchmarks_keep_point_order_without_duplicates():
    result = _result(
        [
            _point("gcc", "svc", 1.0),
            _point("compress", "svc", 1.0),
            _point("gcc", "arb", 1.0),  # duplicate benchmark, new machine
        ]
    )
    text = render_grouped_bars(result, ["svc", "arb"], IPC, "IPC")
    lines = text.splitlines()
    headers = [l for l in lines if l.endswith(":")]
    assert headers == ["gcc:", "compress:"]


def test_missing_machine_points_are_skipped():
    result = _result([_point("gcc", "svc", 1.0)])
    text = render_grouped_bars(result, ["svc", "arb"], IPC, "IPC")
    assert "arb" not in text.replace("bar =", "")


def test_labels_align_to_longest_machine_name():
    result = _result(
        [_point("gcc", "svc", 1.0), _point("gcc", "arb_32k", 2.0)]
    )
    text = render_grouped_bars(result, ["svc", "arb_32k"], IPC, "IPC")
    svc_line = next(l for l in text.splitlines() if l.lstrip().startswith("svc "))
    # "svc" padded to len("arb_32k") before the bar separator
    assert svc_line.startswith("  svc     |")


def test_tiny_values_still_draw_one_char():
    result = _result(
        [_point("gcc", "svc", 100.0), _point("gcc", "arb", 0.001)]
    )
    text = render_grouped_bars(result, ["svc", "arb"], IPC, "IPC", width=10)
    arb_line = next(l for l in text.splitlines() if l.lstrip().startswith("arb"))
    assert arb_line.count("#") == 1


@pytest.mark.parametrize("points", [[], [("gcc", "svc", 0.0)]])
def test_no_positive_data_renders_placeholder(points):
    result = _result([_point(*p) for p in points])
    text = render_grouped_bars(result, ["svc"], IPC, "IPC")
    assert text == "(no data)"
