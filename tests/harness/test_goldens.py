"""Golden-regeneration smoke test: the experiment pipeline, end to end.

``benchmarks/results/*.txt`` are full-scale renderings committed once;
nothing would notice if a timing-model or renderer change quietly made
them unreproducible. This test reruns the same pipeline — workload
generation, simulation, aggregation, rendering — at a tiny scale and
compares against pinned fixtures, so any drift fails here first, with a
pointer to regenerate both the fixtures and the published results.
"""

import difflib
import os

import pytest

from repro.cli import _render
from repro.harness.experiments import run_figure19, run_table2

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Must match tools/gen_goldens.py.
GOLDEN_SCALE = 0.02

EXPERIMENTS = {
    "table2_scale002.txt": run_table2,
    "fig19_scale002.txt": run_figure19,
}


@pytest.mark.parametrize("filename", sorted(EXPERIMENTS))
def test_small_scale_rendering_matches_golden(filename):
    with open(os.path.join(FIXTURES, filename)) as handle:
        expected = handle.read().rstrip("\n")
    actual = _render(EXPERIMENTS[filename](scale=GOLDEN_SCALE))
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"fixtures/{filename}",
                tofile="regenerated",
                lineterm="",
            )
        )
        pytest.fail(
            f"{filename}: small-scale rendering diverged from the golden.\n"
            f"{diff}\n"
            "If the change is intentional, regenerate with\n"
            "  PYTHONPATH=src python tools/gen_goldens.py\n"
            "and refresh benchmarks/results/ at full scale too."
        )


def test_goldens_cover_the_published_machines():
    """The fixtures exercise the same machine columns the published
    full-scale results use, so format drift cannot hide."""
    with open(os.path.join(FIXTURES, "table2_scale002.txt")) as handle:
        table2 = handle.read()
    assert "arb_32k" in table2 and "svc_4x8k" in table2
    with open(os.path.join(FIXTURES, "fig19_scale002.txt")) as handle:
        fig19 = handle.read()
    for machine in ("svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c"):
        assert machine in fig19
