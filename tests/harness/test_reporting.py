"""Report formatting: tables, series, ASCII charts."""

from repro.harness.charts import render_grouped_bars
from repro.harness.experiments import BenchmarkResult, ExperimentResult
from repro.harness.reporting import format_series, format_table


def make_result():
    result = ExperimentResult(
        experiment="demo",
        paper={"gcc": {"m1": 0.5}},
    )
    for benchmark in ("gcc", "perl"):
        for machine, ipc in (("m1", 2.0), ("m2", 1.0)):
            result.points.append(BenchmarkResult(
                benchmark=benchmark, machine=machine, ipc=ipc,
                miss_ratio=0.1, bus_utilization=0.3, cycles=100,
                instructions=200, violation_squashes=0,
                misprediction_squashes=0,
            ))
    return result


def test_format_table_includes_paper_columns():
    text = format_table(make_result(), ["m1", "m2"], lambda p: p.miss_ratio, "miss")
    assert "m1 (paper)" in text
    assert "0.500" in text       # paper value for gcc/m1
    assert text.count("0.100") >= 2


def test_format_table_dash_for_missing_paper_value():
    text = format_table(make_result(), ["m1", "m2"], lambda p: p.miss_ratio, "miss")
    lines = [l for l in text.splitlines() if l.startswith("perl")]
    assert "-" in lines[0]


def test_format_series_highlight_marks_beats():
    text = format_series(
        make_result(), ["m1", "m2"], lambda p: p.ipc, "IPC", highlight="m1"
    )
    assert "m1 beats" in text
    gcc_row = next(l for l in text.splitlines() if l.startswith("gcc"))
    assert "m2" in gcc_row  # m1 (2.0) beats m2 (1.0)


def test_format_series_without_highlight():
    text = format_series(make_result(), ["m1", "m2"], lambda p: p.ipc, "IPC")
    assert "beats" not in text


def test_render_grouped_bars_scales_to_peak():
    chart = render_grouped_bars(
        make_result(), ["m1", "m2"], lambda p: p.ipc, "IPC", width=10
    )
    lines = chart.splitlines()
    m1_bar = next(l for l in lines if l.strip().startswith("m1"))
    m2_bar = next(l for l in lines if l.strip().startswith("m2"))
    assert m1_bar.count("#") == 10       # the peak spans the full width
    assert m2_bar.count("#") == 5        # half the peak


def test_render_grouped_bars_empty():
    empty = ExperimentResult(experiment="none")
    assert render_grouped_bars(empty, ["m1"], lambda p: p.ipc, "IPC") == "(no data)"
