"""Process-parallel fan-out must reproduce the serial loop exactly."""

import os

import pytest

from repro.common.config import ARBConfig, SVCConfig
from repro.common.errors import ConfigError
from repro.harness.experiments import run_figure19, run_table2
from repro.harness.parallel import (
    PointSpec,
    execute_point,
    resolve_workers,
    run_points,
)
from repro.svc.designs import final_design

SCALE = 0.01  # tiny: these tests check plumbing, not statistics


def as_dicts(result):
    return [vars(point) for point in result.points]


def test_parallel_experiment_matches_serial():
    serial = run_figure19(benchmarks=("compress",), scale=SCALE, workers=1)
    parallel = run_figure19(benchmarks=("compress",), scale=SCALE, workers=2)
    assert as_dicts(serial) == as_dicts(parallel)


def test_parallel_preserves_point_order():
    result = run_table2(benchmarks=("compress", "gcc"), scale=SCALE, workers=3)
    labels = [(point.benchmark, point.machine) for point in result.points]
    assert labels == [
        ("compress", "arb_32k"),
        ("compress", "svc_4x8k"),
        ("gcc", "arb_32k"),
        ("gcc", "svc_4x8k"),
    ]


def test_execute_point_dispatches_both_kinds():
    svc_spec = PointSpec(
        "compress", "svc_4x8k", "svc", final_design(SVCConfig.paper_32kb()), SCALE
    )
    arb_spec = PointSpec(
        "compress", "arb_32k", "arb", ARBConfig.paper_32kb(), SCALE
    )
    assert execute_point(svc_spec).machine == "svc_4x8k"
    assert execute_point(arb_spec).machine == "arb_32k"
    with pytest.raises(ValueError):
        execute_point(
            PointSpec("compress", "x", "coherence", None, SCALE)
        )


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers("4") == 4
    assert resolve_workers(0) == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_workers(None) == 2
    assert resolve_workers(5) == 5  # explicit argument beats the env


@pytest.mark.parametrize("bad", [-1, "-3", "banana", "2.5", "1e3", ""])
def test_resolve_workers_rejects_garbage_with_config_error(bad):
    with pytest.raises(ConfigError) as excinfo:
        resolve_workers(bad)
    # The offending value must be named in the error.
    assert repr(bad) in str(excinfo.value)


def test_resolve_workers_validates_env_value(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "three")
    with pytest.raises(ConfigError) as excinfo:
        resolve_workers(None)
    assert "'three'" in str(excinfo.value)
    assert "REPRO_WORKERS" in str(excinfo.value)


def test_run_points_empty_and_single():
    assert run_points([], workers=4) == []
    spec = PointSpec(
        "compress", "svc_4x8k", "svc", final_design(SVCConfig.paper_32kb()), SCALE
    )
    (only,) = run_points([spec], workers=4)
    assert only.benchmark == "compress"


def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(x)


class TestParallelMap:
    def test_serial_when_one_worker(self):
        from repro.harness.parallel import parallel_map

        assert parallel_map(_double, [1, 2, 3], workers=1) == [2, 4, 6]

    def test_parallel_matches_serial_in_order(self):
        from repro.harness.parallel import parallel_map

        items = list(range(8))
        assert parallel_map(_double, items, workers=3) == [
            x * 2 for x in items
        ]

    def test_empty_and_singleton_stay_serial(self):
        from repro.harness.parallel import parallel_map

        assert parallel_map(_double, [], workers=4) == []
        assert parallel_map(_double, [21], workers=4) == [42]

    def test_worker_exception_propagates(self):
        from repro.harness.parallel import parallel_map

        with pytest.raises(ValueError):
            parallel_map(_boom, [1], workers=2)


def _interrupt(x):
    if x == 0:
        raise KeyboardInterrupt
    import time

    time.sleep(30)  # would hang the suite if the abort left it running


def test_keyboard_interrupt_reaps_workers():
    """An aborted fan-out must not leave orphaned worker processes."""
    import multiprocessing
    import time

    from repro.harness.parallel import parallel_map

    with pytest.raises(KeyboardInterrupt):
        parallel_map(_interrupt, [0, 1, 2, 3], workers=2)
    # The pool's workers were SIGKILLed and reaped: no children of ours
    # survive (give the reaper a beat on slow machines).
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            break
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
