"""Content-addressed result store: keys, atomicity, resume semantics."""

import pickle

import pytest

from repro.common.config import SVCConfig
from repro.harness.experiments import figure19_specs, run_figure19
from repro.harness.parallel import PointSpec
from repro.harness.resultstore import (
    ResultStore,
    code_fingerprint,
    point_key,
    resolve_store_root,
)
from repro.harness.supervisor import SupervisorConfig, run_campaign
from repro.svc.designs import final_design

SCALE = 0.01


def spec(machine="svc_1c", scale=SCALE, telemetry=None):
    return PointSpec(
        "compress", machine, "svc", final_design(SVCConfig.paper_32kb()),
        scale, telemetry,
    )


# -- keys -------------------------------------------------------------------


def test_point_key_is_stable_and_discriminating():
    assert point_key(spec()) == point_key(spec())
    assert point_key(spec()) != point_key(spec(scale=0.02))
    assert point_key(spec()) != point_key(spec(machine="svc_other"))
    assert point_key(spec()) != point_key(spec(telemetry=True))


def test_point_key_resolves_env_scale(monkeypatch):
    """scale=None means REPRO_SCALE: different env scales, different keys."""
    unscaled = PointSpec(
        "compress", "svc_1c", "svc", final_design(SVCConfig.paper_32kb()), None
    )
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    key_half = point_key(unscaled)
    monkeypatch.setenv("REPRO_SCALE", "0.25")
    key_quarter = point_key(unscaled)
    assert key_half != key_quarter
    # And an explicit scale matching the env resolves to the same key.
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert point_key(spec(scale=0.5)) == key_half


def test_code_fingerprint_is_cached_and_hex():
    first = code_fingerprint()
    assert first == code_fingerprint()
    assert len(first) == 64
    int(first, 16)  # valid hex digest


def test_resolve_store_root_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
    assert resolve_store_root(None) == ".repro-results"
    assert resolve_store_root("/x/y") == "/x/y"
    monkeypatch.setenv("REPRO_RESULT_STORE", "/env/store")
    assert resolve_store_root(None) == "/env/store"
    assert resolve_store_root("/x/y") == "/x/y"  # argument beats env


# -- store mechanics --------------------------------------------------------


def test_store_roundtrip_and_counters(tmp_path):
    store = ResultStore(str(tmp_path))
    key = point_key(spec())
    assert store.get(key) is None
    store.put(key, {"value": 42})
    assert store.get(key) == {"value": 42}
    assert store.counters() == {"hits": 1, "misses": 1, "stores": 1}
    assert store.contains(key)
    assert store.discard(key)
    assert not store.contains(key)
    assert not store.discard(key)


def test_corrupt_entry_is_a_miss(tmp_path):
    store = ResultStore(str(tmp_path))
    key = point_key(spec())
    store.put(key, [1, 2, 3])
    path = store._path(key)
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    assert store.get(key) is None
    assert store.misses == 1


# -- resume semantics (the acceptance criterion) ----------------------------


def test_interrupted_campaign_recomputes_only_missing_points(tmp_path):
    specs = figure19_specs(benchmarks=("compress",), scale=SCALE)
    root = str(tmp_path)

    # "Interrupted" campaign: only the first three points completed.
    partial = run_campaign(
        specs[:3], SupervisorConfig(workers=1, resume=True, store_root=root)
    )
    assert partial.counters["recomputed"] == 3
    assert partial.counters["cache_hits"] == 0

    # Resume the full campaign: exactly the two missing points recompute.
    resumed = run_campaign(
        specs, SupervisorConfig(workers=1, resume=True, store_root=root)
    )
    assert resumed.counters["recomputed"] == 2
    assert resumed.counters["cache_hits"] == 3
    assert resumed.ok

    # And the merged results are byte-identical to a cold serial run.
    cold = run_campaign(specs, SupervisorConfig(workers=1))
    assert [pickle.dumps(vars(p)) for p in resumed.results()] == [
        pickle.dumps(vars(p)) for p in cold.results()
    ]

    # A third run is fully warm.
    warm = run_campaign(
        specs, SupervisorConfig(workers=1, resume=True, store_root=root)
    )
    assert warm.counters["recomputed"] == 0
    assert warm.counters["cache_hits"] == 5


def test_losing_one_entry_recomputes_exactly_that_point(tmp_path):
    specs = figure19_specs(benchmarks=("compress",), scale=SCALE)
    root = str(tmp_path)
    run_campaign(specs, SupervisorConfig(workers=1, resume=True, store_root=root))
    ResultStore(root).discard(point_key(specs[2]))
    report = run_campaign(
        specs, SupervisorConfig(workers=1, resume=True, store_root=root)
    )
    assert report.counters["recomputed"] == 1
    assert report.counters["cache_hits"] == 4


def test_experiment_runner_resume_kwarg(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_STORE", str(tmp_path))
    first = run_figure19(benchmarks=("compress",), scale=SCALE, resume=True)
    (campaign,) = first.campaigns
    assert campaign.counters["recomputed"] == 5
    second = run_figure19(benchmarks=("compress",), scale=SCALE, resume=True)
    (campaign,) = second.campaigns
    assert campaign.counters["recomputed"] == 0
    assert campaign.counters["cache_hits"] == 5
    assert [vars(p) for p in first.points] == [vars(p) for p in second.points]
