"""Supervised campaign engine: retry, quarantine, recovery, resume.

The chaos-driven end-to-end suite lives in test_chaos.py; these tests
pin the engine's own mechanics — knob validation, outcome accounting,
serial/parallel equivalence and the default-config plumbing.
"""

import pickle

import pytest

from repro.common.errors import ConfigError
from repro.harness.chaos import ChaosPlan
from repro.harness.experiments import figure19_specs
from repro.harness.supervisor import (
    QUARANTINED,
    BackoffPolicy,
    SupervisorConfig,
    default_supervisor,
    resolve_point_timeout,
    resolve_retries,
    run_campaign,
    set_default_supervisor,
)

SCALE = 0.01
#: Zero-delay backoff: tests exercise scheduling, not wall-clock waits.
FAST = BackoffPolicy(base=0.0)


def specs(benchmarks=("compress",)):
    return figure19_specs(benchmarks=benchmarks, scale=SCALE)


def point_bytes(results):
    return [pickle.dumps(vars(point)) for point in results]


# -- env knob resolution ----------------------------------------------------


def test_resolve_point_timeout_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_POINT_TIMEOUT", raising=False)
    assert resolve_point_timeout(None) is None
    assert resolve_point_timeout(2.5) == 2.5
    assert resolve_point_timeout("10") == 10.0
    monkeypatch.setenv("REPRO_POINT_TIMEOUT", "7.5")
    assert resolve_point_timeout(None) == 7.5
    assert resolve_point_timeout(1.0) == 1.0  # argument beats env


@pytest.mark.parametrize("bad", ["soon", "", 0, -3, "-1.5"])
def test_resolve_point_timeout_rejects_garbage(bad, monkeypatch):
    monkeypatch.delenv("REPRO_POINT_TIMEOUT", raising=False)
    if bad == "":
        monkeypatch.setenv("REPRO_POINT_TIMEOUT", "nope")
        with pytest.raises(ConfigError) as excinfo:
            resolve_point_timeout(None)
        assert "'nope'" in str(excinfo.value)
        return
    with pytest.raises(ConfigError) as excinfo:
        resolve_point_timeout(bad)
    assert repr(bad) in str(excinfo.value)


def test_resolve_retries_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    assert resolve_retries(None) == 1  # DEFAULT_RETRIES
    assert resolve_retries(0) == 0
    assert resolve_retries("4") == 4
    monkeypatch.setenv("REPRO_RETRIES", "3")
    assert resolve_retries(None) == 3


@pytest.mark.parametrize("bad", [-1, "many", "2.5"])
def test_resolve_retries_rejects_garbage(bad):
    with pytest.raises(ConfigError) as excinfo:
        resolve_retries(bad)
    assert repr(bad) in str(excinfo.value)


# -- serial engine ----------------------------------------------------------


def test_serial_campaign_runs_all_points():
    report = run_campaign(specs(), SupervisorConfig(workers=1))
    assert report.ok
    assert report.counters["points"] == 5
    assert report.counters["ok"] == 5
    assert report.counters["recomputed"] == 5
    assert report.counters["retries"] == 0
    assert [o.index for o in report.outcomes] == [0, 1, 2, 3, 4]
    assert all(o.attempts == 1 for o in report.outcomes)


def test_serial_retry_then_success():
    plan = ChaosPlan(raises=((1, 0),))
    report = run_campaign(
        specs(), SupervisorConfig(workers=1, chaos=plan, retries=1, backoff=FAST)
    )
    assert report.ok
    assert report.counters["retries"] == 1
    assert report.counters["failures"] == 1
    assert report.outcomes[1].attempts == 2
    assert report.outcomes[1].failures  # the first attempt is recorded


def test_serial_quarantine_after_budget():
    # Fail attempts 0..2: with retries=2 the budget is exactly spent.
    plan = ChaosPlan(raises=((2, 0), (2, 1), (2, 2)))
    report = run_campaign(
        specs(), SupervisorConfig(workers=1, chaos=plan, retries=2, backoff=FAST)
    )
    assert not report.ok
    assert report.counters["quarantined"] == 1
    assert report.counters["retries"] == 2
    bad = report.outcomes[2]
    assert bad.status == QUARANTINED
    assert bad.result is None
    assert bad.attempts == 3
    assert len(bad.failures) == 3
    # Partial degradation: every other point still delivered.
    assert sum(1 for o in report.outcomes if o.result is not None) == 4


def test_serial_kill_degrades_to_simulated_crash():
    plan = ChaosPlan(kills=((0, 0),))
    report = run_campaign(
        specs(), SupervisorConfig(workers=1, chaos=plan, retries=1, backoff=FAST)
    )
    assert report.ok
    assert report.counters["crashes"] == 1


# -- parallel engine --------------------------------------------------------


def test_parallel_matches_serial_bytes():
    serial = run_campaign(specs(), SupervisorConfig(workers=1))
    parallel = run_campaign(specs(), SupervisorConfig(workers=3))
    assert point_bytes(parallel.results()) == point_bytes(serial.results())


def test_parallel_quarantine_is_partial():
    plan = ChaosPlan(raises=((4, 0), (4, 1)))
    report = run_campaign(
        specs(), SupervisorConfig(workers=2, chaos=plan, retries=1, backoff=FAST)
    )
    assert not report.ok
    assert report.counters["quarantined"] == 1
    assert report.outcomes[4].status == QUARANTINED
    serial = run_campaign(specs(), SupervisorConfig(workers=1))
    for outcome, reference in zip(report.outcomes[:4], serial.results()[:4]):
        assert pickle.dumps(vars(outcome.result)) == pickle.dumps(vars(reference))


# -- defaults plumbing ------------------------------------------------------


def test_set_default_supervisor_roundtrip():
    original = default_supervisor()
    custom = SupervisorConfig(retries=5)
    previous = set_default_supervisor(custom)
    try:
        assert previous is original
        assert default_supervisor() is custom
    finally:
        set_default_supervisor(previous)
    assert default_supervisor() is original


def test_run_points_drops_quarantined(tmp_path):
    from repro.harness.parallel import run_points

    plan = ChaosPlan(raises=((0, 0), (0, 1)))
    campaigns = []
    results = run_points(
        specs(),
        workers=1,
        supervisor=SupervisorConfig(chaos=plan, retries=1, backoff=FAST),
        campaigns=campaigns,
    )
    assert len(results) == 4  # point 0 quarantined and omitted
    (report,) = campaigns
    assert report.counters["quarantined"] == 1


def test_campaign_report_summary_mentions_failures():
    plan = ChaosPlan(raises=((0, 0),))
    report = run_campaign(
        specs(), SupervisorConfig(workers=1, chaos=plan, retries=1, backoff=FAST)
    )
    text = report.summary()
    assert "5/5 points ok" in text
    assert "1 retries" in text
