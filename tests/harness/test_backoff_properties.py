"""Property tests (hypothesis) for the retry/backoff schedule.

The satellite contract: schedules are deterministic given a seed,
monotone non-decreasing, bounded (by the cap and by the attempt
budget), and quarantine triggers exactly at the configured retry
budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.common.errors import ConfigError
from repro.harness.chaos import ChaosPlan
from repro.harness.supervisor import (
    QUARANTINED,
    BackoffPolicy,
    SupervisorConfig,
    run_campaign,
)

policies = st.builds(
    BackoffPolicy,
    base=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    factor=st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
    cap=st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

keys = st.text(min_size=1, max_size=30)


@given(policy=policies, key=keys, retries=st.integers(0, 12))
def test_schedule_is_deterministic_given_seed(policy, key, retries):
    assert policy.schedule(key, retries) == policy.schedule(key, retries)
    clone = BackoffPolicy(
        base=policy.base, factor=policy.factor, cap=policy.cap,
        jitter=policy.jitter, seed=policy.seed,
    )
    assert clone.schedule(key, retries) == policy.schedule(key, retries)


@given(policy=policies, key=keys, retries=st.integers(0, 12))
def test_schedule_monotone_nondecreasing_and_bounded(policy, key, retries):
    schedule = policy.schedule(key, retries)
    assert len(schedule) == retries
    for earlier, later in zip(schedule, schedule[1:]):
        assert later >= earlier
    for delay in schedule:
        assert 0.0 <= delay <= policy.cap


@given(
    policy=policies,
    key=keys,
    seed_a=st.integers(0, 2**16),
    seed_b=st.integers(0, 2**16),
)
def test_different_seeds_only_change_jitter_scale(policy, key, seed_a, seed_b):
    """Reseeding moves delays only within the jitter envelope."""
    import dataclasses

    a = dataclasses.replace(policy, seed=seed_a).schedule(key, 6)
    b = dataclasses.replace(policy, seed=seed_b).schedule(key, 6)
    for delay_a, delay_b in zip(a, b):
        lo = min(delay_a, delay_b)
        hi = max(delay_a, delay_b)
        assert hi <= policy.cap
        # Both derive from base * factor**k; jitter multiplies by at
        # most (1 + jitter), so the pair can differ by no more than that.
        assert hi <= (1.0 + policy.jitter) * lo + 1e-9 or hi == policy.cap


@given(st.floats(max_value=-1e-6, allow_nan=False, allow_infinity=False))
def test_negative_base_rejected(base):
    with pytest.raises(ConfigError):
        BackoffPolicy(base=base)


@given(st.floats(min_value=0.0, max_value=0.999, allow_nan=False))
def test_shrinking_factor_rejected(factor):
    """factor < 1 would break monotonicity, so construction refuses it."""
    with pytest.raises(ConfigError):
        BackoffPolicy(factor=factor)


@settings(deadline=None, max_examples=8)
@given(retries=st.integers(0, 3), extra_failures=st.integers(0, 2))
def test_quarantine_triggers_exactly_at_retry_budget(retries, extra_failures):
    """A point failing `retries` times still completes; one more failure
    quarantines it — and total attempts stay bounded by retries + 1."""
    from repro.harness.experiments import figure19_specs

    specs = figure19_specs(benchmarks=("compress",), scale=0.01)[:2]
    failing_attempts = retries + extra_failures
    plan = ChaosPlan(
        raises=tuple((1, attempt) for attempt in range(failing_attempts))
    )
    report = run_campaign(
        specs,
        SupervisorConfig(
            workers=1, chaos=plan, retries=retries,
            backoff=BackoffPolicy(base=0.0),
        ),
    )
    outcome = report.outcomes[1]
    if extra_failures == 0:
        # Budget not exceeded: the final allowed attempt succeeds.
        assert report.ok
        assert outcome.attempts == failing_attempts + 1
        assert report.counters["retries"] == failing_attempts
    else:
        # One failure past the budget: quarantined, exactly at the limit.
        assert outcome.status == QUARANTINED
        assert outcome.attempts == retries + 1
        assert report.counters["retries"] == retries
        assert report.counters["quarantined"] == 1
    assert outcome.attempts <= retries + 1
