"""The embedded paper numbers: complete and transcribed sanely."""

from repro.harness.experiments import PAPER_TABLE2, PAPER_TABLE3
from repro.workloads.spec95 import BENCHMARKS


def test_tables_cover_all_seven_benchmarks():
    assert set(PAPER_TABLE2) == set(BENCHMARKS)
    assert set(PAPER_TABLE3) == set(BENCHMARKS)


def test_table2_values_as_published():
    # Spot checks against the paper's Table 2.
    assert PAPER_TABLE2["compress"] == {"arb_32k": 0.031, "svc_4x8k": 0.075}
    assert PAPER_TABLE2["mgrid"]["svc_4x8k"] == 0.093
    # perl is the only benchmark where the SVC misses less than the ARB.
    inversions = [
        name for name, row in PAPER_TABLE2.items()
        if row["svc_4x8k"] < row["arb_32k"]
    ]
    assert inversions == ["perl"]


def test_table3_values_as_published():
    assert PAPER_TABLE3["mgrid"] == {"svc_4x8k": 0.747, "svc_4x16k": 0.632}
    # mgrid is the paper's maximum utilization in both columns.
    for column in ("svc_4x8k", "svc_4x16k"):
        peak = max(PAPER_TABLE3.values(), key=lambda row: row[column])
        assert peak is PAPER_TABLE3["mgrid"]
    # The larger configuration never uses more bus.
    for row in PAPER_TABLE3.values():
        assert row["svc_4x16k"] <= row["svc_4x8k"]
