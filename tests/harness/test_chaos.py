"""Seeded chaos suite: attack the harness, assert it heals.

Mirrors ``tests/repro/test_faults.py`` one layer down: where a
FaultPlan steers the *protocol* into squash/repair paths, a ChaosPlan
SIGKILLs workers, injects exceptions into ``execute_point`` and stalls
points past the supervisor's timeout — and the acceptance criterion is
that a fig19 campaign still completes, with results byte-identical to a
fault-free serial run (every point is deterministic, so a healed retry
must reproduce exactly the bytes the fault destroyed).
"""

import pickle

import pytest

from repro.common.errors import ConfigError
from repro.harness.chaos import (
    ChaosError,
    ChaosPlan,
    WorkerKilled,
    random_chaos_plan,
)
from repro.harness.experiments import figure19_specs
from repro.harness.supervisor import BackoffPolicy, SupervisorConfig, run_campaign

SCALE = 0.01
FAST = BackoffPolicy(base=0.0)


def fig19_slice():
    """A small fig19 campaign: compress x (svc_1c, arb_1c..arb_4c)."""
    return figure19_specs(benchmarks=("compress",), scale=SCALE)


@pytest.fixture(scope="module")
def serial_reference():
    """The fault-free serial run every chaos campaign must reproduce."""
    report = run_campaign(fig19_slice(), SupervisorConfig(workers=1))
    assert report.ok
    return [pickle.dumps(vars(point)) for point in report.results()]


def assert_identical(report, serial_reference):
    assert report.ok, f"campaign did not heal: {report.summary()}"
    measured = [pickle.dumps(vars(point)) for point in report.results()]
    assert measured == serial_reference


# -- plan mechanics ---------------------------------------------------------


class TestChaosPlan:
    def test_roundtrips_through_dict(self):
        plan = ChaosPlan(
            seed=9, kills=((1, 0),), raises=((2, 1),), stalls=((0, 0, 4.0),)
        )
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_action_lookup(self):
        plan = ChaosPlan(kills=((1, 0),), raises=((2, 0),), stalls=((3, 1, 2.0),))
        assert plan.action(1, 0) == ("kill", None)
        assert plan.action(2, 0) == ("raise", None)
        assert plan.action(3, 1) == ("stall", 2.0)
        assert plan.action(0, 0) is None
        assert plan.action(1, 1) is None  # attempt 1 is clean

    def test_apply_raises_and_simulated_kill(self):
        plan = ChaosPlan(kills=((0, 0),), raises=((1, 0),))
        with pytest.raises(WorkerKilled):
            plan.apply(0, 0, allow_kill=False)
        with pytest.raises(ChaosError):
            plan.apply(1, 0)
        plan.apply(5, 5)  # untargeted: no-op

    def test_rejects_invalid_targets(self):
        with pytest.raises(ConfigError):
            ChaosPlan(kills=((-1, 0),))
        with pytest.raises(ConfigError):
            ChaosPlan(stalls=((0, 0, 0.0),))

    def test_random_plan_is_deterministic_and_survivable(self):
        one = random_chaos_plan(7, 10, stall_seconds=5.0)
        two = random_chaos_plan(7, 10, stall_seconds=5.0)
        assert one == two
        assert not one.is_noop
        other = random_chaos_plan(8, 10, stall_seconds=5.0)
        assert one != other
        # Survivable: only attempt 0 is ever attacked, and no point is
        # attacked two different ways at once.
        targets = [pair for pair in one.kills + one.raises]
        targets += [(i, a) for i, a, _ in one.stalls]
        assert all(attempt == 0 for _, attempt in targets)
        assert len(targets) == len(set(targets))

    def test_random_plan_empty_campaign(self):
        assert random_chaos_plan(3, 0).is_noop


# -- healed campaigns are byte-identical ------------------------------------


def test_injected_exceptions_heal(serial_reference):
    plan = ChaosPlan(raises=((0, 0), (3, 0)))
    report = run_campaign(
        fig19_slice(),
        SupervisorConfig(workers=2, chaos=plan, retries=1, backoff=FAST),
    )
    assert report.counters["failures"] == 2
    assert report.counters["retries"] >= 2
    assert_identical(report, serial_reference)


def test_worker_kills_heal(serial_reference):
    plan = ChaosPlan(kills=((1, 0),))
    report = run_campaign(
        fig19_slice(),
        SupervisorConfig(workers=2, chaos=plan, retries=2, backoff=FAST),
    )
    assert report.counters["crashes"] >= 1
    assert report.counters["pool_rebuilds"] >= 1
    assert_identical(report, serial_reference)


def test_timeout_stalls_heal(serial_reference):
    plan = ChaosPlan(stalls=((0, 0, 30.0),))
    report = run_campaign(
        fig19_slice(),
        SupervisorConfig(
            workers=2, chaos=plan, retries=1, point_timeout=1.5, backoff=FAST
        ),
    )
    assert report.counters["timeouts"] == 1
    assert report.counters["pool_rebuilds"] >= 1
    assert_identical(report, serial_reference)


def test_seeded_random_chaos_heals(serial_reference):
    """The CI chaos-smoke scenario: a drawn plan, not a hand-built one."""
    specs = fig19_slice()
    plan = random_chaos_plan(1234, len(specs))
    assert not plan.is_noop
    report = run_campaign(
        specs,
        SupervisorConfig(workers=2, chaos=plan, retries=2, backoff=FAST),
    )
    assert_identical(report, serial_reference)


def test_chaos_seed_config_draws_plan(serial_reference):
    report = run_campaign(
        fig19_slice(),
        SupervisorConfig(workers=2, chaos_seed=1234, retries=2, backoff=FAST),
    )
    assert_identical(report, serial_reference)


def test_unsurvivable_chaos_quarantines_not_crashes(serial_reference):
    """Attacks on every attempt exhaust the budget: the campaign must
    degrade to a partial report, never raise."""
    plan = ChaosPlan(raises=tuple((2, attempt) for attempt in range(4)))
    report = run_campaign(
        fig19_slice(),
        SupervisorConfig(workers=2, chaos=plan, retries=2, backoff=FAST),
    )
    assert not report.ok
    assert report.counters["quarantined"] == 1
    survivors = [o.result for o in report.outcomes if o.result is not None]
    reference = serial_reference[:2] + serial_reference[3:]
    assert [pickle.dumps(vars(p)) for p in survivors] == reference
