"""Snooping bus: arbitration, occupancy accounting, utilization."""

from repro.bus.requests import BusRequestKind
from repro.bus.snooping_bus import SnoopingBus
from repro.common.config import BusConfig


def make_bus(**kwargs):
    return SnoopingBus(BusConfig(), keep_history=True, **kwargs)


def test_transaction_occupies_three_cycles():
    bus = make_bus()
    txn = bus.reserve(0, BusRequestKind.READ, 0, 0x100)
    assert txn.start_cycle == 0
    assert txn.end_cycle == 3
    assert txn.cycles == 3


def test_back_to_back_requests_serialize():
    bus = make_bus()
    first = bus.reserve(0, BusRequestKind.READ, 0, 0x100)
    second = bus.reserve(1, BusRequestKind.WRITE, 1, 0x200)
    assert second.start_cycle == first.end_cycle
    assert bus.stats.get("bus_wait_cycles") == 2


def test_idle_bus_starts_immediately():
    bus = make_bus()
    bus.reserve(0, BusRequestKind.READ, 0, 0x100)
    late = bus.reserve(50, BusRequestKind.READ, 1, 0x200)
    assert late.start_cycle == 50


def test_commit_flush_extra_cycle():
    bus = make_bus()
    txn = bus.reserve(0, BusRequestKind.WBACK, 0, 0x100, extra_cycles=1)
    assert txn.cycles == 4


def test_utilization():
    bus = make_bus()
    bus.reserve(0, BusRequestKind.READ, 0, 0x100)
    assert bus.utilization(total_cycles=12) == 0.25
    assert bus.utilization(total_cycles=0) == 0.0


def test_per_kind_counters():
    bus = make_bus()
    bus.reserve(0, BusRequestKind.READ, 0, 0x100)
    bus.reserve(0, BusRequestKind.WRITE, 0, 0x100, cache_to_cache=True)
    assert bus.stats.get("bus_BusRead") == 1
    assert bus.stats.get("bus_BusWrite") == 1
    assert bus.stats.get("bus_cache_to_cache") == 1
    assert bus.stats.get("bus_transactions") == 2


def test_history_and_store_mask():
    bus = make_bus()
    bus.reserve(0, BusRequestKind.WRITE, 2, 0x100, store_mask=0b0110)
    assert bus.history[0].store_mask == 0b0110
    assert bus.history[0].requester == 2
