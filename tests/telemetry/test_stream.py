"""Campaign NDJSON stream: schema, aggregation, renderer, validator CLI."""

import io
import json

import pytest

from repro.common.errors import ReproError
from repro.telemetry.stream import (
    SCHEMA_VERSION,
    CampaignStream,
    ProgressRenderer,
    main,
    make_event,
    read_stream,
    validate_stream_events,
    validate_stream_file,
)


def drive_minimal(stream):
    """One campaign: a fresh point, a cached point, a retry-then-
    quarantine point."""
    stream.campaign_started(points=3, workers=2)
    stream.point_started(0, 1, "compress", "svc_1c")
    stream.point_finished(
        0, 1, "compress", "svc_1c", status="ok", wall_s=0.5, events=1000,
        metrics={"ipc": 1.2},
    )
    stream.point_started(1, 1, "compress", "arb_1c")
    stream.point_finished(
        1, 1, "compress", "arb_1c", status="cached", wall_s=0.0, events=1000,
    )
    stream.point_started(2, 1, "compress", "arb_2c")
    stream.point_retry(2, 1, kind="crash", delay_s=0.0, note="boom")
    stream.point_quarantined(2, attempts=2, note="budget spent",
                             flight_records=2)
    stream.heartbeat(waiting=0, force=True)
    stream.campaign_finished({"points": 3, "ok": 1, "quarantined": 1})


# -- event construction ------------------------------------------------------


def test_make_event_stamps_envelope():
    event = make_event("campaign_started", 0, 0.25, points=5, workers=2)
    assert event["v"] == SCHEMA_VERSION
    assert event["seq"] == 0
    assert event["t"] == 0.25
    assert event["points"] == 5


def test_make_event_rejects_unknown_type():
    with pytest.raises(ReproError) as excinfo:
        make_event("point_exploded", 0, 0.0)
    assert "unknown stream event type" in str(excinfo.value)


def test_make_event_rejects_missing_required_fields():
    with pytest.raises(ReproError) as excinfo:
        make_event("point_started", 0, 0.0, point=1, attempt=1)
    message = str(excinfo.value)
    assert "benchmark" in message and "machine" in message


# -- validation --------------------------------------------------------------


def valid_events():
    stream = CampaignStream()
    captured = []
    stream._listeners.append(captured.append)
    drive_minimal(stream)
    stream.close()
    return captured


def test_valid_stream_has_no_problems():
    assert validate_stream_events(valid_events()) == []


def test_empty_stream_is_invalid():
    assert validate_stream_events([]) == ["stream is empty"]


def test_seq_must_be_dense():
    events = valid_events()
    events[3]["seq"] = 99
    problems = validate_stream_events(events)
    assert any("seq" in p and "expected 3" in p for p in problems)


def test_t_must_not_go_backwards():
    events = valid_events()
    events[-1]["t"] = -1.0
    problems = validate_stream_events(events)
    assert any("t went backwards" in p for p in problems)


def test_unknown_event_type_is_flagged():
    events = valid_events()
    events[2]["event"] = "point_exploded"
    problems = validate_stream_events(events)
    assert any("unknown event type" in p for p in problems)


def test_missing_required_field_is_flagged():
    events = valid_events()
    del events[1]["machine"]
    problems = validate_stream_events(events)
    assert any("missing field 'machine'" in p for p in problems)


def test_numeric_fields_must_be_numbers():
    events = valid_events()
    events[1]["attempt"] = "one"
    problems = validate_stream_events(events)
    assert any("must be a number" in p for p in problems)


def test_future_schema_version_is_rejected():
    events = valid_events()
    events[0]["v"] = SCHEMA_VERSION + 1
    problems = validate_stream_events(events)
    assert any("schema version" in p for p in problems)


def test_campaign_started_must_come_first():
    events = valid_events()
    events[0], events[1] = events[1], events[0]
    events[0]["seq"], events[1]["seq"] = 0, 1
    problems = validate_stream_events(events)
    assert any("not campaign_started" in p for p in problems)


def test_campaign_finished_must_come_last():
    events = valid_events()
    extra = dict(events[-2])
    extra["seq"] = len(events)
    events.append(extra)
    problems = validate_stream_events(events)
    assert any("not the last event" in p for p in problems)


def test_truncated_stream_needs_partial_flag():
    events = valid_events()[:-1]
    assert any(
        "no campaign_finished" in p for p in validate_stream_events(events)
    )
    assert validate_stream_events(events, require_finished=False) == []


# -- file round-trip + CLI ---------------------------------------------------


def stream_to_file(tmp_path, truncate=False):
    path = tmp_path / "campaign.ndjson"
    stream = CampaignStream(path=str(path))
    drive_minimal(stream)
    stream.close()
    if truncate:
        lines = path.read_text().splitlines()[:-1]
        path.write_text("\n".join(lines) + "\n")
    return path


def test_file_round_trip_validates(tmp_path):
    path = stream_to_file(tmp_path)
    events = read_stream(str(path))
    assert events[0]["event"] == "campaign_started"
    assert events[-1]["event"] == "campaign_finished"
    assert validate_stream_file(str(path)) == []


def test_read_stream_raises_on_garbage_line(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_text('{"v": 1}\nnot json at all\n')
    with pytest.raises(ValueError) as excinfo:
        read_stream(str(path))
    assert "bad.ndjson:2" in str(excinfo.value)


def test_validator_cli_accepts_valid_stream(tmp_path, capsys):
    path = stream_to_file(tmp_path)
    assert main([str(path)]) == 0
    assert "valid campaign stream" in capsys.readouterr().out


def test_validator_cli_rejects_truncated_stream(tmp_path, capsys):
    path = stream_to_file(tmp_path, truncate=True)
    assert main([str(path)]) == 1
    assert "INVALID" in capsys.readouterr().out
    assert main([str(path), "--partial"]) == 0
    capsys.readouterr()


def test_validator_cli_rejects_missing_file(tmp_path, capsys):
    assert main([str(tmp_path / "nope.ndjson")]) == 1
    capsys.readouterr()


# -- aggregate state ---------------------------------------------------------


def test_aggregate_counts_and_tier_stats():
    stream = CampaignStream()
    drive_minimal(stream)
    assert stream.points == 3
    assert stream.done == 2
    assert stream.cached == 1
    assert stream.quarantined == 1
    assert stream.retries == 1
    assert stream.remaining == 0
    # Only the fresh execution contributes wall time and throughput.
    tiers = stream.tier_stats()
    assert list(tiers) == ["svc_1c"]
    assert tiers["svc_1c"]["points"] == 1
    assert tiers["svc_1c"]["events"] == 1000
    assert tiers["svc_1c"]["events_per_sec"] == 2000
    stream.close()


def test_eta_from_mean_fresh_wall():
    stream = CampaignStream()
    stream.campaign_started(points=4, workers=2)
    stream.point_finished(
        0, 1, "compress", "svc_1c", status="ok", wall_s=2.0, events=10
    )
    # 3 remaining x 2.0s mean / 2 workers.
    assert stream.eta_seconds() == 3.0
    stream.close()


def test_heartbeat_rate_limit_and_force():
    stream = CampaignStream(heartbeat_interval=3600.0)
    stream.campaign_started(points=1, workers=1)
    assert stream.heartbeat() is True
    assert stream.heartbeat() is False  # inside the interval
    assert stream.heartbeat(force=True) is True
    stream.close()


def test_listeners_see_every_event():
    captured = []
    stream = CampaignStream(listeners=(captured.append,))
    drive_minimal(stream)
    stream.close()
    assert [e["seq"] for e in captured] == list(range(len(captured)))
    assert stream.events_emitted == len(captured)


def test_progress_line_mentions_counts_and_rates():
    stream = CampaignStream()
    drive_minimal(stream)
    line = stream.progress_line()
    assert "2/3 done" in line
    assert "1 quarantined" in line
    assert "1 retries" in line
    assert "svc_1c" in line
    stream.close()


# -- renderer ----------------------------------------------------------------


def test_renderer_plain_lines_off_tty():
    out = io.StringIO()
    renderer = ProgressRenderer(out)
    renderer.update("one")
    renderer.update("two")
    renderer.close()
    assert out.getvalue() == "one\ntwo\n"


def test_renderer_repaints_in_place_on_tty():
    class Tty(io.StringIO):
        def isatty(self):
            return True

    out = Tty()
    renderer = ProgressRenderer(out)
    renderer.update("long line")
    renderer.update("short")
    renderer.close()
    text = out.getvalue()
    assert text.startswith("\rlong line\r")
    assert text.endswith("\n")  # the close() newline
    # The shorter repaint pads over the stale tail.
    assert "short    " in text


def test_stream_file_is_sorted_key_ndjson(tmp_path):
    path = stream_to_file(tmp_path)
    for line in path.read_text().splitlines():
        event = json.loads(line)
        assert list(event) == sorted(event)
