"""Telemetry must be a pure observer: on-vs-off runs are identical.

Every design tier runs the same seeded workload twice — once with a
recording :class:`~repro.telemetry.Telemetry` wired through the system,
once fully unwired — and every observable (protocol event stream,
stats registry, committed load values, final memory image, squash
counts) must match exactly. The harness also asserts the traced run
recorded spans, so a silently-dead recorder cannot pass vacuously.
"""

import pytest

from repro.faults import FaultPlan
from repro.harness.differential import (
    TIERS,
    compare_telemetry_modes,
    differential_workload,
)


@pytest.mark.parametrize("tier", TIERS)
def test_telemetry_on_equals_off(tier):
    # The EC design assumes no squashes (paper section 3.4).
    allow_squashes = tier != "ec"
    for seed in range(3):
        tasks = differential_workload(seed, n_tasks=6, ops_per_task=8)
        plan = FaultPlan(
            seed=seed,
            squash_rate=0.1 if allow_squashes else 0.0,
            delayed_writebacks=2,
        )
        mismatches = compare_telemetry_modes(
            tier,
            tasks,
            seed=seed,
            schedule="random",
            squash_probability=0.05 if allow_squashes else 0.0,
            fault_plan=plan,
        )
        assert not mismatches, "\n".join(mismatches)


def test_disabled_telemetry_equals_off():
    """Telemetry(enabled=False) must wire to nothing at all."""
    from repro.telemetry import Telemetry

    tasks = differential_workload(7, n_tasks=5, ops_per_task=6)
    disabled = Telemetry(label="x", enabled=False)
    mismatches = compare_telemetry_modes("final", tasks, seed=7)
    assert not mismatches
    # And a disabled object records nothing even if handed to a system.
    from repro.harness.differential import observe_run
    from repro.svc.designs import design_config
    from repro.common.config import SVCConfig

    config = design_config("final", SVCConfig.paper_32kb())
    observe_run(config, tasks, seed=7, telemetry=disabled)
    assert disabled.tracer.spans == []
    assert len(disabled.metrics) == 0
