"""Run-report generator: collection, renderers, Prometheus, CLI."""

import pytest

from repro.telemetry.report import (
    FORMATS,
    PROM_FILENAME,
    build_parser,
    prometheus_exposition,
    render_html,
    render_markdown,
    report_main,
    write_report_files,
)


def synthetic_report(**overrides):
    """A hand-built report structure exercising every renderer section:
    counters, tiers, paper rows, histograms, dropped spans, a
    quarantined point with flight records."""
    report = {
        "meta": {
            "experiment": "fig19",
            "generated": "2026-01-01 00:00:00",
            "benchmarks": ["compress"],
            "machines": ["svc_1c", "arb_1c"],
            "paper_metric": "IPC",
        },
        "counters": {"points": 2, "ok": 1, "quarantined": 1},
        "tiers": [
            {
                "machine": "svc_1c",
                "points": 1,
                "mean_ipc": 1.5,
                "mean_miss": 0.02,
                "mean_bus_util": 0.4,
                "events": 1000,
                "wall_s": 0.5,
                "events_per_sec": 2000,
            },
            {
                "machine": "arb_1c",
                "points": 1,
                "mean_ipc": 1.7,
                "mean_miss": 0.01,
                "mean_bus_util": 0.3,
                "events": 1000,
                "wall_s": 0.0,
                "events_per_sec": 0,
            },
        ],
        "paper": [
            {
                "benchmark": "compress",
                "machine": "svc_1c",
                "measured": 1.5,
                "paper": 1.79,
            }
        ],
        "metrics": {
            "counters": {"check.violations": {"unit": "", "value": 3}},
            "gauges": {},
            "histograms": {
                "svc.vol_length": {
                    "unit": "versions",
                    "edges": [0, 1, 2],
                    "counts": [5, 3, 1, 1],
                    "count": 10,
                    "total": 9,
                    "min": 0,
                    "max": 3,
                }
            },
        },
        "dropped_spans": 4,
        "quarantined": [
            {
                "point": 2,
                "benchmark": "compress",
                "machine": "arb_2c",
                "attempts": 2,
                "failures": ["chaos raise", "chaos raise"],
                "flight": [
                    {
                        "attempt": 0,
                        "entries": [
                            {"kind": "attempt_started"},
                            {"kind": "exception"},
                        ],
                    }
                ],
            }
        ],
    }
    report.update(overrides)
    return report


# -- renderers ---------------------------------------------------------------


def test_markdown_covers_every_section():
    text = render_markdown(synthetic_report())
    assert "# Run report: fig19" in text
    assert "| svc_1c | 1 | 1.500" in text
    assert "2000" in text  # events/sec for the fresh tier
    assert "## Paper comparison (IPC)" in text
    assert "1.79" in text
    assert "svc.vol_length" in text
    assert "<= 0" in text and "> 2" in text  # buckets incl. overflow
    assert "4 span(s) dropped" in text
    assert "## Quarantined points" in text
    assert "attempt_started, exception" in text


def test_markdown_histogram_bars_scale_to_peak():
    text = render_markdown(synthetic_report())
    # Peak bucket (count 5) renders the full 40-char bar.
    assert "#" * 40 in text
    assert "#" * 41 not in text


def test_html_is_self_contained_and_escaped():
    report = synthetic_report()
    report["quarantined"][0]["failures"] = ["<script>alert(1)</script>"]
    text = render_html(report)
    assert text.startswith("<!DOCTYPE html>")
    assert "<style>" in text  # inline CSS, no external assets
    assert "http" not in text.split("</title>")[1]  # no remote fetches
    assert "<script>" not in text
    assert "&lt;script&gt;" in text
    assert "class='bar'" in text


def test_empty_campaign_renders_without_sections():
    report = synthetic_report(
        counters={},
        tiers=[],
        paper=[],
        metrics={"counters": {}, "gauges": {}, "histograms": {}},
        dropped_spans=0,
        quarantined=[],
    )
    text = render_markdown(report)
    assert "No campaign counters" in text
    assert "Histograms" not in text
    assert "WARNING" not in text
    html = render_html(report)
    assert "No campaign counters" in html


# -- prometheus exposition ---------------------------------------------------


def test_prometheus_histogram_buckets_are_cumulative():
    text = prometheus_exposition(synthetic_report()["metrics"])
    lines = text.splitlines()
    assert '# TYPE repro_svc_vol_length histogram' in lines
    assert 'repro_svc_vol_length_bucket{le="0"} 5' in lines
    assert 'repro_svc_vol_length_bucket{le="1"} 8' in lines
    assert 'repro_svc_vol_length_bucket{le="2"} 9' in lines
    assert 'repro_svc_vol_length_bucket{le="+Inf"} 10' in lines
    assert "repro_svc_vol_length_sum 9" in lines
    assert "repro_svc_vol_length_count 10" in lines


def test_prometheus_counters_and_campaign_counters():
    text = prometheus_exposition(
        synthetic_report()["metrics"], campaign_counters={"retries": 2}
    )
    lines = text.splitlines()
    assert "# TYPE repro_check_violations counter" in lines
    assert "repro_check_violations 3" in lines
    assert "# TYPE repro_campaign_retries counter" in lines
    assert "repro_campaign_retries 2" in lines
    assert text.endswith("\n")


def test_prometheus_names_are_sanitized():
    text = prometheus_exposition(
        {
            "counters": {"bus/weird-name.x": {"unit": "", "value": 1}},
            "gauges": {},
            "histograms": {},
        }
    )
    assert "repro_bus_weird_name_x 1" in text


# -- file bundle -------------------------------------------------------------


def test_write_report_files_bundle(tmp_path):
    written = write_report_files(synthetic_report(), str(tmp_path))
    assert sorted(written) == ["html", "md", "prom"]
    assert written["md"].endswith("fig19.report.md")
    assert written["html"].endswith("fig19.report.html")
    assert written["prom"].endswith(PROM_FILENAME)
    # Campaign counters default into the prometheus exposition.
    prom = open(written["prom"]).read()
    assert "repro_campaign_quarantined 1" in prom


def test_write_report_files_respects_format_subset(tmp_path):
    written = write_report_files(
        synthetic_report(), str(tmp_path), formats=("md",)
    )
    assert sorted(written) == ["md", "prom"]  # prom is always written


# -- CLI ---------------------------------------------------------------------


def test_parser_prog_and_flags():
    parser = build_parser()
    assert parser.prog == "python -m repro report"
    args = parser.parse_args(
        ["fig19", "--scale", "0.02", "--stream", "s.ndjson", "--progress"]
    )
    assert args.experiment == "fig19"
    assert args.stream == "s.ndjson"
    assert args.progress is True
    assert args.format == ",".join(FORMATS)


class TestExitCodes:
    """0 clean report, 1 partial campaign, 2 usage/config error."""

    def test_unknown_experiment_is_two(self, capsys):
        assert report_main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_format_is_two(self, capsys):
        assert report_main(["fig19", "--format", "pdf"]) == 2
        assert "unknown formats" in capsys.readouterr().err

    def test_unknown_benchmark_is_two(self, capsys):
        assert report_main(["fig19", "--benchmarks", "linpack"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err

    def test_designs_on_wrong_experiment_is_two(self, capsys):
        assert report_main(["fig19", "--designs", "base"]) == 2
        assert "ablation_designs" in capsys.readouterr().err

    def test_unknown_design_is_two(self, capsys):
        code = report_main(
            ["ablation_designs", "--designs", "base,warp9"]
        )
        assert code == 2
        assert "warp9" in capsys.readouterr().err

    def test_bad_timeout_is_config_error_two(self, capsys):
        assert report_main(["fig19", "--timeout", "soon"]) == 2
        assert "config error" in capsys.readouterr().err

    def test_quarantined_campaign_is_one_but_writes_report(
        self, capsys, tmp_path
    ):
        code = report_main(
            [
                "fig19", "--scale", "0.01", "--benchmarks", "compress",
                "--retries", "0", "--chaos", "7",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "PARTIAL CAMPAIGN" in captured.err
        text = (tmp_path / "fig19.report.md").read_text()
        assert "Quarantined points" in text


def test_end_to_end_report_covers_all_six_tiers(tmp_path, capsys):
    """Acceptance: one CLI invocation sweeps every design tier and the
    report + stream + prometheus bundle covers all six."""
    from repro.svc.designs import DESIGNS
    from repro.telemetry.stream import validate_stream_file

    stream_path = tmp_path / "stream.ndjson"
    code = report_main(
        [
            "ablation_designs",
            "--designs", "base,ec,ecs,hr,rl,final",
            "--benchmarks", "compress",
            "--scale", "0.01",
            "--output-dir", str(tmp_path),
            "--stream", str(stream_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "report[md]" in out and "report[prom]" in out

    markdown = (tmp_path / "ablation_designs.report.md").read_text()
    html = (tmp_path / "ablation_designs.report.html").read_text()
    assert sorted(DESIGNS) == sorted(
        ("base", "ec", "ecs", "hr", "rl", "final")
    )
    for design in DESIGNS:
        assert f"svc_{design}" in markdown
        assert f"svc_{design}" in html
    # Fresh serial executions: every tier has wall time and throughput.
    for line in markdown.splitlines():
        if line.startswith("| svc_"):
            assert line.split("|")[-2].strip() != "-"

    prom = (tmp_path / PROM_FILENAME).read_text()
    assert "repro_svc_vol_length_bucket" in prom
    assert "repro_campaign_points 6" in prom

    assert validate_stream_file(str(stream_path)) == []


def test_report_resume_serves_cached_points(tmp_path, capsys):
    """A warm result store renders a report without recomputing; the
    tier table then has events but no wall times."""
    store = str(tmp_path / "store")
    argv = [
        "fig19", "--scale", "0.01", "--benchmarks", "compress",
        "--resume", "--store", store, "--output-dir", str(tmp_path / "r1"),
    ]
    assert report_main(argv) == 0
    argv2 = [
        "fig19", "--scale", "0.01", "--benchmarks", "compress",
        "--resume", "--store", store, "--output-dir", str(tmp_path / "r2"),
    ]
    assert report_main(argv2) == 0
    captured = capsys.readouterr()
    assert "recomputed" in captured.err
    text = (tmp_path / "r2" / "fig19.report.md").read_text()
    # Cached points carry no wall time, so throughput shows "-".
    assert "| svc_1c |" in text
