"""Metrics: bucket-edge semantics, registry binding, snapshot merging."""

import pytest

from repro.common.errors import ReproError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_metric_snapshots,
)


class TestHistogramBucketEdges:
    """edges = (a, b, c) -> buckets v<=a, a<v<=b, b<v<=c, v>c."""

    def test_inclusive_upper_bounds(self):
        hist = Histogram("h", edges=(1, 2, 4))
        for value, bucket in ((1, 0), (2, 1), (3, 2), (4, 2), (5, 3)):
            before = list(hist.counts)
            hist.observe(value)
            assert hist.counts[bucket] == before[bucket] + 1, (value, bucket)
        assert hist.counts == [1, 1, 2, 1]
        assert hist.count == 5
        assert hist.total == 1 + 2 + 3 + 4 + 5
        assert (hist.vmin, hist.vmax) == (1, 5)
        assert hist.mean == pytest.approx(3.0)

    def test_zero_goes_to_first_bucket(self):
        hist = Histogram("h", edges=(0, 1))
        hist.observe(0)
        assert hist.counts == [1, 0, 0]

    def test_counts_has_one_overflow_slot(self):
        assert len(Histogram("h", edges=(1, 2, 4)).counts) == 4

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ReproError):
            Histogram("h", edges=(1, 1, 2))
        with pytest.raises(ReproError):
            Histogram("h", edges=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1, 2)) is registry.histogram("h", (1, 2))
        assert len(registry) == 2

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_histogram_edge_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ReproError):
            registry.histogram("h", (1, 2, 4))

    def test_snapshot_groups_by_type(self):
        registry = MetricsRegistry()
        registry.counter("c", unit="events").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", (1, 2)).observe(2)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == {"unit": "events", "value": 3}
        assert snap["gauges"]["g"]["value"] == 7
        assert snap["histograms"]["h"]["counts"] == [0, 1, 0]


def test_gauge_envelope():
    gauge = Gauge("g")
    for value in (5, 2, 9):
        gauge.set(value)
    assert (gauge.value, gauge.vmin, gauge.vmax, gauge.samples) == (9, 2, 9, 3)


def test_merge_adds_counters_and_histograms_and_widens_envelopes():
    def snap(counter, observations):
        registry = MetricsRegistry()
        registry.counter("c").inc(counter)
        hist = registry.histogram("h", (1, 2), unit="x")
        for value in observations:
            hist.observe(value)
        registry.gauge("g").set(observations[-1])
        return registry.snapshot()

    merged = merge_metric_snapshots([snap(2, [1, 5]), snap(3, [2])])
    assert merged["counters"]["c"]["value"] == 5
    hist = merged["histograms"]["h"]
    assert hist["counts"] == [1, 1, 1]
    assert hist["count"] == 3
    assert hist["total"] == 8
    assert (hist["min"], hist["max"]) == (1, 5)
    gauge = merged["gauges"]["g"]
    assert (gauge["min"], gauge["max"], gauge["samples"]) == (2, 5, 2)


def test_merge_rejects_mismatched_edges():
    a = {"histograms": {"h": Histogram("h", (1, 2)).to_dict()}}
    b = {"histograms": {"h": Histogram("h", (1, 2, 4)).to_dict()}}
    with pytest.raises(ReproError):
        merge_metric_snapshots([a, b])


def test_counter_inc_amount():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


class TestMergeEdgeCases:
    """Satellite coverage: degenerate and conflicting snapshot lists."""

    def test_empty_list_merges_to_empty_groups(self):
        merged = merge_metric_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_empty_snapshots_merge_to_empty_groups(self):
        merged = merge_metric_snapshots([{}, {"counters": {}}])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_single_snapshot_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.histogram("h", (1, 2)).observe(1)
        snap = registry.snapshot()
        merged = merge_metric_snapshots([snap])
        assert merged["counters"]["c"]["value"] == 7
        assert merged["histograms"]["h"]["count"] == 1

    def test_cross_kind_name_conflict_raises(self):
        counter_snap = {"counters": {"m": {"unit": "", "value": 1}}}
        gauge_snap = {
            "gauges": {
                "m": {"unit": "", "value": 2, "min": 2, "max": 2, "samples": 1}
            }
        }
        with pytest.raises(ReproError) as excinfo:
            merge_metric_snapshots([counter_snap, gauge_snap])
        message = str(excinfo.value)
        assert "'m'" in message and "counter" in message and "gauge" in message

    def test_cross_kind_conflict_within_one_snapshot_raises(self):
        snap = {
            "counters": {"m": {"unit": "", "value": 1}},
            "histograms": {"m": Histogram("m", (1,)).to_dict()},
        }
        with pytest.raises(ReproError):
            merge_metric_snapshots([snap])

    def test_edge_mismatch_error_names_both_edge_sets(self):
        a = {"histograms": {"h": Histogram("h", (1, 2)).to_dict()}}
        b = {"histograms": {"h": Histogram("h", (1, 3)).to_dict()}}
        with pytest.raises(ReproError) as excinfo:
            merge_metric_snapshots([a, b])
        message = str(excinfo.value)
        assert "[1, 2]" in message and "[1, 3]" in message
