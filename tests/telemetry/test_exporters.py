"""Exporters: Chrome-trace schema (pinned fixture), validation, metrics."""

import json
import os

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.exporters import (
    chrome_trace,
    metrics_document,
    render_summary,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "example_trace.json")


def example_payloads():
    """A small deterministic run: one bus transaction with a nested
    snoop and walk, an error instant, and a couple of metrics. This is
    the exact payload behind ``fixtures/example_trace.json``."""
    tel = Telemetry(label="compress/svc_1c")
    run = tel.begin("run", "timing run", pus=1)
    txn = tel.begin("bus_txn", "read 0x100", requestor=0)
    snoop = tel.begin("snoop", "snoop 0x100")
    tel.end(snoop, fanout=2, vol_length=1)
    walk = tel.begin("vol_walk", "supply walk", phase="supply")
    tel.end(walk, blocks=4)
    tel.end(txn)
    tel.end(txn, from_memory=True, end_cycle=12)
    tel.instant("invariant_violation", "invariant:vol_order", level="error")
    tel.end(run, cycles=12)
    tel.counter("check.violations").inc()
    tel.histogram("svc.snoop_fanout", (0, 1, 2, 3), unit="caches").observe(2)
    return [tel.snapshot()]


def test_chrome_trace_matches_checked_in_fixture():
    """The exporter's output schema is pinned byte-for-byte: a change
    here is a change to what Perfetto users load, so the fixture must be
    regenerated deliberately (see fixtures/README note in the file)."""
    document = chrome_trace(example_payloads(), meta={"experiment": "example"})
    with open(FIXTURE) as handle:
        expected = json.load(handle)
    assert document == expected


def test_fixture_itself_validates():
    with open(FIXTURE) as handle:
        document = json.load(handle)
    assert validate_chrome_trace(
        document, require_kinds=("bus_txn", "snoop", "vol_walk", "run")
    ) == []


def test_span_maps_to_complete_event_and_instant_to_instant_event():
    events = chrome_trace(example_payloads())["traceEvents"]
    complete = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    meta = [e for e in events if e.get("ph") == "M"]
    assert {e["cat"].split(",")[0] for e in complete} == {
        "run",
        "bus_txn",
        "snoop",
        "vol_walk",
    }
    assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)
    assert [e["s"] for e in instants] == ["t"]
    # Error-level instants get the filterable error category suffix.
    assert instants[0]["cat"] == "invariant_violation,error"
    assert meta[0]["args"]["name"] == "compress/svc_1c"


def test_validate_detects_straddling_event():
    document = {
        "traceEvents": [
            {"ph": "X", "name": "outer", "pid": 0, "tid": 0, "ts": 0, "dur": 10},
            {"ph": "X", "name": "bad", "pid": 0, "tid": 0, "ts": 5, "dur": 10},
        ]
    }
    problems = validate_chrome_trace(document)
    assert any("straddles" in p for p in problems)


def test_validate_detects_missing_required_kind_and_bad_phase():
    assert validate_chrome_trace({"traceEvents": []}, require_kinds=("snoop",)) == [
        "no events of required kind 'snoop'"
    ]
    problems = validate_chrome_trace({"traceEvents": [{"ph": "B"}]})
    assert any("unsupported phase" in p for p in problems)
    assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]


def test_validate_trace_file_raises_with_problems(tmp_path):
    path = write_chrome_trace(str(tmp_path / "t.json"), example_payloads())
    validate_trace_file(path, require_kinds=("bus_txn",))  # no raise
    with pytest.raises(ValueError, match="no events of required kind"):
        validate_trace_file(path, require_kinds=("wb_drain",))


def test_unfinished_span_exports_as_zero_duration():
    """A crashed run's snapshot has spans with end=None; the exporter
    must still emit a loadable trace (instant at the start tick)."""
    tel = Telemetry()
    tel.begin("bus_txn", "read")  # never ended
    events = chrome_trace([tel.snapshot()])["traceEvents"]
    (event,) = [e for e in events if e.get("ph") != "M"]
    assert event["ph"] == "i"


def test_metrics_document_flat_keys():
    document = metrics_document(example_payloads(), meta={"experiment": "x"})
    assert document["flat"]["counters.check.violations"] == 1
    assert document["flat"]["histograms.svc.snoop_fanout.count"] == 1
    assert document["flat"]["histograms.svc.snoop_fanout.total"] == 2
    assert document["meta"] == {"experiment": "x"}
    assert "compress/svc_1c" in document["per_point"]


def test_render_summary_digest():
    text = render_summary(example_payloads())
    assert "1 point(s)" in text
    assert "bus_txn=1" in text
    assert "ERROR-level spans: 1" in text
    assert "check.violations: 1" in text
    assert "svc.snoop_fanout: n=1" in text


def dropped_payloads():
    """Two payloads whose bounded tracers evicted spans."""
    payloads = []
    for extra in (3, 2):
        tel = Telemetry(capacity=1)
        for index in range(1 + extra):
            span = tel.begin("mem_op", f"op{index}")
            tel.end(span)
        payloads.append(tel.snapshot())
    return payloads


def test_metrics_document_surfaces_dropped_spans():
    document = metrics_document(dropped_payloads())
    expected = sum(p["dropped_spans"] for p in dropped_payloads())
    assert expected > 0
    assert document["dropped_spans"] == expected
    assert document["flat"]["telemetry.dropped_spans"] == expected


def test_metrics_document_zero_dropped_spans():
    document = metrics_document(example_payloads())
    assert document["dropped_spans"] == 0
    assert document["flat"]["telemetry.dropped_spans"] == 0


def test_render_summary_warns_on_dropped_spans():
    text = render_summary(dropped_payloads())
    assert "WARNING" in text
    assert "dropped by the trace ring buffer" in text


def test_render_summary_silent_when_nothing_dropped():
    assert "dropped" not in render_summary(example_payloads())
