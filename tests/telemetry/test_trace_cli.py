"""``python -m repro trace``: end-to-end smoke on a tiny fig19 slice."""

import json

from repro.cli import main
from repro.telemetry.exporters import validate_trace_file


def test_trace_cli_emits_valid_perfetto_trace(tmp_path, capsys):
    out = tmp_path / "traces"
    rc = main(
        [
            "trace",
            "fig19",
            "--scale",
            "0.02",
            "--benchmarks",
            "compress",
            "--output-dir",
            str(out),
        ]
    )
    assert rc == 0
    trace_path = out / "fig19.trace.json"
    metrics_path = out / "fig19.metrics.json"
    # The headline acceptance criterion: a Perfetto-loadable trace with
    # nested bus_txn -> snoop -> vol_walk spans.
    validate_trace_file(
        str(trace_path),
        require_kinds=("bus_txn", "snoop", "vol_walk", "commit", "mem_op", "run"),
    )
    metrics = json.loads(metrics_path.read_text())
    assert metrics["flat"]["histograms.svc.snoop_fanout.count"] > 0
    assert metrics["flat"]["histograms.bus.wait_cycles.count"] > 0
    text = capsys.readouterr().out
    assert "telemetry:" in text
    assert "perfetto" in text.lower()


def test_trace_cli_rejects_unknown_experiment(capsys):
    assert main(["trace", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_cli_rejects_unknown_benchmark(capsys):
    assert main(["trace", "fig19", "--benchmarks", "nope"]) == 2
    assert "unknown benchmarks" in capsys.readouterr().err
