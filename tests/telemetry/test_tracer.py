"""Tracer: span nesting, causal parent links, logical clock, unwinding."""

import pytest

from repro.telemetry.tracer import Span, Tracer


def test_begin_end_nesting_and_parent_links():
    tracer = Tracer()
    outer = tracer.begin("bus_txn", "read 0x100")
    inner = tracer.begin("snoop", "snoop 0x100")
    assert inner.parent_id == outer.span_id
    tracer.end(inner)
    sibling = tracer.begin("vol_walk", "supply walk")
    assert sibling.parent_id == outer.span_id
    tracer.end(sibling)
    tracer.end(outer)
    assert tracer.depth == 0
    # A child's interval nests strictly inside its parent's.
    assert outer.start < inner.start < inner.end < outer.end
    assert inner.end < sibling.start < sibling.end < outer.end


def test_top_level_span_has_no_parent():
    tracer = Tracer()
    span = tracer.begin("run")
    assert span.parent_id is None
    tracer.end(span)


def test_instant_parents_under_open_span():
    tracer = Tracer()
    outer = tracer.begin("commit")
    mark = tracer.instant("task_begin", "task 3", rank=3)
    tracer.end(outer)
    assert mark.parent_id == outer.span_id
    assert mark.is_instant
    assert mark.end == mark.start
    assert mark.args == {"rank": 3}
    # Real spans always tick between begin and end.
    assert not outer.is_instant


def test_logical_clock_is_deterministic():
    def record():
        tracer = Tracer()
        a = tracer.begin("bus_txn", "read", addr=0x40)
        tracer.instant("task_begin", "t0")
        b = tracer.begin("snoop")
        tracer.end(b, fanout=2)
        tracer.end(a, hit=True)
        return [span.to_dict() for span in tracer.spans]

    assert record() == record()


def test_end_unwinds_open_descendants_innermost_first():
    tracer = Tracer()
    a = tracer.begin("bus_txn")
    b = tracer.begin("snoop")
    c = tracer.begin("vol_walk")
    # An exception unwound past b's and c's end calls; ending the
    # ancestor must close both, innermost first.
    tracer.end(a, level="error")
    assert tracer.depth == 0
    assert c.end is not None and b.end is not None and a.end is not None
    assert c.end < b.end < a.end
    assert a.level == "error"


def test_double_end_is_idempotent_and_merges_args():
    tracer = Tracer()
    span = tracer.begin("bus_txn")
    tracer.end(span)
    closed_at = span.end
    tracer.end(span, flushes=2, end_cycle=17)
    assert span.end == closed_at  # timestamp not rewritten
    assert span.args == {"flushes": 2, "end_cycle": 17}
    assert tracer.clock == closed_at  # no extra tick spent


def test_ending_orphaned_span_stamps_it():
    tracer = Tracer()
    a = tracer.begin("bus_txn")
    b = tracer.begin("snoop")
    tracer.end(a)  # force-closes b
    c_end = b.end
    tracer.end(b, fanout=1)  # already closed: args merge only
    assert b.end == c_end
    assert b.args == {"fanout": 1}


def test_span_context_manager_closes_on_exception():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("commit"):
            tracer.begin("wb_drain")
            raise ValueError("boom")
    assert tracer.depth == 0
    assert all(span.end is not None for span in tracer.spans)


def test_queries_and_roundtrip():
    tracer = Tracer()
    outer = tracer.begin("bus_txn")
    tracer.begin("snoop")
    tracer.end(outer)
    assert [s.kind for s in tracer.of_kind("snoop")] == ["snoop"]
    assert [s.kind for s in tracer.children_of(outer)] == ["snoop"]
    for span in tracer.spans:
        assert Span.from_dict(span.to_dict()) == span
