"""Ring-buffer capacity and root sampling keep telemetry cheap *and* honest.

The tracer's two cost bounds (``capacity`` rings out old spans,
``sample_interval`` keeps 1-in-N subtrees of a sampled root kind) must
never corrupt what survives: eviction counts are reported, causal links
are healed on export, the kept/suppressed cadence is deterministic, and
warning/error instants punch through suppression. The cooperative
``next_root_kept``/``skip_root`` protocol the timing simulator uses
must consume exactly the same sampling slots as uncooperative
``begin`` calls, so both styles see the same roots.
"""

import pytest

from repro.telemetry import (
    MEM_OP,
    PRODUCTION_SAMPLE_INTERVAL,
    PRODUCTION_TRACE_CAPACITY,
    Telemetry,
)
from repro.telemetry.tracer import Tracer, _SuppressedSpan


# -- ring buffer -------------------------------------------------------------


class TestRingBuffer:
    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(100):
            tracer.end(tracer.begin("op", f"op {i}"))
        assert tracer.capacity is None
        assert tracer.dropped == 0
        assert len(tracer.spans) == 100

    def test_capacity_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=10)
        for i in range(25):
            tracer.end(tracer.begin("op", f"op {i}"))
        assert tracer.capacity == 10
        assert len(tracer.spans) == 10
        assert tracer.dropped == 15
        # Newest survive; ids keep incrementing despite eviction.
        assert [s.name for s in tracer.spans] == [f"op {i}" for i in range(15, 25)]
        assert [s.span_id for s in tracer.spans] == list(range(16, 26))

    def test_export_heals_evicted_parents(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            root = tracer.begin("root", f"root {i}")
            tracer.end(tracer.begin("child", f"child {i}"))
            tracer.end(root)
        exported = tracer.export_spans()
        present = {d["id"] for d in exported}
        for data in exported:
            # No dangling parent pointers: either the parent survived
            # or the span was promoted to top level.
            assert data["parent"] is None or data["parent"] in present

    def test_snapshot_reports_drops(self):
        tel = Telemetry(capacity=5)
        for i in range(12):
            tel.end(tel.begin("op", f"op {i}"))
        snap = tel.snapshot()
        assert snap["dropped_spans"] == 7
        assert len(snap["spans"]) == 5


# -- root sampling -----------------------------------------------------------


def run_roots(tracer, n, children=1):
    """n MEM_OP roots, each with ``children`` nested protocol spans."""
    for i in range(n):
        root = tracer.begin(MEM_OP, f"root {i}")
        for c in range(children):
            child = tracer.begin("bus_txn", f"txn {i}.{c}")
            tracer.instant("event", f"ev {i}.{c}")
            tracer.end(child)
        tracer.end(root)


class TestRootSampling:
    def test_first_root_always_kept_then_one_in_n(self):
        tracer = Tracer(sample_interval=4, sample_kinds=(MEM_OP,))
        run_roots(tracer, 10)
        kept = [s.name for s in tracer.of_kind(MEM_OP)]
        assert kept == ["root 0", "root 4", "root 8"]

    def test_suppressed_root_drops_entire_subtree(self):
        tracer = Tracer(sample_interval=2, sample_kinds=(MEM_OP,))
        run_roots(tracer, 4, children=2)
        # Roots 0 and 2 kept, each with 2 children + 2 instants.
        assert len(tracer.of_kind(MEM_OP)) == 2
        assert len(tracer.of_kind("bus_txn")) == 4
        assert len(tracer.of_kind("event")) == 4

    def test_sampling_is_deterministic(self):
        def trace():
            tracer = Tracer(sample_interval=3, sample_kinds=(MEM_OP,))
            run_roots(tracer, 20, children=2)
            return [s.to_dict() for s in tracer.spans]

        assert trace() == trace()

    def test_unsampled_kinds_unaffected(self):
        tracer = Tracer(sample_interval=4, sample_kinds=(MEM_OP,))
        for i in range(8):
            tracer.end(tracer.begin("commit", f"commit {i}"))
        assert len(tracer.of_kind("commit")) == 8

    def test_warning_and_error_instants_punch_through(self):
        tracer = Tracer(sample_interval=2, sample_kinds=(MEM_OP,))
        outer = tracer.begin("campaign")
        for i in range(4):
            root = tracer.begin(MEM_OP, f"root {i}")
            tracer.instant("violation", f"bad {i}", level="error")
            tracer.instant("note", f"note {i}", level="info")
            tracer.end(root)
        tracer.end(outer)
        errors = tracer.of_kind("violation")
        assert [s.name for s in errors] == [f"bad {i}" for i in range(4)]
        # Suppressed-subtree errors reparent to the innermost recorded
        # span; info instants vanish with their subtree.
        campaign_id = tracer.of_kind("campaign")[0].span_id
        suppressed_errors = [s for s in errors if s.name in ("bad 1", "bad 3")]
        assert all(s.parent_id == campaign_id for s in suppressed_errors)
        assert [s.name for s in tracer.of_kind("note")] == ["note 0", "note 2"]

    def test_depth_tracks_suppressed_spans_and_double_end_is_safe(self):
        tracer = Tracer(sample_interval=2, sample_kinds=(MEM_OP,))
        tracer.end(tracer.begin(MEM_OP, "kept"))
        root = tracer.begin(MEM_OP, "suppressed")
        assert isinstance(root, _SuppressedSpan)
        child = tracer.begin("bus_txn")
        assert isinstance(child, _SuppressedSpan)
        assert tracer.depth == 2
        tracer.end(child)
        tracer.end(child)  # double end: no-op
        assert tracer.depth == 1
        tracer.end(root)
        assert tracer.depth == 0
        # Suppression cleared: the next root (slot 2, even) is recorded.
        kept = tracer.begin(MEM_OP, "kept 2")
        assert not isinstance(kept, _SuppressedSpan)
        tracer.end(kept)

    def test_real_span_end_closes_suppressed_descendants(self):
        """An exception unwind that ends only the outer real span must
        clear suppression state along with the stack."""
        tracer = Tracer(sample_interval=2, sample_kinds=(MEM_OP,))
        outer = tracer.begin("campaign")
        tracer.end(tracer.begin(MEM_OP, "kept"))
        tracer.begin(MEM_OP, "suppressed")  # never ended
        tracer.begin("bus_txn")  # never ended
        tracer.end(outer)
        assert tracer.depth == 0
        kept = tracer.begin(MEM_OP, "kept 2")
        assert not isinstance(kept, _SuppressedSpan)
        tracer.end(kept)


# -- cooperative peek/skip protocol ------------------------------------------


class TestCooperativeSampling:
    def test_peek_consumes_nothing(self):
        tracer = Tracer(sample_interval=3, sample_kinds=(MEM_OP,))
        for _ in range(5):
            assert tracer.next_root_kept(MEM_OP)
        tracer.end(tracer.begin(MEM_OP, "root 0"))
        assert not tracer.next_root_kept(MEM_OP)

    def test_skip_root_consumes_one_slot(self):
        tracer = Tracer(sample_interval=3, sample_kinds=(MEM_OP,))
        decisions = []
        for i in range(9):
            kept = tracer.next_root_kept(MEM_OP)
            decisions.append(kept)
            if kept:
                tracer.end(tracer.begin(MEM_OP, f"root {i}"))
            else:
                tracer.skip_root(MEM_OP)
        assert decisions == [True, False, False] * 3

    def test_cooperative_matches_uncooperative_cadence(self):
        """Peek/skip and plain begin/end must keep the same roots."""
        interval = 4

        coop = Tracer(sample_interval=interval, sample_kinds=(MEM_OP,))
        kept_coop = []
        for i in range(17):
            if coop.next_root_kept(MEM_OP):
                kept_coop.append(i)
                coop.end(coop.begin(MEM_OP, f"root {i}"))
            else:
                coop.skip_root(MEM_OP)

        plain = Tracer(sample_interval=interval, sample_kinds=(MEM_OP,))
        run_roots(plain, 17)
        kept_plain = [int(s.name.split()[1]) for s in plain.of_kind(MEM_OP)]

        assert kept_coop == kept_plain

    def test_batched_skip_roots_matches_cadence(self):
        """A countdown loop that batch-syncs via ``skip_roots`` (the
        timing simulator's protocol) keeps the same roots as plain
        begin/end."""
        interval = 4

        batched = Tracer(sample_interval=interval, sample_kinds=(MEM_OP,))
        countdown = 0
        pending = 0
        kept_batched = []
        for i in range(17):
            if countdown:
                countdown -= 1
                pending += 1
            else:
                batched.skip_roots(MEM_OP, pending)
                pending = 0
                countdown = interval - 1
                kept_batched.append(i)
                batched.end(batched.begin(MEM_OP, f"root {i}"))

        plain = Tracer(sample_interval=interval, sample_kinds=(MEM_OP,))
        run_roots(plain, 17)
        kept_plain = [int(s.name.split()[1]) for s in plain.of_kind(MEM_OP)]

        assert kept_batched == kept_plain
        # Both tracers consumed the same number of sampling slots.
        batched.skip_roots(MEM_OP, pending)
        assert batched._sample_seen[MEM_OP] == plain._sample_seen[MEM_OP]

    def test_peek_false_inside_suppressed_subtree(self):
        tracer = Tracer(sample_interval=2, sample_kinds=(MEM_OP,))
        tracer.end(tracer.begin(MEM_OP, "kept"))
        root = tracer.begin(MEM_OP, "suppressed")
        assert not tracer.next_root_kept("anything")
        tracer.end(root)

    def test_interval_one_keeps_everything(self):
        tracer = Tracer(sample_interval=1, sample_kinds=(MEM_OP,))
        run_roots(tracer, 6)
        assert len(tracer.of_kind(MEM_OP)) == 6
        assert tracer.next_root_kept(MEM_OP)


# -- production wiring -------------------------------------------------------


class TestProductionConfig:
    def test_production_constants_are_bounded(self):
        assert PRODUCTION_TRACE_CAPACITY > 0
        assert PRODUCTION_SAMPLE_INTERVAL > 1

    def test_telemetry_passes_knobs_to_tracer(self):
        tel = Telemetry(
            capacity=PRODUCTION_TRACE_CAPACITY,
            sample_interval=PRODUCTION_SAMPLE_INTERVAL,
        )
        assert tel.tracer.capacity == PRODUCTION_TRACE_CAPACITY
        assert tel.tracer.sample_interval == PRODUCTION_SAMPLE_INTERVAL
        snap = tel.snapshot()
        assert snap["sample_interval"] == PRODUCTION_SAMPLE_INTERVAL

    def test_default_telemetry_records_everything(self):
        tel = Telemetry()
        assert tel.tracer.capacity is None
        assert tel.tracer.sample_interval == 1
