"""Flight recorder: bounded ring, atomic dumps, quarantine post-mortems.

The unit tests pin the recorder's own mechanics; the end-to-end test is
the acceptance path for the observability stack — a chaos-seeded
campaign quarantines a point and the flight dumps surface on the
``PointOutcome``, in the result store's quarantine namespace, and in a
schema-valid NDJSON stream.
"""

import json
import os

from repro.harness.chaos import ChaosPlan
from repro.harness.resultstore import ResultStore, point_key
from repro.harness.supervisor import (
    QUARANTINED,
    BackoffPolicy,
    SupervisorConfig,
    run_campaign,
)
from repro.telemetry.flight import (
    DEFAULT_CAPACITY,
    SPAN_TAIL,
    FlightRecorder,
    load_point_records,
    purge,
    record_path,
)

FAST = BackoffPolicy(base=0.0)


# -- ring mechanics ----------------------------------------------------------


def test_ring_is_bounded_and_counts_drops(tmp_path):
    recorder = FlightRecorder(str(tmp_path), point=0, attempt=1, capacity=4)
    for index in range(10):
        recorder.note("step", index=index)
    assert recorder.dropped == 6
    path = recorder.flush()
    record = json.loads(open(path).read())
    assert record["dropped"] == 6
    assert [entry["index"] for entry in record["entries"]] == [6, 7, 8, 9]


def test_default_capacity_matches_constant(tmp_path):
    recorder = FlightRecorder(str(tmp_path), point=0, attempt=1)
    for _ in range(DEFAULT_CAPACITY + 5):
        recorder.note("step")
    assert recorder.dropped == 5


def test_flush_writes_schema_and_identity(tmp_path):
    recorder = FlightRecorder(str(tmp_path), point=3, attempt=2)
    recorder.note("attempt_started", benchmark="compress")
    path = recorder.flush()
    assert path == record_path(str(tmp_path), 3, 2)
    assert path.endswith("point-0003/attempt-02.json")
    record = json.loads(open(path).read())
    assert record["schema"] == 1
    assert record["point"] == 3
    assert record["attempt"] == 2
    assert record["pid"] == os.getpid()
    assert record["entries"][0]["kind"] == "attempt_started"
    # No leftover temp files: the dump landed via atomic rename.
    names = os.listdir(os.path.dirname(path))
    assert names == ["attempt-02.json"]


def test_reflush_overwrites_in_place(tmp_path):
    recorder = FlightRecorder(str(tmp_path), point=0, attempt=1)
    recorder.note("attempt_started")
    recorder.flush()
    recorder.note("attempt_finished")
    path = recorder.flush()
    record = json.loads(open(path).read())
    kinds = [entry["kind"] for entry in record["entries"]]
    assert kinds == ["attempt_started", "attempt_finished"]


def test_span_tail_is_bounded(tmp_path):
    recorder = FlightRecorder(str(tmp_path), point=0, attempt=1)
    spans = [{"kind": "mem_op", "id": index} for index in range(50)]
    recorder.note_span_tail({"spans": spans, "dropped_spans": 7})
    recorder.note_span_tail(None)  # telemetry off: no entry
    recorder.note_span_tail({"spans": []})  # empty trace: no entry
    path = recorder.flush()
    entries = json.loads(open(path).read())["entries"]
    assert len(entries) == 1
    tail = entries[0]
    assert tail["kind"] == "span_tail"
    assert len(tail["spans"]) == SPAN_TAIL
    assert tail["spans"][-1]["id"] == 49
    assert tail["total_spans"] == 50
    assert tail["dropped_spans"] == 7


# -- collection --------------------------------------------------------------


def test_load_point_records_orders_by_attempt(tmp_path):
    root = str(tmp_path)
    for attempt in (2, 1):
        recorder = FlightRecorder(root, point=5, attempt=attempt)
        recorder.note("attempt_started")
        recorder.flush()
    records = load_point_records(root, 5)
    assert [record["attempt"] for record in records] == [1, 2]
    assert load_point_records(root, 6) == []  # no directory: no failure


def test_load_point_records_skips_garbage(tmp_path):
    root = str(tmp_path)
    recorder = FlightRecorder(root, point=0, attempt=1)
    recorder.note("attempt_started")
    recorder.flush()
    point_dir = os.path.dirname(record_path(root, 0, 1))
    with open(os.path.join(point_dir, "attempt-02.json"), "w") as handle:
        handle.write("{half a record")
    with open(os.path.join(point_dir, "notes.txt"), "w") as handle:
        handle.write("not a dump")
    records = load_point_records(root, 0)
    assert [record["attempt"] for record in records] == [1]


def test_purge_removes_tree(tmp_path):
    root = str(tmp_path / "flight")
    FlightRecorder(root, point=0, attempt=1).flush()
    assert os.path.isdir(root)
    purge(root)
    assert not os.path.exists(root)
    purge(root)  # idempotent


# -- end to end: chaos -> quarantine -> post-mortems everywhere --------------


def test_quarantine_attaches_flight_records_everywhere(tmp_path):
    from repro.harness.experiments import figure19_specs
    from repro.telemetry.stream import read_stream, validate_stream_file

    specs = figure19_specs(benchmarks=("compress",), scale=0.01)
    stream_path = tmp_path / "campaign.ndjson"
    plan = ChaosPlan(raises=((0, 0), (0, 1)))
    report = run_campaign(
        specs,
        SupervisorConfig(
            workers=1,
            chaos=plan,
            retries=1,
            backoff=FAST,
            resume=True,
            store_root=str(tmp_path / "store"),
            stream_path=str(stream_path),
        ),
    )

    # The outcome carries one dump per attempt, each proving the
    # attempt started and died on the injected exception.
    assert not report.ok
    outcome = report.outcomes[0]
    assert outcome.status == QUARANTINED
    assert outcome.flight is not None and len(outcome.flight) == 2
    for attempt, record in enumerate(outcome.flight):
        assert record["attempt"] == attempt
        kinds = [entry["kind"] for entry in record["entries"]]
        assert kinds == ["attempt_started", "exception"]
        assert "chaos" in record["entries"][1]["error"]

    # The store's quarantine namespace has the same post-mortem, kept
    # apart from the pickle result cache so resume can never serve it.
    store = ResultStore(str(tmp_path / "store"))
    quarantine = store.get_quarantine(point_key(specs[0]))
    assert quarantine is not None
    assert quarantine["attempts"] == 2
    assert len(quarantine["flight"]) == 2
    assert store.get(point_key(specs[0])) is None

    # The stream is schema-valid and narrates the retry + quarantine.
    assert validate_stream_file(str(stream_path)) == []
    events = read_stream(str(stream_path))
    by_kind = {}
    for event in events:
        by_kind.setdefault(event["event"], []).append(event)
    assert len(by_kind["point_retry"]) == 1
    assert by_kind["point_retry"][0]["kind"] == "failures"
    quarantined = by_kind["point_quarantined"][0]
    assert quarantined["point"] == 0
    assert quarantined["flight_records"] == 2
    assert by_kind["campaign_finished"][0]["counters"]["quarantined"] == 1
    # The other four points still delivered.
    assert len(by_kind["point_finished"]) == 4


def test_parallel_timeout_leaves_attempt_started_breadcrumb(tmp_path):
    """A SIGKILLed (timed-out) worker cannot flush anything after the
    stall begins — the pre-execution dump must survive and become the
    post-mortem."""
    from repro.harness.experiments import figure19_specs

    specs = figure19_specs(benchmarks=("compress",), scale=0.01)
    plan = ChaosPlan(stalls=((1, 0, 30.0),))
    report = run_campaign(
        specs,
        SupervisorConfig(
            workers=2,
            chaos=plan,
            retries=0,
            backoff=FAST,
            point_timeout=2.0,
        ),
    )
    assert not report.ok
    outcome = report.outcomes[1]
    assert outcome.status == QUARANTINED
    assert outcome.flight, "timeout quarantine must carry flight dumps"
    kinds = [entry["kind"] for entry in outcome.flight[0]["entries"]]
    assert kinds == ["attempt_started"], (
        "a killed attempt's dump should stop at attempt_started"
    )


def test_plain_campaign_keeps_flight_recorder_off(tmp_path, monkeypatch):
    """No chaos, no timeout, no stream: the no-fault fast path must not
    touch the filesystem (this is what the <3% overhead gate times when
    streaming is off)."""
    import repro.telemetry.flight as flight_module
    from repro.harness.experiments import figure19_specs

    created = []
    original = flight_module.FlightRecorder

    def tracking(*args, **kwargs):
        created.append(args)
        return original(*args, **kwargs)

    # The supervisor imports FlightRecorder lazily from the flight
    # module at attempt time, so patching the source module sees every
    # construction.
    monkeypatch.setattr(flight_module, "FlightRecorder", tracking)
    specs = figure19_specs(benchmarks=("compress",), scale=0.01)
    report = run_campaign(specs[:2], SupervisorConfig(workers=1))
    assert report.ok
    assert created == []
