"""ARBSystem: speculative versioning semantics in the shared buffer."""

import pytest

from repro.arb.system import ARBSystem
from repro.common.config import ARBConfig, CacheGeometry
from repro.common.errors import ProtocolError, ReplacementStall

A = 0x1000


def make_arb(n_rows=16, hit_cycles=1):
    config = ARBConfig(
        n_rows=n_rows,
        hit_cycles=hit_cycles,
        cache_geometry=CacheGeometry(size_bytes=512, associativity=1, line_size=16),
    )
    system = ARBSystem(config)
    for unit in range(system.n_units):
        system.begin_task(unit, unit)
    return system


class TestForwarding:
    def test_closest_previous_stage_supplies(self):
        arb = make_arb()
        arb.store(0, A, 10)
        arb.store(1, A, 11)
        arb.store(3, A, 13)
        assert arb.load(2, A).value == 11

    def test_memory_supplies_when_no_stage(self):
        arb = make_arb()
        arb.memory.write_int(A, 4, 0x77)
        result = arb.load(2, A)
        assert result.value == 0x77
        assert result.from_memory  # cold data cache

    def test_byte_level_disambiguation(self):
        arb = make_arb()
        arb.store(0, A, 0xAA, size=1)
        arb.store(1, A + 1, 0xBB, size=1)
        assert arb.load(2, A, size=2).value == 0xBBAA


class TestViolations:
    def test_late_store_squashes_exposed_load(self):
        arb = make_arb()
        arb.load(2, A)
        result = arb.store(0, A, 5)
        assert result.squashed_ranks == [2, 3]

    def test_intervening_store_shields(self):
        arb = make_arb()
        arb.store(1, A, 1)
        arb.load(2, A)       # reads task 1's value: correct forever
        result = arb.store(0, A, 0)
        assert result.squashed_ranks == []

    def test_own_store_shields_own_load(self):
        arb = make_arb()
        arb.store(2, A, 2)
        arb.load(2, A)
        result = arb.store(0, A, 0)
        assert result.squashed_ranks == []


class TestCommitSquash:
    def test_commit_drains_to_data_cache_in_order(self):
        arb = make_arb()
        arb.store(0, A, 1)
        arb.store(1, A, 2)
        arb.commit_head(0)
        arb.commit_head(1)
        arb.begin_task(0, 4)
        assert arb.load(0, A).value == 2
        arb.drain()
        assert arb.memory.read_int(A, 4) == 2

    def test_commit_requires_head(self):
        arb = make_arb()
        with pytest.raises(ProtocolError):
            arb.commit_head(2)

    def test_squash_clears_stage_entries(self):
        arb = make_arb()
        arb.store(2, A, 7)
        arb.squash_from_rank(2)
        arb.begin_task(2, 2)
        arb.begin_task(3, 3)
        assert arb.load(3, A).value == 0  # the squashed store vanished

    def test_drain_refuses_uncommitted_stores(self):
        arb = make_arb()
        arb.store(1, A, 1)
        with pytest.raises(ProtocolError):
            arb.drain()


class TestCapacity:
    def test_speculative_task_stalls_when_full(self):
        arb = make_arb(n_rows=2)
        arb.store(1, 0x100, 1)
        arb.store(1, 0x200, 2)
        with pytest.raises(ReplacementStall):
            arb.store(1, 0x300, 3)

    def test_head_reclaims_by_squashing_youngest(self):
        arb = make_arb(n_rows=2)
        arb.store(3, 0x100, 1)
        arb.store(3, 0x200, 2)
        result = arb.store(0, 0x300, 3)  # head must not deadlock
        assert 3 in result.squashed_ranks
        assert arb.stats.get("squashes_arb_reclaim") >= 1

    def test_head_load_bypasses_full_buffer(self):
        arb = make_arb(n_rows=2)
        arb.memory.write_int(0x300, 4, 9)
        arb.store(3, 0x100, 1)
        arb.store(3, 0x200, 2)
        assert arb.load(0, 0x300).value == 9  # no stall, no reclaim


class TestTiming:
    def test_every_access_pays_hit_latency(self):
        arb = make_arb(hit_cycles=3)
        arb.store(0, A, 1)
        result = arb.load(0, A, now=100)
        assert result.end_cycle == 103

    def test_miss_adds_memory_penalty(self):
        arb = make_arb(hit_cycles=2)
        result = arb.load(0, 0x2000, now=0)
        assert result.end_cycle == 2 + arb.config.miss_penalty_cycles
