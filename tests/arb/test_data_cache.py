"""Shared direct-mapped data cache behind the ARB."""

from repro.arb.data_cache import SharedDataCache
from repro.common.config import CacheGeometry
from repro.mem.main_memory import MainMemory


def make_cache():
    memory = MainMemory()
    geometry = CacheGeometry(size_bytes=256, associativity=1, line_size=16)
    return SharedDataCache(geometry, memory), memory


def test_read_miss_fills_from_memory():
    cache, memory = make_cache()
    memory.write_int(0x100, 4, 0x42)
    data, hit = cache.read(0x100, 4)
    assert not hit
    assert int.from_bytes(data, "little") == 0x42
    _, hit = cache.read(0x100, 4)
    assert hit


def test_write_allocates_and_dirties():
    cache, memory = make_cache()
    hit = cache.write(0x100, (0x7).to_bytes(4, "little"))
    assert not hit
    data, hit = cache.read(0x100, 4)
    assert hit and int.from_bytes(data, "little") == 7


def test_conflict_eviction_writes_back_dirty():
    cache, memory = make_cache()
    cache.write(0x000, (11).to_bytes(4, "little"))
    # Same set in a 256B direct-mapped cache: +256 bytes.
    cache.read(0x100, 4)
    assert memory.read_int(0x000, 4) == 11
    assert cache.stats.get("dcache_writebacks") == 1


def test_drain_flushes_dirty_lines():
    cache, memory = make_cache()
    cache.write(0x40, (9).to_bytes(4, "little"))
    cache.drain()
    assert memory.read_int(0x40, 4) == 9
