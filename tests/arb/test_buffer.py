"""ARB row/stage storage."""

import pytest

from repro.arb.buffer import AddressResolutionBuffer, ARBEntry, ARBRow
from repro.common.errors import ConfigError, ProtocolError


def test_allocate_and_lookup():
    arb = AddressResolutionBuffer(4)
    row = arb.lookup_or_allocate(0x100)
    assert row.word_addr == 0x100
    assert arb.lookup(0x100) is row
    assert arb.occupancy() == 1


def test_full_buffer_returns_none():
    arb = AddressResolutionBuffer(1)
    arb.lookup_or_allocate(0x100)
    assert arb.lookup_or_allocate(0x200) is None


def test_existing_row_found_even_when_full():
    arb = AddressResolutionBuffer(1)
    first = arb.lookup_or_allocate(0x100)
    assert arb.lookup_or_allocate(0x100) is first


def test_entry_for_creates_once():
    row = ARBRow(word_addr=0x100)
    entry = row.entry_for(3)
    entry.store_mask = 0b1111
    assert row.entry_for(3) is entry


def test_release_if_empty():
    arb = AddressResolutionBuffer(4)
    row = arb.lookup_or_allocate(0x100)
    row.entry_for(0).load_mask = 1
    arb.release_if_empty(0x100)
    assert arb.lookup(0x100) is not None  # not empty: kept
    row.entries[0].load_mask = 0
    arb.release_if_empty(0x100)
    assert arb.lookup(0x100) is None


def test_clear_rank_drops_entries_and_empty_rows():
    arb = AddressResolutionBuffer(4)
    row = arb.lookup_or_allocate(0x100)
    row.entry_for(5).store_mask = 1
    row.entry_for(6).store_mask = 1
    arb.clear_rank(5)
    assert 5 not in arb.lookup(0x100).entries
    arb.clear_rank(6)
    assert arb.lookup(0x100) is None


def test_validate_window():
    arb = AddressResolutionBuffer(4)
    arb.lookup_or_allocate(0x100).entry_for(5).load_mask = 1
    arb.validate_window([5, 6])
    with pytest.raises(ProtocolError):
        arb.validate_window([6])


def test_zero_rows_rejected():
    with pytest.raises(ConfigError):
        AddressResolutionBuffer(0)


def test_entry_empty_property():
    entry = ARBEntry()
    assert entry.empty
    entry.load_mask = 1
    assert not entry.empty
