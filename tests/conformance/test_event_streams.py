"""Conformance corpus: live event streams must match the pinned fixtures.

A failure here means the protocol's observable behavior changed on the
fixed corpus workload. If the change is intentional, regenerate the
fixtures (``PYTHONPATH=src python tools/gen_conformance.py``) and commit
the diff with it; if not, the assertion message points at the first
diverging event.
"""

import os

import pytest

from repro.harness.conformance import (
    corpus_digests,
    event_stream,
    first_divergence,
    stream_digest,
)
from repro.svc.designs import DESIGNS

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture_stream(design):
    path = os.path.join(FIXTURES, f"{design}.events")
    with open(path) as handle:
        return handle.read().splitlines()


@pytest.mark.parametrize("design", DESIGNS)
def test_event_stream_matches_fixture(design):
    expected = _fixture_stream(design)
    actual = event_stream(design)
    assert actual == expected, (
        f"{design} protocol event stream diverged from the pinned corpus "
        f"({len(expected)} events pinned, {len(actual)} produced).\n"
        + first_divergence(expected, actual)
        + "\nIf intentional: PYTHONPATH=src python tools/gen_conformance.py"
    )


def test_digest_file_matches_fixture_streams():
    """digests.txt is derived data; it must agree with the .events files."""
    path = os.path.join(FIXTURES, "digests.txt")
    with open(path) as handle:
        lines = [l for l in handle.read().splitlines() if not l.startswith("#")]
    pinned = dict(line.split() for line in lines)
    assert set(pinned) == set(DESIGNS)
    for design in DESIGNS:
        assert pinned[design] == stream_digest(_fixture_stream(design))


def test_streams_are_deterministic():
    design = "final"
    assert event_stream(design) == event_stream(design)


def test_tiers_are_distinguishable():
    """The corpus is rich enough that optimizations show up in it: no
    tier's stream collapses into base's."""
    digests = corpus_digests()
    assert digests["base"] not in {
        digests[d] for d in DESIGNS if d != "base"
    }
