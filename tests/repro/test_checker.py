"""Tests for the runtime invariant checker (repro.check), including the
end-to-end bug-catching drill: seed a protocol bug, watch the checker
fire, capture the failure, shrink it to a minimal reproducer and replay
it deterministically."""

import pytest

from conftest import make_svc, small_geometry
from repro.check import InvariantChecker
from repro.common.config import CacheGeometry, SVCConfig
from repro.common.errors import InvariantViolation, ProtocolError
from repro.faults import FaultPlan
from repro.hier.task import MemOp, TaskProgram
from repro.replay import Case, FailureCapture, run_case, shrink_case
from repro.svc.designs import design_config
from repro.svc.system import SVCSystem

A = 0x1000


class TestBinding:
    def test_bind_requires_an_event_log(self):
        system = SVCSystem(design_config("final", SVCConfig(
            geometry=small_geometry(),
        )))
        assert system.event_log is None
        with pytest.raises(ProtocolError):
            InvariantChecker().bind(system)

    def test_checker_kwarg_creates_event_log_and_audits(self, svc):
        assert svc.event_log is not None
        before = svc.checker.checks  # begin_task events already audited
        svc.store(0, A, 1)
        assert svc.checker.checks > before

    def test_no_checker_is_the_default_zero_overhead_path(self):
        system = SVCSystem(design_config("final", SVCConfig(
            geometry=small_geometry(),
        )))
        assert system.checker is None
        assert system.event_log is None  # nothing to emit to, nothing runs
        system.begin_task(0, 0)
        system.store(0, A, 7)
        assert system.load(0, A).value == 7


class TestDetection:
    def test_flags_double_exclusivity(self, svc):
        svc.store(0, A, 1)
        svc.load(1, A)
        entries = svc.vcl._entries(A)
        for line in entries.values():
            line.exclusive = True  # corrupt: two caches both claim X
        with pytest.raises(InvariantViolation) as excinfo:
            svc.checker.check_svc(line_addr=A)
        assert excinfo.value.invariant == "x-unique"

    def test_first_violation_is_retained_for_capture(self, svc):
        svc.store(0, A, 1)
        svc.load(1, A)
        for line in svc.vcl._entries(A).values():
            line.exclusive = True
        with pytest.raises(InvariantViolation):
            svc.checker.check_svc(line_addr=A)
        # check_svc() raises directly; on_event is where retention lives
        assert svc.checker.last_violation is None
        event = type("E", (), {"kind": "bus", "detail": {"line_addr": A}})
        with pytest.raises(InvariantViolation):
            svc.checker.on_event(event)
        assert svc.checker.last_violation.invariant == "x-unique"


class TestTornTransactionScans:
    """Full-state scans must not observe the middle of a bus
    transaction: a squash fired mid-window-walk is visible through the
    event log before the requestor's line is patched."""

    def test_scan_is_deferred_while_a_transaction_is_open(self, svc):
        svc.store(0, A, 1)
        checker = svc.checker
        before = checker.checks
        svc._in_transaction = True
        svc.event_log.emit("squash", "test")
        assert checker._deferred_scan
        assert checker.checks == before  # torn snapshot not scanned
        svc._in_transaction = False
        svc.event_log.emit("squash", "test")
        assert not checker._deferred_scan
        assert checker.checks == before + 2  # owed scan + this event's

    def test_line_checks_still_run_mid_transaction(self, svc):
        svc.store(0, A, 1)
        before = svc.checker.checks
        svc._in_transaction = True
        svc.event_log.emit("bus", "test", line_addr=A)
        svc._in_transaction = False
        assert svc.checker.checks == before + 1


def seeded_bug_case():
    """A workload whose VOL gets rebuilt repeatedly — several writers to
    one line plus a forced mid-chain squash — so a broken repair step is
    exercised immediately."""
    tasks = tuple(
        TaskProgram(ops=[MemOp.store(A, rank + 1), MemOp.load(A)])
        for rank in range(5)
    )
    return Case(
        design="final",
        seed=5,
        tasks=tasks,
        geometry=CacheGeometry(size_bytes=256, associativity=2, line_size=16),
        fault_plan=FaultPlan(seed=5, squash_at=((2, 1),)),
    )


def break_vol_repair(monkeypatch):
    """Seed a protocol bug: the lazy VOL repair closes the pointer chain
    into a cycle whenever two or more caches share the line."""
    import repro.svc.vcl as vcl_module

    original = vcl_module.rewrite_pointers

    def cyclic_repair(entries, vol):
        original(entries, vol)
        if len(vol) >= 2:
            entries[vol[-1]].pointer = vol[0]

    monkeypatch.setattr(vcl_module, "rewrite_pointers", cyclic_repair)


class TestSeededBugDrill:
    def test_case_passes_on_the_healthy_protocol(self):
        result = run_case(seeded_bug_case())
        assert result.ok, result.describe()

    def test_checker_catches_capture_shrinks_and_replays(
        self, monkeypatch, tmp_path
    ):
        break_vol_repair(monkeypatch)
        case = seeded_bug_case()

        # 1. The checker catches the seeded bug as a structured violation.
        result = run_case(case)
        assert result.signature == ("invariant", "vol-acyclic")

        # 2. Captured to JSON and loaded back intact.
        path = str(tmp_path / "seeded-bug.json")
        FailureCapture.from_result(case, result).save(path)
        capture = FailureCapture.load(path)
        assert capture.case == case

        # 3. The capture replays deterministically: same signature and
        #    same diagnostic, twice.
        first = run_case(capture.case)
        second = run_case(capture.case)
        assert first.signature == ("invariant", "vol-acyclic")
        assert first.error_message == second.error_message
        assert first.invariant == second.invariant

        # 4. Greedy shrinking yields a <=3-task minimal reproducer that
        #    still fails the same way.
        shrunk, shrunk_result = shrink_case(capture.case)
        assert shrunk_result.signature == ("invariant", "vol-acyclic")
        assert len(shrunk.tasks) <= 3
        assert sum(len(t.memory_ops) for t in shrunk.tasks) <= 4
