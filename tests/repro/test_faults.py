"""Unit tests for the fault-injection subsystem (repro.faults)."""

import pytest

from repro.common.errors import ConfigError
from repro.faults import FaultInjector, FaultPlan, random_fault_plan


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        assert FaultPlan().is_noop
        assert FaultPlan(seed=99).is_noop  # the seed alone injects nothing

    def test_any_fault_dimension_clears_noop(self):
        assert not FaultPlan(squash_rate=0.1).is_noop
        assert not FaultPlan(squash_at=((1, 0),)).is_noop
        assert not FaultPlan(adversarial_victims=True).is_noop
        assert not FaultPlan(delayed_writebacks=2).is_noop

    def test_round_trips_through_json_dict(self):
        plan = FaultPlan(
            seed=7,
            squash_rate=0.05,
            squash_at=((1, 3), (4, 0)),
            adversarial_victims=True,
            mispredict_ranks=(2,),
            mshr_saturation=0.25,
            bus_saturation=0.1,
            delayed_writebacks=3,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(ConfigError):
            FaultPlan(squash_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(mshr_saturation=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(delayed_writebacks=-1)

    def test_named_rng_streams_are_independent_and_stable(self):
        plan = FaultPlan(seed=3)
        a1 = [plan.rng("squash").random() for _ in range(3)]
        a2 = [plan.rng("squash").random() for _ in range(3)]
        b = [plan.rng("victims:0").random() for _ in range(3)]
        assert a1 == a2  # same stream name -> same sequence
        assert a1 != b  # different consumers never share a stream

    def test_weakenings_each_drop_exactly_one_dimension(self):
        plan = FaultPlan(
            squash_rate=0.1,
            squash_at=((1, 0), (2, 5)),
            adversarial_victims=True,
            delayed_writebacks=2,
        )
        weaker = plan.weakenings()
        # one per scalar dimension plus one per forced squash entry
        assert len(weaker) == 5
        for variant in weaker:
            assert variant != plan

    def test_noop_plan_has_no_weakenings(self):
        assert FaultPlan().weakenings() == []

    def test_drop_rank_removes_and_shifts(self):
        plan = FaultPlan(
            squash_at=((0, 1), (2, 4), (3, 0)),
            mispredict_ranks=(2, 5),
        )
        dropped = plan.drop_rank(2)
        assert dropped.squash_at == ((0, 1), (2, 0))
        assert dropped.mispredict_ranks == (4,)


class TestFaultInjector:
    def test_forced_squash_fires_exactly_once(self):
        injector = FaultInjector(FaultPlan(squash_at=((1, 2),)))
        assert not injector.forced_squash(1, 1)
        assert injector.forced_squash(1, 2)
        assert not injector.forced_squash(1, 2)  # one-shot

    def test_random_squash_rate_zero_never_fires(self):
        injector = FaultInjector(FaultPlan(squash_rate=0.0))
        assert not any(injector.wants_random_squash() for _ in range(50))

    def test_random_squash_stream_is_reproducible(self):
        plan = FaultPlan(seed=11, squash_rate=0.3)
        draws1 = [FaultInjector(plan).wants_random_squash() for _ in range(1)]
        draws2 = [FaultInjector(plan).wants_random_squash() for _ in range(1)]
        assert draws1 == draws2


class TestRandomFaultPlan:
    def test_is_reproducible(self):
        assert random_fault_plan(5, 8, 6) == random_fault_plan(5, 8, 6)

    def test_allow_squashes_false_yields_no_squashes(self):
        # The EC design assumes no squashes (paper section 3.4).
        for seed in range(30):
            plan = random_fault_plan(seed, 8, 6, allow_squashes=False)
            assert plan.squash_rate == 0.0
            assert plan.squash_at == ()

    def test_forced_squashes_never_target_rank_zero(self):
        # Rank 0 starts as the non-speculative head; plans aim elsewhere.
        for seed in range(30):
            plan = random_fault_plan(seed, 8, 6)
            assert all(rank >= 1 for rank, _ in plan.squash_at)
