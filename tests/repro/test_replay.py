"""Unit tests for deterministic capture, replay and shrinking
(repro.replay)."""

import dataclasses

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ReproError
from repro.faults import FaultPlan
from repro.hier.task import MemOp, TaskProgram
from repro.replay import (
    CASE_DESIGNS,
    Case,
    CaseResult,
    FailureCapture,
    _drop_op,
    _shrink_candidates,
    run_case,
    shrink_case,
)

A = 0x1000


def simple_tasks():
    return (
        TaskProgram(ops=[MemOp.store(A, 7), MemOp.load(A)]),
        TaskProgram(ops=[MemOp.load(A), MemOp.store(A + 4, 9)]),
    )


class TestCase:
    def test_rejects_unknown_design(self):
        with pytest.raises(ReproError):
            Case(design="mystery")

    def test_round_trips_through_json_dict(self):
        case = Case(
            design="ecs",
            seed=42,
            tasks=simple_tasks(),
            geometry=CacheGeometry(size_bytes=256, associativity=2, line_size=16),
            squash_probability=0.1,
            fault_plan=FaultPlan(seed=42, squash_at=((1, 0),)),
        )
        rebuilt = Case.from_dict(case.to_dict())
        assert rebuilt == case

    def test_op_dependencies_survive_round_trip(self):
        task = TaskProgram(
            ops=[
                MemOp.load(A),
                MemOp.store(A + 4, 0, value_deps=(0,)),
            ]
        )
        case = Case(tasks=(task,))
        rebuilt = Case.from_dict(case.to_dict())
        assert rebuilt.tasks[0].ops[1].value_deps == (0,)


class TestRunCase:
    @pytest.mark.parametrize("design", CASE_DESIGNS)
    def test_clean_case_passes_on_every_design(self, design):
        result = run_case(Case(design=design, seed=1, tasks=simple_tasks()))
        assert result.ok, result.describe()

    def test_is_deterministic(self):
        case = Case(
            design="final",
            seed=9,
            tasks=simple_tasks(),
            fault_plan=FaultPlan(seed=9, squash_at=((1, 1),)),
        )
        first = run_case(case)
        second = run_case(case)
        assert first.ok and second.ok
        assert first.report.load_values == second.report.load_values

    def test_passing_case_has_no_signature(self):
        result = run_case(Case(tasks=simple_tasks()))
        assert result.signature is None


class TestFailureCapture:
    def failing_result(self):
        return CaseResult(
            ok=False,
            error_kind="invariant",
            error_type="InvariantViolation",
            error_message="[x-unique] two suppliers",
            invariant={"invariant": "x-unique", "message": "two suppliers"},
        )

    def test_refuses_passing_case(self):
        with pytest.raises(ReproError):
            FailureCapture.from_result(Case(), CaseResult(ok=True))

    def test_save_load_round_trip(self, tmp_path):
        case = Case(design="rl", seed=3, tasks=simple_tasks())
        capture = FailureCapture.from_result(case, self.failing_result())
        path = str(tmp_path / "capture.json")
        capture.save(path)
        loaded = FailureCapture.load(path)
        assert loaded.case == case
        assert loaded.signature == ("invariant", "x-unique")
        assert loaded.failure["message"] == "[x-unique] two suppliers"

    def test_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ReproError):
            FailureCapture.from_dict({"format": 999, "case": {}, "failure": {}})


class TestShrink:
    """Shrink mechanics on the pure helpers; the full capture-shrink-
    replay loop on a live protocol bug is exercised in test_checker.py."""

    def test_shrink_requires_a_failing_case(self):
        with pytest.raises(ReproError):
            shrink_case(Case(tasks=simple_tasks()))

    def test_drop_op_reindexes_dependencies(self):
        task = TaskProgram(
            ops=[
                MemOp.load(A),
                MemOp.load(A + 4),
                MemOp.store(A + 8, 0, value_deps=(0, 1)),
            ]
        )
        trimmed = _drop_op(task, 0)
        # Op 0 is gone: the dependency on it vanishes and the dependency
        # on old op 1 (now op 0) shifts down.
        assert len(trimmed.ops) == 2
        assert trimmed.ops[1].value_deps == (0,)

    def test_candidates_cover_tasks_ops_and_faults(self):
        case = Case(
            tasks=simple_tasks(),
            fault_plan=FaultPlan(squash_rate=0.1),
        )
        labels = [label for label, _ in _shrink_candidates(case)]
        assert "drop task 1" in labels
        assert any(label.startswith("drop task 0 op") for label in labels)
        assert "weaken faults" in labels

    def test_dropping_a_task_shifts_fault_plan_ranks(self):
        case = Case(
            tasks=simple_tasks() + simple_tasks(),
            fault_plan=FaultPlan(squash_at=((1, 0), (3, 1))),
        )
        by_label = dict(_shrink_candidates(case))
        shrunk = by_label["drop task 1"]
        assert len(shrunk.tasks) == 3
        assert shrunk.fault_plan.squash_at == ((2, 1),)


class TestScriptedCases:
    """Cases with an explicit schedule script (model-checker captures)."""

    def _scripted(self, script, **overrides):
        params = dict(
            design="final",
            tasks=simple_tasks(),
            schedule="script",
            n_caches=2,
            check_invariants=True,
            script=tuple(script),
        )
        params.update(overrides)
        return Case(**params)

    def test_script_and_mutation_round_trip(self):
        case = self._scripted(
            [("op", 0), ("op", 1)], mutation="no_violation_squash"
        )
        rebuilt = Case.from_dict(case.to_dict())
        assert rebuilt == case
        assert "script[2]" in case.describe()
        assert "no_violation_squash" in case.describe()

    def test_clean_scripted_case_passes(self):
        result = run_case(self._scripted([("op", 1), ("op", 0)]))
        assert result.ok, result.describe()

    def test_scripted_replay_is_deterministic(self):
        case = self._scripted([("op", 1), ("op", 0)])
        assert (
            run_case(case).report.load_values
            == run_case(case).report.load_values
        )

    def test_candidates_drop_script_actions(self):
        case = self._scripted([("op", 0), ("op", 1), ("commit", 0)])
        by_label = dict(_shrink_candidates(case))
        shrunk = by_label["drop script action 1"]
        assert shrunk.script == (("op", 0), ("commit", 0))

    def test_dropping_a_task_renumbers_script_ranks(self):
        case = self._scripted([("op", 0), ("op", 1), ("commit", 0)])
        by_label = dict(_shrink_candidates(case))
        shrunk = by_label["drop task 0"]
        # Rank 0's actions vanish; rank 1 becomes rank 0.
        assert shrunk.script == (("op", 0),)
