"""Synthetic workload generator: determinism and structural properties."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.hier.task import OpKind
from repro.workloads.generator import WorkloadSpec, _AddressStreams, generate_tasks


def spec(**overrides):
    params = dict(name="test", n_tasks=50, ops_per_task_mean=20, seed=7)
    params.update(overrides)
    return WorkloadSpec(**params)


def test_deterministic_generation():
    a = generate_tasks(spec())
    b = generate_tasks(spec())
    assert len(a) == len(b)
    for task_a, task_b in zip(a, b):
        assert task_a.ops == task_b.ops
        assert task_a.mispredicted == task_b.mispredicted


def test_seed_changes_stream():
    a = generate_tasks(spec())
    b = generate_tasks(spec(), seed=99)
    assert any(x.ops != y.ops for x, y in zip(a, b))


def test_memory_fraction_respected():
    tasks = generate_tasks(spec(memory_fraction=0.5, n_tasks=200))
    ops = [op for task in tasks for op in task.ops]
    mem = sum(1 for op in ops if op.kind != OpKind.COMPUTE)
    assert 0.4 < mem / len(ops) < 0.6


def test_zero_memory_fraction_is_all_compute():
    tasks = generate_tasks(spec(memory_fraction=0.0))
    assert all(op.kind == OpKind.COMPUTE for t in tasks for op in t.ops)


def test_first_task_never_mispredicted():
    tasks = generate_tasks(spec(mispredict_rate=1.0))
    assert not tasks[0].mispredicted
    assert all(t.mispredicted for t in tasks[1:])


def test_region_layout_contiguous():
    streams = _AddressStreams(spec(working_set_bytes=10 * 1024, shared_bytes=3 * 1024))
    assert streams.shared_base == streams.stream_base + 10 * 1024
    assert streams.read_only_base == streams.shared_base + 3 * 1024
    assert streams.private_base > streams.read_only_base


def test_stream_task_alignment():
    streams = _AddressStreams(spec())
    streams.stream_pointer = 5  # mid-line
    streams.start_task()
    assert streams.stream_pointer % 4 == 0


def test_addresses_stay_in_their_regions():
    s = spec(n_tasks=100, memory_fraction=1.0)
    tasks = generate_tasks(s)
    streams = _AddressStreams(s)
    for task in tasks:
        for op in task.ops:
            if op.kind == OpKind.COMPUTE:
                continue
            assert streams.stream_base <= op.addr < streams.private_base + 64 * 1024


def test_region_probabilities_validated():
    with pytest.raises(ConfigError):
        spec(p_private=0.6, p_shared=0.3, p_read_only=0.3)


def test_scaled_multiplies_tasks():
    assert spec().scaled(2.0).n_tasks == 100
    assert spec().scaled(0.01).n_tasks == 4  # floor of 4


def test_dependences_reference_earlier_ops():
    tasks = generate_tasks(spec(n_tasks=100))
    for task in tasks:
        for index, op in enumerate(task.ops):
            assert all(0 <= dep < index for dep in op.depends_on)
