"""The trace-kernel corpus: correctness, determinism, golden files,
and the ``trace:<file>`` workload scheme."""

import subprocess
import sys
from pathlib import Path

import pytest

from conftest import make_svc
from repro.common.errors import ConfigError
from repro.hier.driver import SpeculativeExecutionDriver
from repro.oracle.sequential import SequentialOracle, verify_run
from repro.workloads.traceio import dump_tasks, load_tasks
from repro.workloads.traceprog import (
    TRACE_KERNELS,
    build_kernel,
    is_trace_workload,
    resolve_tasks,
    trace_digest,
    trace_path,
    trace_repeats,
    trace_tasks,
)

REPO = Path(__file__).resolve().parents[2]
TRACES = REPO / "examples" / "traces"


def _word(image, addr):
    return sum(image.get(addr + i, 0) << (8 * i) for i in range(4))


# -- kernel semantics ---------------------------------------------------------


def test_registry_has_the_six_kernels():
    assert sorted(TRACE_KERNELS) == [
        "histogram", "lockfree_counter", "memcpy",
        "pointer_chase", "producer_consumer", "strided_sum",
    ]


@pytest.mark.parametrize("name", sorted(TRACE_KERNELS))
def test_kernel_is_deterministic(name):
    first = build_kernel(name)
    second = build_kernel(name)
    assert [t.ops for t in first] == [t.ops for t in second]
    assert [t.name for t in first] == [t.name for t in second]


@pytest.mark.parametrize("name", sorted(TRACE_KERNELS))
def test_kernel_runs_speculatively_and_matches_oracle(name):
    tasks = build_kernel(name)
    system = make_svc("final")
    report = SpeculativeExecutionDriver(system, tasks, seed=7).run()
    oracle = SequentialOracle().run(tasks)
    assert verify_run(report, oracle, system.memory) == []


def test_memcpy_copies_every_word():
    image = SequentialOracle().run(build_kernel("memcpy")).memory_image
    for i in range(24):
        src = _word(image, 0x1_0000 + 4 * i)
        assert src != 0
        assert _word(image, 0x2_0000 + 4 * i) == src


def test_lockfree_counter_counts_every_increment():
    image = SequentialOracle().run(build_kernel("lockfree_counter")).memory_image
    assert _word(image, 0x3_0000) == 12 * 2


def test_strided_sum_accumulates_the_stream():
    image = SequentialOracle().run(build_kernel("strided_sum")).memory_image
    total = sum(_word(image, 0x1_0000 + 4 * i * 3) for i in range(24))
    assert total != 0
    assert _word(image, 0x3_0000) == total


def test_histogram_bins_sum_to_input_count():
    image = SequentialOracle().run(build_kernel("histogram")).memory_image
    counts = [_word(image, 0x6_0000 + 4 * b) for b in range(5)]
    assert sum(counts) == 32
    assert all(count >= 0 for count in counts)


def test_producer_consumer_publishes_every_value():
    image = SequentialOracle().run(build_kernel("producer_consumer")).memory_image
    for i in range(8):
        data = _word(image, 0x1_0000 + 16 * i)
        assert data != 0
        assert _word(image, 0x5_0000 + 16 * i) == 1  # flag
        # The consumer publishes data + 1 (store value 1 + loaded dep).
        assert _word(image, 0x2_0000 + 16 * i) == data + 1


def test_unknown_kernel_rejected():
    with pytest.raises(ConfigError, match="unknown trace kernel"):
        build_kernel("quicksort")


# -- golden corpus ------------------------------------------------------------


def test_bundled_traces_are_regeneration_stable():
    """tools/gen_traces.py --check proves every bundled trace file is
    byte-identical to what the generator produces today."""
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "gen_traces.py"), "--check"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.parametrize("name", sorted(TRACE_KERNELS))
def test_bundled_trace_loads_back_to_the_kernel(name):
    loaded = load_tasks(TRACES / f"{name}.jsonl")
    built = build_kernel(name)
    assert [t.ops for t in loaded] == [t.ops for t in built]
    assert [t.name for t in loaded] == [t.name for t in built]


# -- the trace:<file> workload scheme ----------------------------------------


def test_trace_prefix_parsing():
    assert is_trace_workload("trace:a/b.jsonl")
    assert not is_trace_workload("compress")
    assert trace_path("trace:a/b.jsonl") == "a/b.jsonl"


def test_trace_scale_repeats_the_whole_program():
    assert trace_repeats(1.0) == 1
    assert trace_repeats(0.02) == 1  # never truncates below one run
    assert trace_repeats(2.6) == 3

    path = TRACES / "memcpy.jsonl"
    base = trace_tasks(str(path), scale=1)
    tripled = trace_tasks(str(path), scale=3)
    assert len(tripled) == 3 * len(base)
    assert tripled[0].name == base[0].name
    assert tripled[len(base)].name == f"{base[0].name}@1"
    assert [t.ops for t in tripled[: len(base)]] == [t.ops for t in base]


def test_resolve_tasks_routes_both_schemes():
    trace = resolve_tasks(f"trace:{TRACES / 'memcpy.jsonl'}", 1)
    assert trace[0].name == "init"
    spec = resolve_tasks("compress", 0.02)
    assert len(spec) > 0


def test_empty_trace_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("\n")
    with pytest.raises(ConfigError, match="no tasks"):
        trace_tasks(str(path))


# -- result-store keys track trace content -----------------------------------


def test_point_key_tracks_trace_content(tmp_path):
    from repro.common.config import SVCConfig
    from repro.harness.parallel import PointSpec
    from repro.harness.resultstore import point_key
    from repro.svc.designs import final_design

    path = tmp_path / "workload.jsonl"
    dump_tasks(build_kernel("memcpy"), path)
    spec = PointSpec(
        f"trace:{path}", "svc_4x8k", "svc",
        final_design(SVCConfig.paper_32kb()), 1.0, None,
    )
    before = point_key(spec)
    assert before == point_key(spec)  # stable

    dump_tasks(build_kernel("histogram"), path)
    assert point_key(spec) != before  # content change invalidates

    assert trace_digest(str(path)) == trace_digest(str(path))
