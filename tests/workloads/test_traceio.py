"""Trace serialization round-trips and rejects malformed input."""

import pytest

from repro.common.errors import ConfigError
from repro.hier.task import MemOp, TaskProgram
from repro.workloads.generator import WorkloadSpec, generate_tasks
from repro.workloads.traceio import dump_tasks, load_tasks


def test_round_trip_hand_built(tmp_path):
    tasks = [
        TaskProgram(
            ops=[
                MemOp.load(0x100),
                MemOp.compute(latency=3, depends_on=(0,)),
                MemOp.store(0x104, 7, value_deps=(0,), depends_on=(1,)),
            ],
            name="t0",
        ),
        TaskProgram(ops=[], name=None, mispredicted=True),
    ]
    path = tmp_path / "trace.jsonl"
    dump_tasks(tasks, path)
    loaded = load_tasks(path)
    assert len(loaded) == 2
    assert loaded[0].ops == tasks[0].ops
    assert loaded[0].name == "t0"
    assert loaded[1].mispredicted


def test_round_trip_generated_workload(tmp_path):
    tasks = generate_tasks(WorkloadSpec(name="io", n_tasks=20, seed=3))
    path = tmp_path / "gen.jsonl"
    dump_tasks(tasks, path)
    loaded = load_tasks(path)
    assert [t.ops for t in loaded] == [t.ops for t in tasks]


def test_loaded_trace_drives_a_system(tmp_path):
    from conftest import make_svc
    from repro.hier.driver import SpeculativeExecutionDriver
    from repro.oracle.sequential import SequentialOracle, verify_run

    tasks = [
        TaskProgram(ops=[MemOp.store(0x100, 5)]),
        TaskProgram(ops=[MemOp.load(0x100),
                         MemOp.store(0x104, 1, value_deps=(0,))]),
    ]
    path = tmp_path / "drive.jsonl"
    dump_tasks(tasks, path)
    loaded = load_tasks(path)
    system = make_svc("final")
    report = SpeculativeExecutionDriver(system, loaded, seed=0).run()
    oracle = SequentialOracle().run(loaded)
    assert verify_run(report, oracle, system.memory) == []
    assert system.memory.read_int(0x104, 4) == 6


def test_bad_json_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json}\n")
    with pytest.raises(ConfigError, match="bad JSON"):
        load_tasks(path)


def test_unknown_op_code_rejected(tmp_path):
    path = tmp_path / "bad2.jsonl"
    path.write_text('{"ops": [["Z", 1, 2]]}\n')
    with pytest.raises(ConfigError, match="unknown op code"):
        load_tasks(path)


def test_missing_ops_rejected(tmp_path):
    path = tmp_path / "bad3.jsonl"
    path.write_text('{"name": "x"}\n')
    with pytest.raises(ConfigError, match="malformed"):
        load_tasks(path)


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "blank.jsonl"
    path.write_text('\n{"ops": []}\n\n')
    assert len(load_tasks(path)) == 1


# -- strict decode: every malformed-op shape is rejected with the line -------


def _reject(tmp_path, op_json, match):
    path = tmp_path / "reject.jsonl"
    path.write_text('{"ops": [%s]}\n' % op_json)
    with pytest.raises(ConfigError, match=match):
        load_tasks(path)


def test_load_deps_must_be_a_list(tmp_path):
    _reject(tmp_path, '["L", 0, 4, 7]', "load deps must be a list")


def test_load_deps_must_hold_ints(tmp_path):
    _reject(tmp_path, '["L", 0, 4, ["a"]]', "load deps must contain only ints")
    _reject(tmp_path, '["L", 0, 4, [true]]', "load deps must contain only ints")


def test_load_arity_checked(tmp_path):
    _reject(tmp_path, '["L", 0]', "load op takes")
    _reject(tmp_path, '["L", 0, 4, [], []]', "load op takes")


def test_load_fields_must_be_ints(tmp_path):
    _reject(tmp_path, '["L", "0x100", 4]', "load addr must be an int")
    _reject(tmp_path, '["L", 0, true]', "load size must be an int")


def test_store_arity_checked(tmp_path):
    _reject(tmp_path, '["S", 0, 4]', "store op takes")
    _reject(tmp_path, '["S", 0, 4, 1, [], [], []]', "store op takes")


def test_store_fields_must_be_ints(tmp_path):
    _reject(tmp_path, '["S", null, 4, 1]', "store addr must be an int")
    _reject(tmp_path, '["S", 0, 4, "1"]', "store value must be an int")


def test_store_dep_lists_checked(tmp_path):
    _reject(tmp_path, '["S", 0, 4, 1, 5]', "store value deps must be a list")
    _reject(tmp_path, '["S", 0, 4, 1, [], 3]', "store deps must be a list")
    _reject(tmp_path, '["S", 0, 4, 1, [0.5]]', "store value deps must contain")


def test_compute_arity_and_types_checked(tmp_path):
    _reject(tmp_path, '["C", 1]', "compute op takes")
    _reject(tmp_path, '["C", 1, [], []]', "compute op takes")
    _reject(tmp_path, '["C", 1, 2]', "compute deps must be a list")
    _reject(tmp_path, '["C", "fast", []]', "compute latency must be an int")


def test_op_must_be_a_nonempty_list(tmp_path):
    _reject(tmp_path, '"L"', "op must be a non-empty list")
    _reject(tmp_path, "[]", "op must be a non-empty list")


def test_rejection_names_the_line(tmp_path):
    path = tmp_path / "lines.jsonl"
    path.write_text('{"ops": []}\n{"ops": [["L", 0, 4, false]]}\n')
    with pytest.raises(ConfigError, match="trace line 2"):
        load_tasks(path)


def test_non_object_record_rejected(tmp_path):
    path = tmp_path / "array.jsonl"
    path.write_text("[1, 2, 3]\n")
    with pytest.raises(ConfigError, match="must be an object"):
        load_tasks(path)
