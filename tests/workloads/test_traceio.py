"""Trace serialization round-trips and rejects malformed input."""

import pytest

from repro.common.errors import ConfigError
from repro.hier.task import MemOp, TaskProgram
from repro.workloads.generator import WorkloadSpec, generate_tasks
from repro.workloads.traceio import dump_tasks, load_tasks


def test_round_trip_hand_built(tmp_path):
    tasks = [
        TaskProgram(
            ops=[
                MemOp.load(0x100),
                MemOp.compute(latency=3, depends_on=(0,)),
                MemOp.store(0x104, 7, value_deps=(0,), depends_on=(1,)),
            ],
            name="t0",
        ),
        TaskProgram(ops=[], name=None, mispredicted=True),
    ]
    path = tmp_path / "trace.jsonl"
    dump_tasks(tasks, path)
    loaded = load_tasks(path)
    assert len(loaded) == 2
    assert loaded[0].ops == tasks[0].ops
    assert loaded[0].name == "t0"
    assert loaded[1].mispredicted


def test_round_trip_generated_workload(tmp_path):
    tasks = generate_tasks(WorkloadSpec(name="io", n_tasks=20, seed=3))
    path = tmp_path / "gen.jsonl"
    dump_tasks(tasks, path)
    loaded = load_tasks(path)
    assert [t.ops for t in loaded] == [t.ops for t in tasks]


def test_loaded_trace_drives_a_system(tmp_path):
    from conftest import make_svc
    from repro.hier.driver import SpeculativeExecutionDriver
    from repro.oracle.sequential import SequentialOracle, verify_run

    tasks = [
        TaskProgram(ops=[MemOp.store(0x100, 5)]),
        TaskProgram(ops=[MemOp.load(0x100),
                         MemOp.store(0x104, 1, value_deps=(0,))]),
    ]
    path = tmp_path / "drive.jsonl"
    dump_tasks(tasks, path)
    loaded = load_tasks(path)
    system = make_svc("final")
    report = SpeculativeExecutionDriver(system, loaded, seed=0).run()
    oracle = SequentialOracle().run(loaded)
    assert verify_run(report, oracle, system.memory) == []
    assert system.memory.read_int(0x104, 4) == 6


def test_bad_json_rejected(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("{not json}\n")
    with pytest.raises(ConfigError, match="bad JSON"):
        load_tasks(path)


def test_unknown_op_code_rejected(tmp_path):
    path = tmp_path / "bad2.jsonl"
    path.write_text('{"ops": [["Z", 1, 2]]}\n')
    with pytest.raises(ConfigError, match="unknown op code"):
        load_tasks(path)


def test_missing_ops_rejected(tmp_path):
    path = tmp_path / "bad3.jsonl"
    path.write_text('{"name": "x"}\n')
    with pytest.raises(ConfigError, match="malformed"):
        load_tasks(path)


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "blank.jsonl"
    path.write_text('\n{"ops": []}\n\n')
    assert len(load_tasks(path)) == 1
