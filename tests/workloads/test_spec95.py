"""SPEC95 profiles: validity, distinctness, scaling hooks."""

import pytest

from repro.workloads.spec95 import BENCHMARKS, SPEC95_PROFILES, spec95_tasks


def test_seven_benchmarks():
    assert set(BENCHMARKS) == {
        "compress", "gcc", "vortex", "perl", "ijpeg", "mgrid", "apsi"
    }


def test_profiles_encode_documented_characteristics():
    profiles = SPEC95_PROFILES
    # mgrid: working set far beyond the caches, FP-heavy.
    assert profiles["mgrid"].working_set_bytes > 128 * 1024
    assert profiles["mgrid"].fp_fraction > 0
    # gcc: the branchy one — highest misprediction rate.
    assert profiles["gcc"].mispredict_rate == max(
        p.mispredict_rate for p in profiles.values()
    )
    # perl: biggest read-only reuse.
    assert profiles["perl"].p_read_only == max(
        p.p_read_only for p in profiles.values()
    )
    # compress: most write-shared traffic among integer codes.
    assert profiles["compress"].store_fraction == max(
        p.store_fraction for p in profiles.values()
    )


def test_tasks_generate_and_scale():
    small = spec95_tasks("gcc", scale=0.02)
    tiny_ops = sum(len(t.ops) for t in small)
    assert len(small) >= 4
    assert tiny_ops > 0
    larger = spec95_tasks("gcc", scale=0.05)
    assert len(larger) > len(small)


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        spec95_tasks("linpack")


def test_env_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.02")
    tasks = spec95_tasks("perl")
    assert len(tasks) == max(4, int(SPEC95_PROFILES["perl"].n_tasks * 0.02))
