"""Kernel builders: dataflow wiring and initial images."""

from repro.hier.task import OpKind
from repro.oracle.sequential import SequentialOracle
from repro.workloads.kernels import (
    histogram_kernel,
    pointer_chase_kernel,
    reference_histogram,
    stencil_kernel,
)


def test_histogram_store_depends_on_its_load():
    tasks, _image = histogram_kernel([1, 2, 3], n_bins=4, iterations_per_task=1)
    for task in tasks:
        load_index = next(
            i for i, op in enumerate(task.ops) if op.kind == OpKind.LOAD
        )
        store = next(op for op in task.ops if op.kind == OpKind.STORE)
        assert store.value == 1
        assert store.value_deps == (load_index,)


def test_histogram_oracle_matches_reference():
    values = [5, 1, 5, 9, 13, 1]
    n_bins = 4
    tasks, image = histogram_kernel(values, n_bins)
    oracle = SequentialOracle(initial_image=image)
    result = oracle.run(tasks)
    expected = reference_histogram(values, n_bins)
    for b, count in enumerate(expected):
        assert result.memory_image.get(0x20_0000 + 4 * b, 0) == count


def test_histogram_image_holds_input_array():
    values = [0x01020304]
    _tasks, image = histogram_kernel(values, 2)
    encoded = bytes(image.get(0x10_0000 + b, 0) for b in range(4))
    assert int.from_bytes(encoded, "little") == 0x01020304


def test_stencil_covers_interior_points():
    n = 20
    tasks = stencil_kernel(n, iterations_per_task=4)
    stores = [op for t in tasks for op in t.ops if op.kind == OpKind.STORE]
    written = {op.addr for op in stores}
    assert written == {0x30_0000 + 4 * i for i in range(1, n - 1)}
    # Each store sums exactly its three neighbour loads.
    for op in stores:
        assert len(op.value_deps) == 3
        assert op.value == 0


def test_pointer_chase_nodes_are_padded_apart():
    tasks, image = pointer_chase_kernel([0, 1, 0], updates_per_task=1)
    addrs = {op.addr for t in tasks for op in t.ops if op.kind != OpKind.COMPUTE}
    assert addrs == {0x40_0000, 0x40_0008}
    # Every node got a nonzero initial value.
    assert any(image.get(0x40_0000 + b) for b in range(4))
