"""Loop kernels executed speculatively match their Python reference.

This is the paper's automatic-parallelization pitch made executable:
each kernel is a sequential loop cut into speculative tasks; the SVC
must deliver exactly the sequential result whatever conflicts occur.
"""

import random

import pytest

from conftest import make_svc
from repro.hier.driver import SpeculativeExecutionDriver
from repro.workloads.kernels import (
    histogram_kernel,
    pointer_chase_kernel,
    reference_histogram,
    stencil_kernel,
)

HIST_BASE = 0x20_0000


def run_tasks(system, tasks, image=None, seed=0, squash_probability=0.0):
    if image:
        system.memory.load_image(image.items())
    return SpeculativeExecutionDriver(
        system, tasks, seed=seed, squash_probability=squash_probability
    ).run()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_histogram_matches_reference(seed):
    rng = random.Random(seed)
    values = [rng.randrange(100) for _ in range(60)]
    n_bins = 8
    tasks, image = histogram_kernel(values, n_bins)
    system = make_svc("final")
    run_tasks(system, tasks, image, seed=seed)
    expected = reference_histogram(values, n_bins)
    for b, count in enumerate(expected):
        assert system.memory.read_int(HIST_BASE + 4 * b, 4) == count


def test_histogram_with_heavy_conflicts_squashes_and_recovers():
    values = [3] * 40  # every iteration hits the same bin
    tasks, image = histogram_kernel(values, 8)
    system = make_svc("final")
    report = run_tasks(system, tasks, image, seed=5)
    assert system.memory.read_int(HIST_BASE + 4 * 3, 4) == 40
    # Same-bin increments across adjacent tasks are true dependences:
    # eager consumers must have misspeculated at least once.
    assert report.violation_squashes > 0


def test_stencil_is_violation_free():
    n = 40
    tasks = stencil_kernel(n)
    system = make_svc("final")
    for i in range(n):
        system.memory.write_int(0x10_0000 + 4 * i, 4, i)
    report = run_tasks(system, tasks, seed=2)
    assert report.violation_squashes == 0
    for i in range(1, n - 1):
        assert system.memory.read_int(0x30_0000 + 4 * i, 4) == 3 * i


def test_pointer_chase_updates_every_node():
    rng = random.Random(9)
    chain = [rng.randrange(10) for _ in range(30)]
    tasks, image = pointer_chase_kernel(chain)
    system = make_svc("final")
    run_tasks(system, tasks, image, seed=1)
    visits = {}
    for node in chain:
        visits[node] = visits.get(node, 0) + 1
    for node, count in visits.items():
        addr = 0x40_0000 + 8 * node
        initial = int.from_bytes(
            bytes(image.get(addr + b, 0) for b in range(4)), "little"
        )
        assert system.memory.read_int(addr, 4) == initial + count
