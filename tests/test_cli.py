"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table2", "table3", "fig19", "fig20"):
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_unknown_benchmark_errors(capsys):
    assert main(["table2", "--benchmarks", "linpack"]) == 2
    assert "unknown benchmarks" in capsys.readouterr().err


def test_runs_table2_at_smoke_scale(capsys, tmp_path):
    output = tmp_path / "t2.txt"
    code = main([
        "table2", "--benchmarks", "gcc", "--scale", "0.02",
        "--output", str(output),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "gcc" in out and "(paper)" in out
    assert "gcc" in output.read_text()


def test_runs_figure_series(capsys):
    assert main(["fig19", "--benchmarks", "perl", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "svc_1c" in out and "arb_4c" in out


def test_parser_help_mentions_experiments():
    parser = build_parser()
    assert "table2" in parser.format_help()
