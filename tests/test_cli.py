"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("table2", "table3", "fig19", "fig20"):
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_unknown_benchmark_errors(capsys):
    assert main(["table2", "--benchmarks", "linpack"]) == 2
    assert "unknown benchmarks" in capsys.readouterr().err


def test_runs_table2_at_smoke_scale(capsys, tmp_path):
    output = tmp_path / "t2.txt"
    code = main([
        "table2", "--benchmarks", "gcc", "--scale", "0.02",
        "--output", str(output),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "gcc" in out and "(paper)" in out
    assert "gcc" in output.read_text()


def test_runs_figure_series(capsys):
    assert main(["fig19", "--benchmarks", "perl", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "svc_1c" in out and "arb_4c" in out


def test_parser_help_mentions_experiments():
    parser = build_parser()
    assert "table2" in parser.format_help()


class TestExitCodes:
    """Pin the standardized exit codes: 0 success, 1 run/point failure
    (including quarantined points), 2 usage/config error."""

    def test_success_is_zero(self):
        assert main(["table2", "--benchmarks", "gcc", "--scale", "0.02"]) == 0

    def test_usage_errors_are_two(self, capsys):
        assert main(["nope"]) == 2
        assert main(["table2", "--benchmarks", "linpack"]) == 2
        capsys.readouterr()

    def test_bad_workers_env_is_config_error_two(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        assert main(["table2", "--benchmarks", "gcc", "--scale", "0.02"]) == 2
        err = capsys.readouterr().err
        assert "config error" in err and "'banana'" in err

    def test_bad_timeout_flag_is_config_error_two(self, capsys):
        code = main([
            "table2", "--benchmarks", "gcc", "--scale", "0.02",
            "--timeout", "soon",
        ])
        assert code == 2
        assert "config error" in capsys.readouterr().err

    def test_bad_retries_flag_is_config_error_two(self, capsys):
        code = main([
            "table2", "--benchmarks", "gcc", "--scale", "0.02",
            "--retries", "-1",
        ])
        assert code == 2
        assert "config error" in capsys.readouterr().err

    def test_quarantined_point_is_one(self, capsys):
        # A seeded chaos plan attacks attempt 0 of at least one point;
        # with --retries 0 that point quarantines, so the campaign is
        # partial and must exit 1 while still rendering the survivors.
        code = main([
            "table2", "--benchmarks", "gcc", "--scale", "0.02",
            "--retries", "0", "--chaos", "7",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "PARTIAL CAMPAIGN" in captured.err
        assert "quarantined" in captured.err

    def test_chaos_with_retries_recovers_to_zero(self, capsys):
        code = main([
            "table2", "--benchmarks", "gcc", "--scale", "0.02",
            "--retries", "2", "--chaos", "7",
        ])
        assert code == 0
        capsys.readouterr()


def test_resume_flag_uses_result_store(capsys, tmp_path):
    store = str(tmp_path / "store")
    argv = [
        "table2", "--benchmarks", "gcc", "--scale", "0.02",
        "--resume", "--store", store,
    ]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "2 recomputed" in first.err
    assert main(argv) == 0
    second = capsys.readouterr()
    assert "0 recomputed" in second.err and "2 cached" in second.err
    # Identical rendered output either way: warm results are the same
    # bytes the cold run produced.
    assert first.out.split("==", 2)[-1] == second.out.split("==", 2)[-1]


# -- trace workloads ---------------------------------------------------------


def test_workload_and_benchmarks_are_mutually_exclusive(capsys):
    assert main([
        "table2", "--workload", "gcc", "--benchmarks", "gcc",
    ]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_workload_missing_trace_file_is_usage_error(capsys):
    assert main(["table2", "--workload", "trace:/nope/missing.jsonl"]) == 2
    assert "trace file not found" in capsys.readouterr().err


def test_workload_unknown_name_is_usage_error(capsys):
    assert main(["table2", "--workload", "linpack"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_trace_workload_campaign_with_resume(capsys, tmp_path):
    """The tentpole's end-to-end: a bundled trace kernel sweeps a full
    experiment through the supervised engine, and --resume serves every
    point from the store on the second run."""
    store = str(tmp_path / "store")
    argv = [
        "table2", "--workload", "trace:examples/traces/memcpy.jsonl",
        "--scale", "1", "--resume", "--store", store,
    ]
    assert main(argv) == 0
    first = capsys.readouterr()
    assert "trace:examples/traces/memcpy.jsonl" in first.out
    assert "2 recomputed" in first.err
    assert main(argv) == 0
    second = capsys.readouterr()
    assert "0 recomputed" in second.err and "2 cached" in second.err


def test_spec95_name_accepted_as_workload(capsys):
    assert main(["table2", "--workload", "gcc", "--scale", "0.02"]) == 0
    assert "gcc" in capsys.readouterr().out


# -- bench subcommand --------------------------------------------------------


def test_bench_parser_accepts_documented_flags():
    from repro.bench_cli import build_parser

    args = build_parser().parse_args(
        ["--scale", "0.1", "--repeats", "5", "--gate"]
    )
    assert args.scale == 0.1
    assert args.repeats == 5
    assert args.gate


def test_bench_smoke_run_writes_payload(capsys, tmp_path):
    import json

    out = tmp_path / "bench.json"
    code = main([
        "bench", "--scale", "0.02", "--benchmarks", "compress",
        "--experiments", "fig19", "--repeats", "1",
        "--experiments-only", "--output", str(out),
    ])
    assert code == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["experiments"]["fig19"]["events_per_sec"] > 0
    assert payload["meta"]["scale"] == 0.02


def test_bench_gate_without_baseline_is_config_error(capsys, tmp_path, monkeypatch):
    import repro.bench_cli as bench_cli

    monkeypatch.setattr(bench_cli, "_repo_root", lambda: tmp_path)
    assert main(["bench", "--gate"]) == 2
    assert "no committed baseline" in capsys.readouterr().err


def test_bench_unknown_experiment_is_usage_error(capsys, tmp_path):
    with pytest.raises(SystemExit) as exc:
        main([
            "bench", "--experiments", "nope", "--experiments-only",
            "--output", str(tmp_path / "b.json"),
        ])
    assert exc.value.code == 2
    capsys.readouterr()


# -- campaign event stream flags --------------------------------------------


def test_stream_flag_writes_valid_ndjson(tmp_path, capsys):
    from repro.telemetry.stream import read_stream, validate_stream_file

    path = tmp_path / "campaign.ndjson"
    code = main([
        "fig19", "--benchmarks", "compress", "--scale", "0.02",
        "--stream", str(path),
    ])
    assert code == 0
    capsys.readouterr()
    assert validate_stream_file(str(path)) == []
    events = read_stream(str(path))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "campaign_started"
    assert kinds[-1] == "campaign_finished"
    assert kinds.count("point_started") == 5
    assert kinds.count("point_finished") == 5
    assert "heartbeat" in kinds


def test_progress_flag_renders_campaign_line(capsys):
    code = main([
        "fig19", "--benchmarks", "compress", "--scale", "0.02",
        "--progress",
    ])
    assert code == 0
    err = capsys.readouterr().err
    assert "campaign:" in err
    assert "done" in err


def test_quarantine_mentions_flight_records(capsys):
    code = main([
        "table2", "--benchmarks", "gcc", "--scale", "0.02",
        "--retries", "0", "--chaos", "7",
    ])
    assert code == 1
    assert "flight record(s) attached" in capsys.readouterr().err


# -- report subcommand dispatch ---------------------------------------------


def test_report_dispatch_reaches_report_cli(capsys):
    assert main(["report", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_report_dispatch_end_to_end(tmp_path, capsys):
    code = main([
        "report", "fig19", "--benchmarks", "compress", "--scale", "0.02",
        "--output-dir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "report[md]" in out
    assert (tmp_path / "metrics.prom").exists()
