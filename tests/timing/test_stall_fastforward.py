"""Stall fast-forward: skipped retry probes must be unobservable.

A stalled PU polls every ``_STALL_RETRY`` cycles; the fast-forward skips
the protocol probe while neither the commit/squash progress token nor
``SnoopingBus.free_at`` has moved since the last real failed probe,
replicating the probe's accounting instead. These tests pin the
behavioural contract by differencing full reports (timing, stats,
retry counts) with the fast-forward forced off.
"""

import dataclasses

from conftest import small_geometry
from repro.common.config import ARBConfig, SVCConfig
from repro.arb.system import ARBSystem
from repro.hier.task import MemOp, TaskProgram
from repro.svc.designs import design_config
from repro.svc.system import SVCSystem
from repro.timing.simulator import TimingSimulator

ALL_TIERS = ("base", "ec", "ecs", "hr", "rl", "final")


def _svc_pressure_tasks(system, n=6):
    """Per-task working sets larger than one set's ways: non-head tasks
    must stall on replacement until commits free capacity."""
    stride = system.geometry.n_sets * system.geometry.line_size
    tasks = []
    for i in range(n):
        ops = [MemOp.store(0x1000 + w * stride, i) for w in range(3)]
        ops += [MemOp.load(0x1000 + w * stride) for w in range(3)]
        tasks.append(TaskProgram(ops=ops))
    return tasks


def _run_svc(tier, fast_forward):
    config = design_config(
        tier,
        SVCConfig(geometry=small_geometry(size_bytes=64, associativity=2)),
    )
    system = SVCSystem(config)
    sim = TimingSimulator(system, _svc_pressure_tasks(system))
    if not fast_forward:
        sim._stall_probe_stats = None  # undeclared contract => re-probe all
    return dataclasses.asdict(sim.run())


def _run_arb(fast_forward):
    system = ARBSystem(ARBConfig(n_rows=6))
    tasks = []
    words = 8
    for i in range(6):
        ops = [MemOp.store(0x1000 + (i * words + w) * 64, i) for w in range(words)]
        ops += [MemOp.load(0x1000 + (i * words + w) * 64) for w in range(words)]
        tasks.append(TaskProgram(ops=ops))
    sim = TimingSimulator(system, tasks)
    if not fast_forward:
        sim._stall_probe_stats = None
    return dataclasses.asdict(sim.run())


def test_svc_fastforward_reports_identical_across_tiers():
    for tier in ALL_TIERS:
        fast = _run_svc(tier, fast_forward=True)
        slow = _run_svc(tier, fast_forward=False)
        assert fast == slow, tier
        # The scenario must actually exercise the retry path, or this
        # test pins nothing.
        assert fast["replacement_stall_retries"] > 0, tier


def test_arb_fastforward_report_identical():
    fast = _run_arb(fast_forward=True)
    slow = _run_arb(fast_forward=False)
    assert fast == slow
    assert fast["replacement_stall_retries"] > 0


def test_fastforward_skips_probes_but_keeps_counts():
    """The fast path must actually skip probes (the record is consulted),
    yet report the same retry totals the polling loop would."""
    config = design_config(
        "final",
        SVCConfig(geometry=small_geometry(size_bytes=64, associativity=2)),
    )
    system = SVCSystem(config)
    calls = {"n": 0}
    real_load, real_store = system.load, system.store

    def counting_load(*args, **kwargs):
        calls["n"] += 1
        return real_load(*args, **kwargs)

    def counting_store(*args, **kwargs):
        calls["n"] += 1
        return real_store(*args, **kwargs)

    system.load = counting_load
    system.store = counting_store
    sim = TimingSimulator(system, _svc_pressure_tasks(system))
    report = sim.run()
    assert report.replacement_stall_retries > 0
    # Every executed op enters the system exactly once; without the
    # fast-forward every retry would re-probe too, so total system calls
    # would equal executed + retries. Strictly fewer calls proves some
    # retries were fast-forwarded without re-entering the protocol.
    assert (
        calls["n"]
        < report.executed_memory_ops + report.replacement_stall_retries
    )
