"""Timing simulator: structural stall and recovery paths."""

import dataclasses

from conftest import make_svc, small_geometry
from repro.common.config import SVCConfig
from repro.hier.task import MemOp, TaskProgram
from repro.svc.designs import final_design
from repro.svc.system import SVCSystem
from repro.timing.simulator import TimingSimulator


def test_replacement_stalls_retry_and_finish():
    """Tasks whose working set exceeds their set's ways must stall and
    retry (non-head), yet the run completes with correct totals."""
    config = final_design(SVCConfig(
        geometry=small_geometry(size_bytes=64, associativity=2),
        check_invariants=True,
    ))
    system = SVCSystem(config)
    stride = system.geometry.n_sets * system.geometry.line_size
    tasks = []
    for i in range(6):
        ops = [MemOp.store(0x1000 + w * stride, i) for w in range(3)]
        tasks.append(TaskProgram(ops=ops))
    report = TimingSimulator(system, tasks).run()
    assert report.replacement_stall_retries > 0
    assert report.committed_instructions == sum(len(t.ops) for t in tasks)


def test_mshr_pressure_defers_but_completes():
    """More outstanding misses than MSHRs: issue must defer, not drop."""
    config = dataclasses.replace(
        final_design(SVCConfig(geometry=small_geometry())),
        n_mshrs=1,
        mshr_combining=1,
    )
    system = SVCSystem(config)
    tasks = []
    for i in range(4):
        # Many distinct-line loads in a row: misses pile onto 1 MSHR.
        ops = [MemOp.load(0x4000 + 16 * (8 * i + j)) for j in range(8)]
        tasks.append(TaskProgram(ops=ops))
    report = TimingSimulator(system, tasks).run()
    assert report.committed_instructions == sum(len(t.ops) for t in tasks)


def test_squash_restart_penalty_extends_cycles():
    fast = [
        TaskProgram(ops=[MemOp.store(0x100, 1)]),
        TaskProgram(ops=[MemOp.load(0x100)]),
    ]
    # The same program where the consumer is forced to run early:
    slow_producer = [
        TaskProgram(ops=[MemOp.compute(latency=8)] * 6 + [MemOp.store(0x100, 1)]),
        TaskProgram(ops=[MemOp.load(0x100)]),
    ]
    clean = TimingSimulator(make_svc("final"), fast).run()
    squashy = TimingSimulator(make_svc("final"), slow_producer).run()
    assert squashy.violation_squashes >= 1
    assert squashy.cycles > clean.cycles


def test_stale_events_from_squashed_attempts_ignored():
    """A squashed attempt's scheduled events must not corrupt the
    restarted attempt (epoch filtering)."""
    tasks = [
        TaskProgram(ops=[MemOp.compute(latency=6)] * 4 + [MemOp.store(0x100, 7)]),
        TaskProgram(ops=[MemOp.load(0x100), MemOp.load(0x100),
                         MemOp.load(0x100)]),
        TaskProgram(ops=[MemOp.load(0x100)]),
    ]
    report = TimingSimulator(make_svc("final"), tasks).run()
    assert report.committed_instructions == sum(len(t.ops) for t in tasks)
    assert report.violation_squashes >= 1
