"""Whole-processor timing: determinism, latency sensitivity, recovery."""

import pytest

from conftest import make_svc
from repro.arb.system import ARBSystem
from repro.common.config import ARBConfig, CacheGeometry
from repro.hier.task import MemOp, TaskProgram
from repro.timing.simulator import TimingSimulator


def make_arb(hit_cycles=1):
    return ARBSystem(ARBConfig(
        hit_cycles=hit_cycles,
        cache_geometry=CacheGeometry(size_bytes=1024, associativity=1, line_size=16),
    ))


def simple_tasks(n=8, ops=6):
    tasks = []
    for i in range(n):
        body = [MemOp.store(0x100 + 16 * (i % 4), i)]
        body += [MemOp.compute(depends_on=(j,)) for j in range(ops - 1)]
        tasks.append(TaskProgram(ops=body))
    return tasks


def test_deterministic_runs():
    tasks = simple_tasks()
    a = TimingSimulator(make_svc("final"), tasks).run()
    b = TimingSimulator(make_svc("final"), tasks).run()
    assert a.cycles == b.cycles
    assert a.ipc == b.ipc


def test_all_instructions_commit():
    tasks = simple_tasks()
    report = TimingSimulator(make_svc("final"), tasks).run()
    assert report.committed_instructions == sum(len(t.ops) for t in tasks)
    assert report.cycles > 0


def test_arb_ipc_monotone_in_hit_latency():
    tasks = simple_tasks(n=16)
    ipcs = [
        TimingSimulator(make_arb(hit), tasks).run().ipc for hit in (1, 2, 4)
    ]
    assert ipcs[0] >= ipcs[1] >= ipcs[2]


def test_violation_squash_costs_cycles():
    # Task 1 loads what task 0 stores; make task 0 slow so the load
    # runs ahead, misspeculates and is squashed.
    slow_store = TaskProgram(
        ops=[MemOp.compute(latency=4)] * 10 + [MemOp.store(0x100, 7)]
    )
    eager_load = TaskProgram(ops=[MemOp.load(0x100)])
    report = TimingSimulator(make_svc("final"), [slow_store, eager_load]).run()
    assert report.violation_squashes >= 1


def test_mispredicted_task_squashes_and_recovers():
    tasks = simple_tasks(n=6)
    tasks[2] = TaskProgram(ops=tasks[2].ops, mispredicted=True)
    report = TimingSimulator(make_svc("final"), tasks).run()
    assert report.misprediction_squashes == 1
    assert report.committed_instructions == sum(len(t.ops) for t in tasks)


def test_memory_stats_flow_through():
    report = TimingSimulator(make_svc("final"), simple_tasks()).run()
    assert report.memory_stats.get("stores", 0) > 0
    assert 0 <= report.bus_utilization() <= 1
    assert 0 <= report.miss_ratio() <= 1


def test_pu_count_must_match():
    from repro.common.config import ProcessorConfig
    from repro.common.errors import SimulationError

    with pytest.raises(SimulationError):
        TimingSimulator(
            make_svc("final"), simple_tasks(), ProcessorConfig(n_pus=2)
        )


def test_faster_memory_means_fewer_cycles():
    """Hit latency must show up in end-to-end cycles (the paper's
    central sensitivity)."""
    loads = [
        TaskProgram(ops=[MemOp.load(0x100), MemOp.compute(depends_on=(0,))] * 8)
        for _ in range(8)
    ]
    fast = TimingSimulator(make_arb(hit_cycles=1), loads).run()
    slow = TimingSimulator(make_arb(hit_cycles=4), loads).run()
    assert slow.cycles > fast.cycles
