"""Wasted-speculation accounting in the timing report."""

from conftest import make_svc
from repro.hier.task import MemOp, TaskProgram
from repro.timing.simulator import TimingSimulator


def test_no_squashes_means_no_waste():
    tasks = [TaskProgram(ops=[MemOp.store(0x100 + 16 * i, i)]) for i in range(6)]
    report = TimingSimulator(make_svc("final"), tasks).run()
    assert report.violation_squashes == 0
    assert report.wasted_memory_ops == 0
    assert report.executed_memory_ops == report.committed_memory_ops


def test_squashed_attempts_count_as_waste():
    slow_store = TaskProgram(
        ops=[MemOp.compute(latency=6)] * 8 + [MemOp.store(0x100, 7)]
    )
    eager_load = TaskProgram(ops=[MemOp.load(0x100)])
    report = TimingSimulator(make_svc("final"), [slow_store, eager_load]).run()
    assert report.violation_squashes >= 1
    # The eager load executed at least twice but committed once.
    assert report.wasted_memory_ops >= 1
    assert report.executed_memory_ops > report.committed_memory_ops
