"""Task-to-PU assignment follows the multiscalar ring.

Tasks are dispatched in sequence order and each committing PU receives
the next task, so task rank r lands on PU r mod n_pus (absent squash
reshuffling). The private-frame locality of the synthetic workloads —
and the paper's Figure 1 assignment pattern — depend on this.
"""

from conftest import make_svc
from repro.hier.task import MemOp, TaskProgram
from repro.timing.simulator import TimingSimulator


class RecordingSystem:
    """Wraps an SVC system to record (pu, rank) assignments."""

    def __init__(self, inner):
        self._inner = inner
        self.assignments = []

    def begin_task(self, pu, rank):
        self.assignments.append((pu, rank))
        return self._inner.begin_task(pu, rank)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def test_ring_assignment_without_squashes():
    tasks = [
        TaskProgram(ops=[MemOp.store(0x1000 + 64 * i, i)]) for i in range(12)
    ]
    system = RecordingSystem(make_svc("final"))
    TimingSimulator(system, tasks).run()
    for pu, rank in system.assignments:
        assert pu == rank % 4


def test_squashed_tasks_restart_on_their_own_pu():
    tasks = [
        TaskProgram(ops=[MemOp.compute(latency=6)] * 5 + [MemOp.store(0x100, 1)]),
        TaskProgram(ops=[MemOp.load(0x100)]),
        TaskProgram(ops=[MemOp.load(0x100)]),
    ]
    system = RecordingSystem(make_svc("final"))
    report = TimingSimulator(system, tasks).run()
    assert report.violation_squashes >= 1
    # Re-dispatches keep rank -> pu stable.
    for pu, rank in system.assignments:
        assert pu == rank % 4
