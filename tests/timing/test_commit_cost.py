"""Commit-time accounting: the base design's serial bottleneck.

Section 3.2.6: the base design's commit writes every dirty line back
over the bus; the EC design commits in one cycle. The timing report's
``commit_cycles`` makes the difference measurable.
"""

from conftest import make_svc
from repro.hier.task import MemOp, TaskProgram
from repro.timing.simulator import TimingSimulator


def store_heavy_tasks(n=6, lines=6):
    tasks = []
    for i in range(n):
        ops = [MemOp.store(0x1000 + 64 * (lines * i + j), i) for j in range(lines)]
        tasks.append(TaskProgram(ops=ops))
    return tasks


def test_ec_commits_in_one_cycle_per_task():
    tasks = store_heavy_tasks()
    report = TimingSimulator(make_svc("ec"), tasks).run()
    assert report.commit_cycles == len(tasks)


def test_base_commit_cost_scales_with_dirty_lines():
    tasks = store_heavy_tasks()
    base = TimingSimulator(make_svc("base"), tasks).run()
    ec = TimingSimulator(make_svc("ec"), tasks).run()
    # Each base commit pays a bus transaction per dirty line.
    assert base.commit_cycles >= 3 * sum(len(t.ops) for t in tasks) // 2
    assert base.commit_cycles > 5 * ec.commit_cycles


def test_commit_cost_shows_up_in_total_cycles():
    tasks = store_heavy_tasks()
    base = TimingSimulator(make_svc("base"), tasks).run()
    ec = TimingSimulator(make_svc("ec"), tasks).run()
    assert base.cycles > ec.cycles
