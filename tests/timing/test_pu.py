"""PU pipeline timing: dual-issue slots, dependences, the LSQ."""

from repro.common.config import ProcessorConfig
from repro.hier.task import MemOp, TaskProgram
from repro.timing.pu import PUTaskTiming


def make_timing(ops, start=0, issue_width=2):
    return PUTaskTiming(
        pu_id=0,
        rank=0,
        program=TaskProgram(ops=ops),
        start_time=start,
        config=ProcessorConfig(issue_width=issue_width),
    )


def test_independent_ops_dual_issue():
    timing = make_timing([MemOp.compute() for _ in range(4)])
    assert timing.schedule_to_next_mem() is None
    # 4 independent 1-cycle ops, 2 per cycle: done by cycle 2.
    assert timing.done_time() == 2


def test_dependence_chain_serializes():
    ops = [MemOp.compute()]
    for i in range(3):
        ops.append(MemOp.compute(depends_on=(i,)))
    timing = make_timing(ops)
    timing.schedule_to_next_mem()
    assert timing.done_time() == 4  # pure chain of 1-cycle ops


def test_latency_respected():
    ops = [MemOp.compute(latency=4), MemOp.compute(latency=1, depends_on=(0,))]
    timing = make_timing(ops)
    timing.schedule_to_next_mem()
    assert timing.done_time() == 5


def test_memory_op_pauses_scheduling():
    ops = [MemOp.compute(), MemOp.load(0x100), MemOp.compute(depends_on=(1,))]
    timing = make_timing(ops)
    pending = timing.schedule_to_next_mem()
    assert pending is not None
    issue, op = pending
    assert op.kind == "load"
    # agen adds a cycle after the issue slot.
    assert issue >= 1
    timing.complete_mem(issue, issue + 5)
    assert timing.schedule_to_next_mem() is None
    assert timing.done_time() == issue + 6  # dependent op after the load


def test_memory_ops_issue_in_program_order():
    ops = [MemOp.load(0x100), MemOp.load(0x200)]
    timing = make_timing(ops)
    issue1, _ = timing.schedule_to_next_mem()
    timing.complete_mem(issue1, issue1 + 1)
    issue2, _ = timing.schedule_to_next_mem()
    assert issue2 > issue1


def test_defer_moves_issue_forward():
    timing = make_timing([MemOp.load(0x100)])
    issue, _ = timing.schedule_to_next_mem()
    timing.defer_mem(issue + 10)
    issue2, _ = timing.schedule_to_next_mem()
    assert issue2 >= issue + 10


def test_reset_restarts_schedule():
    timing = make_timing([MemOp.load(0x100), MemOp.compute()])
    old_epoch = timing.epoch
    timing.schedule_to_next_mem()
    timing.reset(new_start=50)
    assert timing.epoch == old_epoch + 1
    assert timing.op_index == 0
    issue, _ = timing.schedule_to_next_mem()
    assert issue >= 50


def test_empty_task_done_at_start():
    timing = make_timing([], start=7)
    assert timing.schedule_to_next_mem() is None
    assert timing.done_time() == 7
