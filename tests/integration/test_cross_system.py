"""Cross-system consistency checks.

* SVC and ARB, driven by the same program, must commit identical load
  values and identical final memory images.
* With one task at a time the SVC degenerates to an ordinary MRSW
  cached memory: it must match the SMP coherence system byte for byte.
"""

import random

from conftest import make_svc
from repro.arb.system import ARBSystem
from repro.coherence.system import SMPSystem
from repro.common.config import ARBConfig, CacheGeometry
from repro.hier.driver import SpeculativeExecutionDriver
from repro.hier.task import MemOp, TaskProgram
from repro.oracle.sequential import SequentialOracle, verify_run


def random_program(seed, n_tasks=10):
    rng = random.Random(seed)
    addrs = [0x1000 + 4 * i for i in range(10)]
    tasks = []
    value = 1
    for _ in range(n_tasks):
        ops = []
        for _ in range(rng.randint(0, 6)):
            addr = rng.choice(addrs)
            if rng.random() < 0.5:
                ops.append(MemOp.load(addr))
            else:
                ops.append(MemOp.store(addr, value))
                value += 1
        tasks.append(TaskProgram(ops=ops))
    return tasks


def test_svc_and_arb_agree_with_oracle():
    for seed in range(8):
        tasks = random_program(seed)
        oracle = SequentialOracle().run(tasks)

        svc = make_svc("final")
        svc_report = SpeculativeExecutionDriver(svc, tasks, seed=seed).run()
        assert verify_run(svc_report, oracle, svc.memory) == []

        arb = ARBSystem(ARBConfig(
            n_rows=64,
            cache_geometry=CacheGeometry(size_bytes=512, associativity=1,
                                         line_size=16),
        ))
        arb_report = SpeculativeExecutionDriver(arb, tasks, seed=seed).run()
        assert verify_run(arb_report, oracle, arb.memory) == []

        assert svc_report.load_values == arb_report.load_values
        assert svc.memory.image() == arb.memory.image()


def test_single_task_svc_degenerates_to_mrsw():
    """One task at a time: no speculation, no versions beyond one —
    the SVC must behave exactly like the coherent SMP on the same
    access stream."""
    rng = random.Random(11)
    svc = make_svc("final")
    smp = SMPSystem(n_caches=4, geometry=svc.geometry)
    addrs = [0x2000 + 4 * i for i in range(32)]

    rank = 0
    for _round in range(30):
        cache_id = rng.randrange(4)
        svc.begin_task(cache_id, rank)
        for _ in range(rng.randint(1, 6)):
            addr = rng.choice(addrs)
            if rng.random() < 0.5:
                value = rng.randrange(1 << 16)
                svc.store(cache_id, addr, value)
                smp.store(cache_id, addr, value)
            else:
                assert svc.load(cache_id, addr).value == smp.load(cache_id, addr)
        svc.commit_head(cache_id)
        rank += 1

    svc.drain()
    smp.drain()
    assert svc.memory.image() == smp.memory.image()


def test_violation_counts_are_plausible():
    """Programs with real cross-task dependences squash under eager
    consumers; the violation path must fire at least sometimes across
    seeds (guards against a protocol that silently never detects)."""
    total = 0
    for seed in range(12):
        tasks = random_program(seed, n_tasks=8)
        svc = make_svc("final")
        report = SpeculativeExecutionDriver(svc, tasks, seed=seed + 100).run()
        total += report.violation_squashes
    assert total > 0
