"""Property-based correctness: the SVC preserves sequential semantics.

Hypothesis generates random task programs (loads/stores over a small
address pool, with word and sub-word sizes), random PU interleavings and
random injected squashes; the functional driver replays them over every
SVC design level with protocol-invariant checking enabled. After the
run:

* every load value retained by a committed task equals what a purely
  sequential execution produces, and
* the drained architectural memory equals the sequential final image.

This is the paper's correctness obligation for speculative versioning
(section 1) stated as an executable property.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.config import CacheGeometry, SVCConfig
from repro.hier.driver import SpeculativeExecutionDriver
from repro.hier.task import MemOp, TaskProgram
from repro.oracle.sequential import SequentialOracle, verify_run
from repro.svc.designs import design_config
from repro.svc.system import SVCSystem

ADDRESS_POOL = [0x1000 + 4 * i for i in range(8)]

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def task_programs(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=8))
    tasks = []
    counter = 1
    for _ in range(n_tasks):
        n_ops = draw(st.integers(min_value=0, max_value=6))
        ops = []
        for _ in range(n_ops):
            addr = draw(st.sampled_from(ADDRESS_POOL))
            size = draw(st.sampled_from([1, 2, 4]))
            addr -= addr % size
            if draw(st.booleans()):
                ops.append(MemOp.load(addr, size))
            else:
                ops.append(MemOp.store(addr, counter % (1 << (8 * size)), size))
                counter += 1
        tasks.append(TaskProgram(ops=ops))
    return tasks


def run_and_verify(design, tasks, seed, squash_probability):
    config = design_config(
        design,
        SVCConfig(
            geometry=CacheGeometry(size_bytes=256, associativity=2, line_size=16),
            check_invariants=True,
        ),
    )
    system = SVCSystem(config)
    driver = SpeculativeExecutionDriver(
        system, tasks, seed=seed, squash_probability=squash_probability
    )
    report = driver.run()
    oracle = SequentialOracle().run(tasks)
    problems = verify_run(report, oracle, system.memory)
    assert problems == [], "\n".join(problems)
    system.verify()  # post-run structural audit


@pytest.mark.parametrize("design", ["base", "ecs", "final"])
class TestSequentialSemantics:
    @SETTINGS
    @given(tasks=task_programs(), seed=st.integers(0, 2**16))
    def test_random_interleavings(self, design, tasks, seed):
        run_and_verify(design, tasks, seed, squash_probability=0.0)

    @SETTINGS
    @given(tasks=task_programs(), seed=st.integers(0, 2**16))
    def test_with_injected_squashes(self, design, tasks, seed):
        run_and_verify(design, tasks, seed, squash_probability=0.15)


@pytest.mark.parametrize("design", ["ec", "hr", "rl"])
class TestRemainingDesigns:
    """The other design levels, with a lighter example budget."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tasks=task_programs(), seed=st.integers(0, 2**16))
    def test_random_interleavings(self, design, tasks, seed):
        # The EC design assumes no squashes (section 3.4); others take them.
        squash = 0.0 if design == "ec" else 0.1
        run_and_verify(design, tasks, seed, squash_probability=squash)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tasks=task_programs(), seed=st.integers(0, 2**16))
def test_tiny_cache_with_evictions(tasks, seed):
    """A one-set-per-way cache forces evictions and replacement stalls
    on every conflict; semantics must survive the churn."""
    config = design_config(
        "final",
        SVCConfig(
            geometry=CacheGeometry(size_bytes=64, associativity=2, line_size=16),
            check_invariants=True,
        ),
    )
    system = SVCSystem(config)
    report = SpeculativeExecutionDriver(system, tasks, seed=seed).run()
    oracle = SequentialOracle().run(tasks)
    problems = verify_run(report, oracle, system.memory)
    assert problems == [], "\n".join(problems)
