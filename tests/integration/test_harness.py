"""Experiment harness: every registered experiment runs and reports."""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    run_ablation_designs,
    run_figure19,
    run_table2,
    run_table3,
)
from repro.harness.reporting import format_series, format_table

TINY = 0.02  # a few dozen tasks per benchmark: smoke-scale


def test_registry_covers_all_paper_artifacts():
    assert {"table2", "table3", "fig19", "fig20"} <= set(EXPERIMENTS)
    assert {"ablation_designs", "ablation_update", "ablation_linesize"} <= set(
        EXPERIMENTS
    )


def test_table2_runs_and_reports():
    result = run_table2(benchmarks=("gcc",), scale=TINY)
    assert result.point("gcc", "arb_32k") is not None
    assert result.point("gcc", "svc_4x8k") is not None
    text = format_table(
        result, ["arb_32k", "svc_4x8k"], lambda p: p.miss_ratio, "miss"
    )
    assert "gcc" in text and "(paper)" in text


def test_table3_includes_both_sizes():
    result = run_table3(benchmarks=("perl",), scale=TINY)
    assert result.point("perl", "svc_4x8k").bus_utilization >= 0
    assert result.point("perl", "svc_4x16k").bus_utilization >= 0


def test_figure19_has_five_series():
    result = run_figure19(benchmarks=("compress",), scale=TINY)
    machines = {p.machine for p in result.points}
    assert machines == {"svc_1c", "arb_1c", "arb_2c", "arb_3c", "arb_4c"}
    text = format_series(
        result, sorted(machines), lambda p: p.ipc, "IPC", highlight="svc_1c"
    )
    assert "compress" in text


def test_ablation_designs_covers_progression():
    result = run_ablation_designs(benchmarks=("gcc",), scale=TINY)
    machines = {p.machine for p in result.points}
    assert {"svc_base", "svc_ec", "svc_ecs", "svc_hr", "svc_final"} == machines


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_every_experiment_is_callable_at_smoke_scale(name):
    runner = EXPERIMENTS[name]
    result = runner(benchmarks=("gcc",) if name != "ablation_linesize" else ("ijpeg",),
                    scale=TINY)
    assert result.points
    for point in result.points:
        assert point.cycles > 0
        assert point.instructions > 0
