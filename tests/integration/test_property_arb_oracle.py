"""Property-based correctness for the ARB baseline.

The same sequential-semantics obligation as the SVC property tests,
over the shared-buffer design: random programs, random interleavings,
random squashes, verified against the sequential oracle.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arb.system import ARBSystem
from repro.common.config import ARBConfig, CacheGeometry
from repro.hier.driver import SpeculativeExecutionDriver
from repro.hier.task import MemOp, TaskProgram
from repro.oracle.sequential import SequentialOracle, verify_run

ADDRESS_POOL = [0x1000 + 4 * i for i in range(8)]


@st.composite
def task_programs(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=8))
    tasks = []
    counter = 1
    for _ in range(n_tasks):
        n_ops = draw(st.integers(min_value=0, max_value=6))
        ops = []
        for _ in range(n_ops):
            addr = draw(st.sampled_from(ADDRESS_POOL))
            size = draw(st.sampled_from([1, 2, 4]))
            addr -= addr % size
            if draw(st.booleans()):
                ops.append(MemOp.load(addr, size))
            else:
                ops.append(MemOp.store(addr, counter % (1 << (8 * size)), size))
                counter += 1
        tasks.append(TaskProgram(ops=ops))
    return tasks


def run_and_verify(tasks, seed, squash_probability, n_rows=32):
    config = ARBConfig(
        n_rows=n_rows,
        cache_geometry=CacheGeometry(size_bytes=256, associativity=1, line_size=16),
    )
    system = ARBSystem(config)
    driver = SpeculativeExecutionDriver(
        system, tasks, seed=seed, squash_probability=squash_probability
    )
    report = driver.run()
    oracle = SequentialOracle().run(tasks)
    problems = verify_run(report, oracle, system.memory)
    assert problems == [], "\n".join(problems)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tasks=task_programs(), seed=st.integers(0, 2**16))
def test_random_interleavings(tasks, seed):
    run_and_verify(tasks, seed, squash_probability=0.0)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tasks=task_programs(), seed=st.integers(0, 2**16))
def test_with_injected_squashes(tasks, seed):
    run_and_verify(tasks, seed, squash_probability=0.15)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tasks=task_programs(), seed=st.integers(0, 2**16))
def test_tiny_buffer_with_reclaim(tasks, seed):
    """A 4-row ARB exercises full-buffer stalls and head reclaim."""
    run_and_verify(tasks, seed, squash_probability=0.1, n_rows=4)
