"""Property-based proof that the SVC fast paths are invisible.

Hypothesis draws a design tier, a seeded workload, a schedule and a
fault plan, then :mod:`repro.harness.differential` runs the same case
twice — fast path on and off — and demands byte-identical event
streams, stats, committed load values and final memory images. Two
dimensions are exercised: the version directory (a snoop-filtering
index only) and the structure-of-arrays fastpath kernel (a pure-speed
rewrite of supply, snarf acceptance and VOL repair). Any observable
divergence is a bug in the mechanism, not a legal behaviour change.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults import FaultPlan
from repro.harness.differential import (
    DIMENSIONS,
    TIERS,
    _compare_flag_modes,
    differential_workload,
)
from repro.hier.driver import SpeculativeExecutionDriver

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def fault_plans(draw, n_tasks, allow_squashes=True):
    squash_at = ()
    squash_rate = 0.0
    if allow_squashes and n_tasks > 1:
        n_forced = draw(st.integers(min_value=0, max_value=2))
        squash_at = tuple(
            (draw(st.integers(1, n_tasks - 1)), draw(st.integers(0, 6)))
            for _ in range(n_forced)
        )
        squash_rate = draw(st.sampled_from([0.0, 0.1]))
    return FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        squash_rate=squash_rate,
        squash_at=squash_at,
        adversarial_victims=draw(st.booleans()),
        delayed_writebacks=draw(st.sampled_from([0, 2])),
    )


@pytest.mark.parametrize("dimension", DIMENSIONS)
@pytest.mark.parametrize("tier", TIERS)
class TestFastPathsAreObservationallyInvisible:
    @SETTINGS
    @given(data=st.data())
    def test_fast_path_on_equals_off(self, tier, dimension, data):
        workload_seed = data.draw(st.integers(0, 2**10))
        tasks = differential_workload(
            workload_seed,
            n_tasks=data.draw(st.integers(4, 12)),
            ops_per_task=data.draw(st.integers(4, 12)),
        )
        # The EC design assumes no squashes (paper section 3.4).
        allow_squashes = tier != "ec"
        plan = data.draw(fault_plans(len(tasks), allow_squashes))
        schedule = data.draw(
            st.sampled_from(SpeculativeExecutionDriver.SCHEDULES)
        )
        mismatches = _compare_flag_modes(
            dimension,
            tier,
            tasks,
            seed=data.draw(st.integers(0, 2**16)),
            schedule=schedule,
            squash_probability=0.05 if allow_squashes else 0.0,
            fault_plan=plan,
        )
        assert not mismatches, "\n".join(mismatches)
